// Offline behavior-profile trainer (DESIGN.md §14).
//
// Reads one or more TraceLog JSONL exports from clean runs (bench
// --trace-out, or obs::TraceLog::to_jsonl written by tests) and emits
// the trained BehaviorProfile as tmg-behavior-profile-v1 JSON. Each
// input file is one clean trial: ProfileTrainer::add_trace_jsonl
// brackets the trial and applies the same featurization contract the
// online IDS uses, so a profile trained here scores identically to one
// trained in-process.
//
// Usage:
//   train_profile [--out PATH] TRACE.jsonl [TRACE.jsonl ...]
//
// Output goes to stdout unless --out is given. Deterministic: the same
// inputs in the same order yield a byte-identical profile. Exit 2 on a
// malformed trace or unreadable file. tools/train_profile.py wraps
// this binary (and can run the exporting bench first).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ids/behavior_profile.hpp"
#include "obs/observability.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] TRACE.jsonl [TRACE.jsonl ...]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      usage(argv[0]);
      return 2;
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    usage(argv[0]);
    return 2;
  }

  tmg::ids::ProfileTrainer trainer;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!trainer.add_trace_jsonl(buf.str(), &error)) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
      return 2;
    }
  }

  const std::string json = trainer.finalize().to_json();
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else if (!tmg::obs::write_text_file(out_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(stderr,
               "[train_profile] %zu trace(s), %llu events -> profile "
               "(%s)\n",
               inputs.size(),
               static_cast<unsigned long long>(trainer.events()),
               out_path.empty() ? "stdout" : out_path.c_str());
  return 0;
}
