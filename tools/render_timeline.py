#!/usr/bin/env python3
"""Render an observability trace (JSONL) as a span tree and, when the
trace holds a Port Probing hijack, the paper's race-window table.

Usage:
    tools/render_timeline.py TRACE.jsonl [--tree-limit N] [--no-tree]

Input: the `--trace-out=FILE` / `--obs-out=DIR` (trace.jsonl) export of
any example — one JSON object per line:

    {"ph":"span","id":N,"parent":P,"cat":C,"name":S,
     "t0_ns":T,"t1_ns":T|null,"args":{...}}
    {"ph":"instant","id":N,"parent":P,"cat":C,"name":S,"t_ns":T,
     "args":{...}}

All timestamps are simulated nanoseconds, so output is deterministic.

The race-window table reproduces Figs. 5-8 of the paper from the span
tree alone, anchored at the `scenario/victim.down` instant:

    Fig. 7  victim down -> final probe sent    attack/disconnect-detect t0
    Fig. 8  victim down -> declared down       attack/disconnect-detect t1
    Fig. 5  victim down -> attacker iface up   attack/ident-change t1
    Fig. 6  victim down -> hijack confirmed    attack/race t1

These are the same four quantities run_hijack() computes in-process
(HijackOutcome::down_to_*); rendering them from the exported trace
cross-checks the span instrumentation against the driver's bookkeeping.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_trace(path: Path) -> list[dict]:
    records = []
    with path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                sys.exit(f"{path}:{lineno}: not valid JSON: {exc}")
    return records


def fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:.2f} ms"


def fmt_span(rec: dict) -> str:
    label = f"{rec['cat']}/{rec['name']}"
    args = rec.get("args") or {}
    arg_s = " ".join(f"{k}={v}" for k, v in args.items())
    if rec["ph"] == "instant":
        head = f"@{rec['t_ns'] / 1e9:.6f}s  *{label}"
    else:
        t0, t1 = rec["t0_ns"], rec["t1_ns"]
        dur = "open" if t1 is None else fmt_ms(t1 - t0)
        head = f"@{t0 / 1e9:.6f}s  {label} [{dur}]"
    return f"{head}  {arg_s}".rstrip()


def render_tree(records: list[dict], limit: int) -> None:
    children: dict[int, list[dict]] = {}
    for rec in records:
        children.setdefault(rec.get("parent", 0), []).append(rec)

    printed = 0

    def walk(rec: dict, depth: int) -> None:
        nonlocal printed
        if printed >= limit:
            return
        print("  " * depth + fmt_span(rec))
        printed += 1
        for child in children.get(rec["id"], []):
            walk(child, depth + 1)

    for root in children.get(0, []):
        walk(root, 0)
    total = len(records)
    if printed < total:
        print(f"... ({total - printed} more records; --tree-limit to raise)")


def find_spans(records: list[dict], cat: str, name: str) -> list[dict]:
    return [r for r in records if r["cat"] == cat and r["name"] == name]


def race_window_table(records: list[dict]) -> bool:
    """Print the Figs. 5-8 table; False when the trace has no hijack."""
    downs = find_spans(records, "scenario", "victim.down")
    races = find_spans(records, "attack", "race")
    detects = find_spans(records, "attack", "disconnect-detect")
    idents = find_spans(records, "attack", "ident-change")
    if not downs or not (races or detects):
        return False
    t_down = downs[0]["t_ns"]

    def delta(rec: dict | None, key: str) -> str:
        if rec is None or rec.get(key) is None:
            return "      --"
        return f"{(rec[key] - t_down) / 1e6:8.2f}"

    detect = detects[0] if detects else None
    race = races[0] if races else None
    ident = idents[0] if idents else None

    print("Race windows from the victim unplugging (paper Figs. 5-8):")
    print(f"  {'window':44s} {'ms':>8s}")
    rows = [
        ("victim down -> final probe sent    (Fig. 7)", detect, "t0_ns"),
        ("victim down -> declared down       (Fig. 8)", detect, "t1_ns"),
        ("victim down -> attacker iface up   (Fig. 5)", ident, "t1_ns"),
        ("victim down -> hijack confirmed    (Fig. 6)", race, "t1_ns"),
    ]
    for label, rec, key in rows:
        print(f"  {label:44s} {delta(rec, key)}")
    if race is not None and (race.get("args") or {}).get("outcome"):
        print(f"  outcome: {race['args']['outcome']}")
    return True


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", type=Path, help="trace JSONL file")
    ap.add_argument("--tree-limit", type=int, default=200,
                    help="max records to render in the tree (default 200)")
    ap.add_argument("--no-tree", action="store_true",
                    help="only print the race-window table")
    args = ap.parse_args()

    records = load_trace(args.trace)
    if not records:
        sys.exit(f"{args.trace}: empty trace")
    print(f"{args.trace}: {len(records)} records "
          f"({sum(1 for r in records if r['ph'] == 'span')} spans, "
          f"{sum(1 for r in records if r['ph'] == 'instant')} instants)\n")

    if not args.no_tree:
        render_tree(records, args.tree_limit)
        print()
    if not race_window_table(records):
        print("(no hijack spans in this trace; race-window table skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
