// Tests for the TopoGuard re-implementation: port classifier, link
// fabrication checks, host migration verification — and the unit-level
// demonstration that a Port-Down flap erases the classification (the
// Port Amnesia lever).
#include <gtest/gtest.h>

#include "ctrl/host_tracker.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/testbed.hpp"

namespace tmg::defense {
namespace {

using namespace tmg::sim::literals;
using ctrl::AlertType;
using scenario::Testbed;
using scenario::TestbedOptions;

struct TgNet {
  Testbed tb;
  attack::Host* h1;
  attack::Host* h2;
  TopoGuard* tg;

  explicit TgNet(TopoGuardConfig cfg = {}) : tb{[] {
    TestbedOptions o;
    o.controller.authenticate_lldp = true;  // TopoGuard signs LLDP
    return o;
  }()} {
    tb.add_switch(0x1);
    tb.add_switch(0x2);
    tb.connect_switches(0x1, 10, 0x2, 10);
    attack::HostConfig c1;
    c1.mac = net::MacAddress::host(1);
    c1.ip = net::Ipv4Address::host(1);
    h1 = &tb.add_host(0x1, 1, c1);
    attack::HostConfig c2;
    c2.mac = net::MacAddress::host(2);
    c2.ip = net::Ipv4Address::host(2);
    h2 = &tb.add_host(0x2, 1, c2);
    tg = &install_topoguard(tb.controller(), cfg);
  }

  /// A correctly signed LLDP as would be captured from the wire — what a
  /// relaying attacker possesses.
  net::Packet captured_lldp(of::Dpid dpid, of::PortNo port) {
    net::LldpPacket lldp{dpid, port};
    lldp.sign(tb.controller().lldp_key());
    return net::make_lldp_frame(net::MacAddress::lldp_multicast(),
                                std::move(lldp));
  }
};

// ---------------- Classification ----------------

TEST(TopoGuardClassifier, StartsAsAny) {
  TgNet net;
  EXPECT_EQ(net.tg->port_type(of::Location{0x1, 1}),
            TopoGuard::PortType::Any);
}

TEST(TopoGuardClassifier, HostTrafficMarksHost) {
  TgNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  EXPECT_EQ(net.tg->port_type(of::Location{0x1, 1}),
            TopoGuard::PortType::Host);
}

TEST(TopoGuardClassifier, LldpMarksSwitch) {
  TgNet net;
  net.tb.start(1_s);
  // Inter-switch ports saw genuine LLDP during discovery.
  EXPECT_EQ(net.tg->port_type(of::Location{0x1, 10}),
            TopoGuard::PortType::Switch);
  EXPECT_EQ(net.tg->port_type(of::Location{0x2, 10}),
            TopoGuard::PortType::Switch);
}

TEST(TopoGuardClassifier, PortDownResetsToAny) {
  TgNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  ASSERT_EQ(net.tg->port_type(of::Location{0x1, 1}),
            TopoGuard::PortType::Host);
  net.h1->flap_interface(30_ms);  // > link-integrity window
  net.tb.run_for(100_ms);
  EXPECT_EQ(net.tg->port_type(of::Location{0x1, 1}),
            TopoGuard::PortType::Any);
  EXPECT_GE(net.tg->profile_resets(), 1u);
}

TEST(TopoGuardClassifier, FastFlapDoesNotReset) {
  // A flap below the 802.3 link-integrity window produces no Port-Down,
  // so the profile survives: the attacker MUST hold >= 16 ms (paper
  // Sec. V-A).
  TgNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  net.h1->flap_interface(5_ms);
  net.tb.run_for(100_ms);
  EXPECT_EQ(net.tg->port_type(of::Location{0x1, 1}),
            TopoGuard::PortType::Host);
  EXPECT_EQ(net.tg->profile_resets(), 0u);
}

TEST(TopoGuardClassifier, TypeNames) {
  EXPECT_STREQ(to_string(TopoGuard::PortType::Any), "ANY");
  EXPECT_STREQ(to_string(TopoGuard::PortType::Host), "HOST");
  EXPECT_STREQ(to_string(TopoGuard::PortType::Switch), "SWITCH");
}

// ---------------- Link fabrication checks ----------------

TEST(TopoGuardLinks, LldpFromHostPortAlertsAndBlocks) {
  TgNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());  // h1's port becomes HOST
  net.tb.run_for(100_ms);
  // h1 replays a captured, *validly signed* LLDP: signature passes, but
  // the port property check catches it.
  net.h1->send(net.captured_lldp(0x2, 1));
  net.tb.run_for(100_ms);
  EXPECT_TRUE(net.tb.controller().alerts().any(AlertType::LldpFromHostPort));
  EXPECT_FALSE(net.tb.controller().topology().has_link(
      of::Location{0x2, 1}, of::Location{0x1, 1}));
}

TEST(TopoGuardLinks, AmnesiaFlapEnablesRelayedLldp) {
  // The unit-level core of the Port Amnesia bypass: after a >=16 ms
  // flap the port is ANY again, and the relayed LLDP classifies it as
  // SWITCH without any alert.
  TgNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  const auto alerts_before = net.tb.controller().alerts().count();
  net.h1->flap_interface(30_ms, [&] {});
  net.tb.run_for(100_ms);  // flap + up-detect settled
  net.h1->send(net.captured_lldp(0x2, 1));
  net.tb.run_for(100_ms);
  EXPECT_EQ(net.tb.controller().alerts().count(), alerts_before);
  EXPECT_TRUE(net.tb.controller().topology().has_link(
      of::Location{0x2, 1}, of::Location{0x1, 1}));
  EXPECT_EQ(net.tg->port_type(of::Location{0x1, 1}),
            TopoGuard::PortType::Switch);
}

TEST(TopoGuardLinks, FirstHopFromSwitchPortAlerts) {
  TgNet net;
  net.tb.start(1_s);
  // h1's port becomes SWITCH via a (relayed) LLDP from the ANY state.
  net.h1->send(net.captured_lldp(0x2, 1));
  net.tb.run_for(100_ms);
  ASSERT_EQ(net.tg->port_type(of::Location{0x1, 1}),
            TopoGuard::PortType::Switch);
  // The fabricated link eventually times out (no refresh), leaving a
  // stale SWITCH-profiled attachment port...
  net.tb.run_for(36_s);
  ASSERT_FALSE(net.tb.controller().topology().is_switch_port(
      of::Location{0x1, 1}));
  // ...from which first-hop traffic is a violation.
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::FirstHopFromSwitchPort));
}

TEST(TopoGuardLinks, NoBlockWhenConfigured) {
  TopoGuardConfig cfg;
  cfg.block_link_violations = false;
  TgNet net{cfg};
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  net.h1->send(net.captured_lldp(0x2, 1));
  net.tb.run_for(100_ms);
  // Alert raised, but the poisoned update goes through (alert-only mode).
  EXPECT_TRUE(net.tb.controller().alerts().any(AlertType::LldpFromHostPort));
  EXPECT_TRUE(net.tb.controller().topology().has_link(
      of::Location{0x2, 1}, of::Location{0x1, 1}));
}

// ---------------- Host migration verification ----------------

TEST(TopoGuardMigration, SpoofWithoutPortDownViolatesPrecondition) {
  TgNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  net.tb.run_for(200_ms);
  // h2 impersonates h1 while h1 is still online (no Port-Down at h1).
  // A gratuitous ARP guarantees a Packet-In (unicast spoofs could ride
  // pre-installed flow rules and never reach the controller).
  net.h2->send(net::make_arp_request(net.h1->mac(), net.h1->ip(),
                                     net.h1->ip()));
  net.tb.run_for(100_ms);
  EXPECT_TRUE(net.tb.controller().alerts().any(
      AlertType::HostMigrationPrecondition));
}

TEST(TopoGuardMigration, LegitimateMoveRaisesNoAlert) {
  TgNet net;
  of::DataLink& target = net.tb.add_access_link(0x2, 4);
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(200_ms);
  const auto before = net.tb.controller().alerts().count();
  scenario::migrate_host(net.tb, *net.h1, target, 1_s);
  net.tb.run_for(1200_ms);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(500_ms);
  EXPECT_EQ(net.tb.controller().alerts().count(), before);
  const auto rec = net.tb.controller().host_tracker().find(net.h1->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x2, 4}));
}

TEST(TopoGuardMigration, GhostMoveViolatesPostcondition) {
  // The old location generated a Port-Down (precondition holds), but
  // the "moved" host is still reachable there: postcondition alert.
  TgNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  net.tb.run_for(200_ms);
  // h1 flaps (Port-Down seen at its port) but stays online afterwards.
  net.h1->flap_interface(30_ms);
  net.tb.run_for(200_ms);
  // h2 claims h1's identity; precondition passes, ping finds h1 alive.
  net.h2->send(net::make_arp_request(net.h1->mac(), net.h1->ip(),
                                     net.h1->ip()));
  net.tb.run_for(500_ms);
  EXPECT_TRUE(net.tb.controller().alerts().any(
      AlertType::HostMigrationPostcondition));
  // (A precondition alert may also fire when the ghost host talks again
  // — e.g. answering the verification ping requires it to ARP for the
  // controller, which re-binds it to its old port without a Port-Down
  // at the attacker's location. That cascade is expected.)
}

TEST(TopoGuardMigration, RaceWonByAttackerRaisesNothing) {
  // The Port Probing window: victim actually left, attacker claims the
  // identity before the victim rejoins. Both checks pass — this is the
  // paper's central observation about HLH-in-transit.
  TgNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  net.tb.run_for(200_ms);
  const auto before = net.tb.controller().alerts().count();
  net.h1->detach_link();  // victim leaves (Port-Down follows)
  net.tb.run_for(100_ms);
  net.h2->send(net::make_arp_request(net.h1->mac(), net.h1->ip(),
                                     net.h1->ip()));
  net.tb.run_for(500_ms);
  EXPECT_EQ(net.tb.controller().alerts().count(), before);
  const auto rec = net.tb.controller().host_tracker().find(net.h1->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x2, 1}));  // attacker's port
}

TEST(TopoGuardMigration, BlockModeStopsPreconditionViolation) {
  TopoGuardConfig cfg;
  cfg.block_host_violations = true;
  TgNet net{cfg};
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  net.tb.run_for(200_ms);
  net.h2->send(net::make_arp_request(net.h1->mac(), net.h1->ip(),
                                     net.h1->ip()));
  net.tb.run_for(200_ms);
  const auto rec = net.tb.controller().host_tracker().find(net.h1->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x1, 1}));  // binding unchanged
}

TEST(TopoGuardMigration, NewHostNeverChecked) {
  TgNet net;
  net.tb.start(1_s);
  const auto before = net.tb.controller().alerts().count();
  net.h1->send_arp_request(net.h2->ip());  // first appearance
  net.tb.run_for(200_ms);
  EXPECT_EQ(net.tb.controller().alerts().count(), before);
}

}  // namespace
}  // namespace tmg::defense
