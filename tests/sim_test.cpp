// Unit tests for the discrete-event kernel: time, rng, event loop,
// latency models.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/inline_fn.hpp"
#include "sim/latency_model.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace tmg::sim {
namespace {

using namespace tmg::sim::literals;

// ---------------- Duration / SimTime ----------------

TEST(Duration, ConversionsRoundTrip) {
  EXPECT_EQ(Duration::millis(5).count_nanos(), 5'000'000);
  EXPECT_EQ(Duration::micros(7).count_nanos(), 7'000);
  EXPECT_EQ(Duration::seconds(2).count_nanos(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::millis(5).to_millis_f(), 5.0);
  EXPECT_DOUBLE_EQ(Duration::seconds(3).to_seconds_f(), 3.0);
  EXPECT_DOUBLE_EQ(Duration::micros(9).to_micros_f(), 9.0);
}

TEST(Duration, FractionalConstructors) {
  EXPECT_EQ(Duration::from_millis_f(0.5).count_nanos(), 500'000);
  EXPECT_EQ(Duration::from_seconds_f(0.25).count_nanos(), 250'000'000);
}

TEST(Duration, Arithmetic) {
  const Duration a = 10_ms;
  const Duration b = 3_ms;
  EXPECT_EQ((a + b).count_nanos(), Duration::millis(13).count_nanos());
  EXPECT_EQ((a - b).count_nanos(), Duration::millis(7).count_nanos());
  EXPECT_EQ((a * 3).count_nanos(), Duration::millis(30).count_nanos());
  EXPECT_EQ((a / 2).count_nanos(), Duration::millis(5).count_nanos());
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_EQ((-a).count_nanos(), -10'000'000);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_EQ(1000_us, 1_ms);
  EXPECT_GT(1_s, 999_ms);
}

TEST(Duration, CompoundAssignment) {
  Duration d = 5_ms;
  d += 5_ms;
  EXPECT_EQ(d, 10_ms);
  d -= 3_ms;
  EXPECT_EQ(d, 7_ms);
}

TEST(SimTime, Arithmetic) {
  const SimTime t = SimTime::zero() + 100_ms;
  EXPECT_EQ(t.count_nanos(), 100'000'000);
  EXPECT_EQ((t + 50_ms) - t, 50_ms);
  EXPECT_EQ((t - 40_ms).count_nanos(), 60'000'000);
  EXPECT_LT(SimTime::zero(), t);
}

TEST(TimeFormatting, HumanReadable) {
  EXPECT_EQ(to_string(Duration::nanos(12)), "12ns");
  EXPECT_EQ(to_string(Duration::micros(3)), "3.00us");
  EXPECT_EQ(to_string(Duration::from_millis_f(3.25)), "3.250ms");
  EXPECT_EQ(to_string(Duration::seconds(2)), "2.000s");
  EXPECT_EQ(to_string(SimTime::zero() + 1500_ms), "1.500s");
}

// ---------------- Rng ----------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{9};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    saw_lo |= v == 3;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng{10};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng{11};
  const int n = 200'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(20.0, 5.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 20.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 5.0, 0.1);
}

TEST(Rng, LognormalMeanMatchesAnalytic) {
  Rng rng{12};
  const double mu = std::log(10.0), sigma = 0.5;
  const int n = 400'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  const double analytic = std::exp(mu + sigma * sigma / 2.0);
  EXPECT_NEAR(sum / n, analytic, analytic * 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng{13};
  const int n = 200'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ChanceFrequency) {
  Rng rng{14};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent{15};
  Rng child = parent.fork();
  // Child stream differs from parent's continuation.
  bool differs = false;
  Rng parent2{15};
  (void)parent2.next_u64();  // same state advance as fork()
  for (int i = 0; i < 16; ++i) {
    if (child.next_u64() != parent2.next_u64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

// ---------------- EventLoop ----------------

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(30_ms, [&] { order.push_back(3); });
  loop.schedule_after(10_ms, [&] { order.push_back(1); });
  loop.schedule_after(20_ms, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, TiesBreakByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_after(5_ms, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ClockAdvancesToEventTime) {
  EventLoop loop;
  SimTime seen;
  loop.schedule_after(42_ms, [&] { seen = loop.now(); });
  loop.run();
  EXPECT_EQ(seen, SimTime::zero() + 42_ms);
  EXPECT_EQ(loop.now(), SimTime::zero() + 42_ms);
}

TEST(EventLoop, RunUntilStopsAtDeadlineAndAdvancesClock) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_after(10_ms, [&] { ++fired; });
  loop.schedule_after(50_ms, [&] { ++fired; });
  loop.run_until(SimTime::zero() + 20_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), SimTime::zero() + 20_ms);
  loop.run_until(SimTime::zero() + 100_ms);
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, EventAtDeadlineRuns) {
  EventLoop loop;
  bool fired = false;
  loop.schedule_after(20_ms, [&] { fired = true; });
  loop.run_until(SimTime::zero() + 20_ms);
  EXPECT_TRUE(fired);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  TimerHandle h = loop.schedule_after(10_ms, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, HandleNotPendingAfterFire) {
  EventLoop loop;
  TimerHandle h = loop.schedule_after(1_ms, [] {});
  loop.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, must not crash
}

TEST(EventLoop, EventsScheduledDuringExecutionRun) {
  EventLoop loop;
  int depth = 0;
  loop.schedule_after(1_ms, [&] {
    ++depth;
    loop.schedule_after(1_ms, [&] { ++depth; });
  });
  loop.run();
  EXPECT_EQ(depth, 2);
}

TEST(EventLoop, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.schedule_after(10_ms, [] {});
  loop.run();
  bool fired = false;
  loop.schedule_after(Duration::millis(-5), [&] { fired = true; });
  loop.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now(), SimTime::zero() + 10_ms);
}

TEST(EventLoop, StepExecutesOne) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_after(1_ms, [&] { ++fired; });
  loop.schedule_after(2_ms, [&] { ++fired; });
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(loop.step());
}

TEST(EventLoop, CountsExecutedEvents) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.schedule_after(1_ms, [] {});
  TimerHandle h = loop.schedule_after(1_ms, [] {});
  h.cancel();
  loop.run();
  EXPECT_EQ(loop.events_executed(), 7u);
}

TEST(EventLoop, CancelAfterFireDoesNotCorruptLiveCount) {
  EventLoop loop;
  TimerHandle h = loop.schedule_after(1_ms, [] {});
  loop.schedule_after(2_ms, [] {});
  EXPECT_TRUE(loop.step());  // fires h
  h.cancel();                // no-op: must not decrement the live count
  h.cancel();
  EXPECT_EQ(loop.live_events(), 1u);
  EXPECT_EQ(loop.pending_events(), 1u);
}

TEST(EventLoop, DoubleCancelCountsOnce) {
  EventLoop loop;
  TimerHandle h = loop.schedule_after(1_ms, [] {});
  loop.schedule_after(2_ms, [] {});
  h.cancel();
  h.cancel();
  EXPECT_EQ(loop.pending_events(), 2u);
  EXPECT_EQ(loop.live_events(), 1u);
}

TEST(EventLoop, CancelSurvivesLoopDestruction) {
  TimerHandle h;
  {
    EventLoop loop;
    h = loop.schedule_after(1_ms, [] {});
  }
  h.cancel();  // loop is gone; shared state keeps this safe
  EXPECT_FALSE(h.pending());
}

TEST(EventLoop, LiveEventsExcludesCancelledEntries) {
  EventLoop loop;
  std::vector<TimerHandle> handles;
  handles.reserve(10);
  for (int i = 0; i < 10; ++i) {
    handles.push_back(loop.schedule_after(Duration::millis(i + 1), [] {}));
  }
  for (int i = 0; i < 4; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(loop.pending_events(), 10u);  // lazy: entries still queued
  EXPECT_EQ(loop.live_events(), 6u);
  loop.run();
  EXPECT_EQ(loop.events_executed(), 6u);
  EXPECT_EQ(loop.live_events(), 0u);
}

TEST(EventLoop, CompactionDropsCancelledBacklog) {
  // Cancel-heavy workloads (per-packet timeouts) must not accumulate
  // dead entries: once cancelled entries dominate a large queue, the
  // next step() physically drops them.
  EventLoop loop;
  std::vector<TimerHandle> handles;
  handles.reserve(128);
  for (int i = 0; i < 128; ++i) {
    handles.push_back(loop.schedule_after(Duration::millis(i + 1), [] {}));
  }
  for (int i = 0; i < 100; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(loop.pending_events(), 128u);
  EXPECT_EQ(loop.live_events(), 28u);
  EXPECT_TRUE(loop.step());  // compacts, then fires the earliest live one
  EXPECT_EQ(loop.pending_events(), 27u);
  EXPECT_EQ(loop.live_events(), 27u);
  loop.run();
  EXPECT_EQ(loop.events_executed(), 28u);
}

TEST(EventLoop, RunUntilWithCancelledThenRescheduledTimersNearDeadline) {
  // Regression for the heap-based queue: a timer cancelled and then
  // re-armed at the same tick near a run_until deadline must fire
  // exactly once, and cancelled entries popped at the deadline must
  // not advance the clock past it.
  EventLoop loop;
  int fired = 0;
  TimerHandle first =
      loop.schedule_after(Duration::millis(10), [&] { fired += 100; });
  first.cancel();
  // Re-arm at the same deadline; only this one may run.
  loop.schedule_after(Duration::millis(10), [&] { ++fired; });
  // A cancelled entry *behind* the deadline must be skipped silently.
  TimerHandle behind =
      loop.schedule_after(Duration::millis(5), [&] { fired += 100; });
  behind.cancel();
  // An entry beyond the deadline must stay queued.
  loop.schedule_after(Duration::millis(20), [&] { fired += 100; });

  loop.run_until(SimTime::from_nanos(0) + Duration::millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), SimTime::from_nanos(0) + Duration::millis(10));
  EXPECT_EQ(loop.live_events(), 1u);  // only the 20 ms event remains
  loop.run();
  EXPECT_EQ(fired, 101);
}

TEST(EventLoop, LiveEventsExactAcrossCompaction) {
  // live_events() must stay exact while compaction physically drops
  // cancelled entries and while survivors are cancelled afterwards.
  EventLoop loop;
  std::vector<TimerHandle> handles;
  handles.reserve(200);
  for (int i = 0; i < 200; ++i) {
    handles.push_back(
        loop.schedule_after(Duration::millis(i + 1), [] {}));
  }
  // Cancel 150 of 200: next step() triggers compaction (>= half dead).
  for (int i = 0; i < 150; ++i) {
    handles[static_cast<std::size_t>(i)].cancel();
  }
  EXPECT_EQ(loop.live_events(), 50u);
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(loop.pending_events(), 49u);  // compacted + one fired
  EXPECT_EQ(loop.live_events(), 49u);
  // Cancelling a survivor after compaction must still be counted.
  handles[160].cancel();
  EXPECT_EQ(loop.live_events(), 48u);
  // Double-cancel of an already-compacted entry must not skew counts.
  handles[0].cancel();
  EXPECT_EQ(loop.live_events(), 48u);
  loop.run();
  EXPECT_EQ(loop.events_executed(), 49u);
  EXPECT_EQ(loop.live_events(), 0u);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, CancelledTimerRescheduledAcrossCompactionFiresOnce) {
  // A handle whose entry is compacted away must stay inert: re-arming
  // the same logical timer is a fresh schedule_after, and the stale
  // handle's cancel() must not affect the new entry.
  EventLoop loop;
  int fired = 0;
  TimerHandle stale =
      loop.schedule_after(Duration::millis(999), [&] { fired += 100; });
  stale.cancel();
  std::vector<TimerHandle> filler;
  filler.reserve(100);
  for (int i = 0; i < 100; ++i) {
    filler.push_back(loop.schedule_after(Duration::millis(1), [] {}));
  }
  for (auto& h : filler) h.cancel();
  // Queue: 101 entries, 101 cancelled -> step() compacts to empty and
  // returns false without firing anything.
  EXPECT_FALSE(loop.step());
  TimerHandle fresh =
      loop.schedule_after(Duration::millis(999), [&] { ++fired; });
  stale.cancel();  // stale handle again: must be a no-op
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.events_executed(), 1u);
}

// ---------------- InlineFn ----------------

TEST(InlineFn, SmallCallablesStoredInline) {
  int hits = 0;
  InlineFn<64> fn{[&hits] { ++hits; }};
  EXPECT_TRUE(fn.is_inline());
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, LargeCallablesFallBackToHeap) {
  std::array<std::uint64_t, 16> payload{};  // 128 bytes > 64-byte buffer
  payload[0] = 7;
  payload[15] = 9;
  int sum = 0;
  InlineFn<64> fn{[payload, &sum] {
    sum += static_cast<int>(payload[0] + payload[15]);
  }};
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(sum, 16);
}

TEST(InlineFn, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InlineFn<64> a{[counter] { ++*counter; }};
  EXPECT_EQ(counter.use_count(), 2);
  InlineFn<64> b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(*counter, 1);
  InlineFn<64> c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
  EXPECT_EQ(counter.use_count(), 2);  // exactly one live copy of the capture
}

TEST(InlineFn, MoveOnlyCapturesSupported) {
  auto flag = std::make_unique<int>(41);
  int out = 0;
  InlineFn<64> fn{[flag = std::move(flag), &out] { out = *flag + 1; }};
  InlineFn<64> moved{std::move(fn)};
  moved();
  EXPECT_EQ(out, 42);
}

TEST(InlineFn, DestructionReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  {
    InlineFn<64> inline_fn{[counter] {}};
    std::array<std::uint64_t, 16> big{};
    InlineFn<64> heap_fn{[counter, big] { (void)big; }};
    EXPECT_FALSE(heap_fn.is_inline());
    EXPECT_EQ(counter.use_count(), 3);
  }
  EXPECT_EQ(counter.use_count(), 1);  // both storage modes destroyed
}

TEST(EventLoop, ResetIsObservationallyFresh) {
  // The arena-reset contract (DESIGN.md §7d): after reset(), a dirty
  // loop must be indistinguishable from a default-constructed one —
  // same clock, counts, tie-breaking sequence, and hook state — so
  // TrialArena can recycle loops across trials without moving a single
  // simulated number.
  const auto drive = [](EventLoop& loop) {
    std::vector<int> order;
    loop.schedule_after(5_ms, [&order] { order.push_back(1); });
    loop.schedule_after(5_ms, [&order] { order.push_back(2); });
    loop.post_after(3_ms, [&order] { order.push_back(0); });
    loop.run();
    std::ostringstream os;
    for (int v : order) os << v;
    os << ';' << loop.now().count_nanos() << ';' << loop.events_executed();
    return std::move(os).str();
  };
  EventLoop fresh;
  const std::string expect = drive(fresh);

  EventLoop recycled;
  // Dirty it thoroughly: pending events left unrun, a dead hook, an
  // advanced clock, live cancel state.
  int hook_calls = 0;
  recycled.set_post_event_hook(1, [&hook_calls] { ++hook_calls; });
  recycled.schedule_after(1_ms, [] {});  // fires before the reset
  auto handle = recycled.schedule_after(5_ms, [] { FAIL() << "stale"; });
  recycled.run_until(SimTime::zero() + 1500_us);  // clock mid-flight
  recycled.schedule_after(10_s, [] { FAIL() << "stale"; });
  recycled.reset();

  EXPECT_EQ(recycled.now(), SimTime::zero());
  EXPECT_EQ(recycled.pending_events(), 0u);
  EXPECT_EQ(recycled.live_events(), 0u);
  EXPECT_EQ(recycled.events_executed(), 0u);
  const int hook_calls_before = hook_calls;
  EXPECT_EQ(drive(recycled), expect);
  EXPECT_EQ(hook_calls, hook_calls_before);  // old hook never fires again
  // A pre-reset handle is inert: cancelling it must not corrupt the new
  // epoch's live-event accounting.
  handle.cancel();
  EXPECT_EQ(recycled.live_events(), 0u);
  EXPECT_EQ(recycled.pending_events(), 0u);
}

TEST(EventLoop, ResetKeepsSlabCapacityWorking) {
  // Not observable, but the recycled slab must still run correctly: a
  // second batch after reset reuses slots and fires in order.
  EventLoop loop;
  std::vector<int> order;
  for (int round = 0; round < 3; ++round) {
    order.clear();
    for (int i = 0; i < 100; ++i) {
      loop.schedule_after(Duration::micros(100 - i), [&order, i] {
        order.push_back(i);
      });
    }
    loop.run();
    ASSERT_EQ(order.size(), 100u);
    EXPECT_EQ(order.front(), 99);  // smallest delay first
    EXPECT_EQ(order.back(), 0);
    loop.reset();
  }
}

TEST(EventLoop, PostEventHookFiresAtCadence) {
  EventLoop loop;
  int hook_calls = 0;
  loop.set_post_event_hook(3, [&] { ++hook_calls; });
  for (int i = 0; i < 10; ++i) loop.schedule_after(1_ms, [] {});
  loop.run();
  EXPECT_EQ(hook_calls, 3);  // after events 3, 6, 9
  loop.set_post_event_hook(0, nullptr);
  for (int i = 0; i < 5; ++i) loop.schedule_after(1_ms, [] {});
  loop.run();
  EXPECT_EQ(hook_calls, 3);  // cleared hook stays silent
}

// ---------------- Latency models ----------------

TEST(LatencyModel, FixedAlwaysSame) {
  Rng rng{1};
  FixedLatency m{5_ms};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m.sample(rng), 5_ms);
  EXPECT_EQ(m.nominal(), 5_ms);
}

TEST(LatencyModel, NormalStaysAboveFloor) {
  Rng rng{2};
  NormalLatency m{1_ms, 5_ms};  // huge sd to force negatives
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(m.sample(rng), Duration::micros(1));
  }
}

TEST(LatencyModel, NormalMeanApproximate) {
  Rng rng{3};
  NormalLatency m{20_ms, 2_ms};
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += m.sample(rng).to_millis_f();
  EXPECT_NEAR(sum / n, 20.0, 0.2);
}

TEST(LatencyModel, MicroburstProducesTail) {
  Rng rng{4};
  MicroburstLatency m{5_ms, Duration::micros(300), 0.03,
                      Duration::from_millis_f(2.5)};
  int bursts = 0;
  const int n = 20'000;
  double max_ms = 0.0;
  for (int i = 0; i < n; ++i) {
    const double ms = m.sample(rng).to_millis_f();
    max_ms = std::max(max_ms, ms);
    if (ms > 7.0) ++bursts;
  }
  // Roughly 3% of packets ride a burst; the tail reaches ~12 ms as in
  // paper Fig. 10.
  EXPECT_GT(bursts, n / 100);
  EXPECT_LT(bursts, n / 10);
  EXPECT_GT(max_ms, 10.0);
}

TEST(LatencyModel, FactoriesProduceModels) {
  Rng rng{5};
  auto f = make_fixed(1_ms);
  auto n = make_normal(2_ms, 100_us);
  auto b = make_microburst(5_ms, 300_us, 0.05, 2_ms);
  EXPECT_EQ(f->nominal(), 1_ms);
  EXPECT_EQ(n->nominal(), 2_ms);
  EXPECT_EQ(b->nominal(), 5_ms);
  EXPECT_GT(f->sample(rng).count_nanos(), 0);
  EXPECT_GT(n->sample(rng).count_nanos(), 0);
  EXPECT_GT(b->sample(rng).count_nanos(), 0);
}

}  // namespace
}  // namespace tmg::sim
