// Tests for the active link verifier — the prototype of the "active,
// dynamic defenses" the paper's conclusion calls for.
#include <gtest/gtest.h>

#include "attack/link_fabrication.hpp"
#include "attack/port_amnesia.hpp"
#include "ctrl/host_tracker.hpp"
#include "defense/active_probe.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/fig1_testbed.hpp"
#include "scenario/testbed.hpp"

namespace tmg::defense {
namespace {

using namespace tmg::sim::literals;
using ctrl::AlertType;
using scenario::Fig1Testbed;
using scenario::make_fig1_testbed;

scenario::TestbedOptions checked_options() {
  scenario::TestbedOptions opts;
  opts.check_invariants = true;  // runtime invariant checker (src/check)
  return opts;
}

TEST(ActiveProbe, RealLinkVerifiedAndAdmitted) {
  Fig1Testbed f = make_fig1_testbed(checked_options());
  ActiveLinkVerifier& verifier = install_active_probe(f.tb->controller());
  f.tb->start(2_s);
  // First observation is held; challenge runs; the next round admits.
  EXPECT_FALSE(f.tb->controller().topology().has_link(f.real_a, f.real_b));
  f.tb->run_for(16_s);
  EXPECT_TRUE(f.tb->controller().topology().has_link(f.real_a, f.real_b));
  EXPECT_GE(verifier.verifications(), 1u);
  EXPECT_EQ(verifier.failures(), 0u);
  EXPECT_EQ(verifier.state_of(topo::Link{f.real_a, f.real_b}),
            ActiveLinkVerifier::State::Verified);
}

TEST(ActiveProbe, BenignNetworkFullyConverges) {
  // All genuine links of the Fig. 1 network pass and no alerts fire.
  Fig1Testbed f = make_fig1_testbed(checked_options());
  install_active_probe(f.tb->controller());
  f.tb->start(2_s);
  scenario::fig1_warm_hosts(f);
  f.tb->run_for(40_s);
  EXPECT_EQ(f.tb->controller().topology().link_count(), 1u);
  EXPECT_EQ(f.tb->controller().alerts().count(
                AlertType::ActiveProbeViolation),
            0u);
}

TEST(ActiveProbe, RelayedFakeLinkFailsLatencyBound) {
  // The CMM-evasive out-of-band amnesia attack: the attackers happily
  // relay the challenge probes too — and the channel's ~11 ms gives
  // them away. No calibration history or timestamp TLVs needed.
  Fig1Testbed f = make_fig1_testbed(checked_options());
  ActiveLinkVerifier& verifier = install_active_probe(f.tb->controller());
  f.tb->start(2_s);
  scenario::fig1_warm_hosts(f);
  f.tb->run_for(20_s);  // real link admitted

  attack::PortAmnesiaAttack::Config ac;
  ac.preposition_flap = true;
  attack::PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a,
                                   *f.attacker_b, f.oob, ac};
  attack.start();
  f.tb->run_for(60_s);  // several LLDP rounds
  EXPECT_FALSE(f.fabricated_link_present());
  EXPECT_GE(verifier.failures(), 1u);
  EXPECT_TRUE(f.tb->controller().alerts().any(
      AlertType::ActiveProbeViolation));
  EXPECT_EQ(verifier.state_of(f.fabricated_link()),
            ActiveLinkVerifier::State::Failed);
}

TEST(ActiveProbe, NonRelayingFakeLinkFailsClosed) {
  // A stealthier attacker might drop unfamiliar frames instead of
  // bridging them: then the challenge probes simply vanish and the
  // link is never admitted (fail closed).
  Fig1Testbed f = make_fig1_testbed(checked_options());
  ActiveLinkVerifier& verifier = install_active_probe(f.tb->controller());
  f.tb->start(2_s);
  scenario::fig1_warm_hosts(f);
  f.tb->run_for(20_s);

  attack::PortAmnesiaAttack::Config ac;
  ac.preposition_flap = true;
  ac.bridge_transit = false;  // LLDP-only relay; probes are dropped
  attack::PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a,
                                   *f.attacker_b, f.oob, ac};
  attack.start();
  f.tb->run_for(60_s);
  EXPECT_FALSE(f.fabricated_link_present());
  EXPECT_GE(verifier.failures(), 1u);
}

TEST(ActiveProbe, PortDownResetsVerification) {
  Fig1Testbed f = make_fig1_testbed(checked_options());
  ActiveLinkVerifier& verifier = install_active_probe(f.tb->controller());
  f.tb->start(2_s);
  f.tb->run_for(16_s);
  const topo::Link real{f.real_a, f.real_b};
  ASSERT_EQ(verifier.state_of(real), ActiveLinkVerifier::State::Verified);
  // A Port-Down on one endpoint wipes the (now stale) verification.
  // Cut the wire carrier at switch 0x1's side of the real link: easiest
  // via a synthetic PortStatus through the module hook.
  verifier.on_port_status(
      of::PortStatus{0x1, 10, of::PortStatus::Reason::Down});
  EXPECT_FALSE(verifier.state_of(real).has_value());
}

TEST(ActiveProbe, WorksWithoutTimestampInfrastructure) {
  // Unlike the LLI, the verifier needs no controller key material or
  // LLDP TLV support — it runs on a bone-stock controller.
  Fig1Testbed f = make_fig1_testbed(checked_options());  // no auth, no timestamps
  EXPECT_FALSE(f.tb->controller().config().lldp_timestamps);
  install_active_probe(f.tb->controller());
  f.tb->start(2_s);
  f.tb->run_for(16_s);
  EXPECT_TRUE(f.tb->controller().topology().has_link(f.real_a, f.real_b));
}

TEST(ActiveProbe, ProbeFramesInvisibleToOtherServices) {
  // Challenge probes never create host bindings or reach end hosts'
  // applications as routable traffic.
  Fig1Testbed f = make_fig1_testbed(checked_options());
  install_active_probe(f.tb->controller());
  f.tb->start(2_s);
  f.tb->run_for(16_s);
  EXPECT_FALSE(f.tb->controller()
                   .host_tracker()
                   .find(f.tb->controller().mac())
                   .has_value());
}

TEST(ActiveProbe, FailedLinkRetriesAfterCooldown) {
  ActiveProbeConfig cfg;
  cfg.retry_cooldown = 20_s;
  Fig1Testbed f = make_fig1_testbed(checked_options());
  ActiveLinkVerifier& verifier =
      install_active_probe(f.tb->controller(), cfg);
  f.tb->start(2_s);
  scenario::fig1_warm_hosts(f);
  f.tb->run_for(20_s);

  // Fabricate with a slow channel -> Failed; then swap in a "fast"
  // relay and wait out the cooldown: the re-challenge succeeds.
  attack::PortAmnesiaAttack::Config ac;
  ac.preposition_flap = true;
  attack::PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a,
                                   *f.attacker_b, f.oob, ac};
  attack.start();
  f.tb->run_for(31_s);
  ASSERT_EQ(verifier.state_of(f.fabricated_link()),
            ActiveLinkVerifier::State::Failed);
  const auto failures_before = verifier.failures();
  f.tb->run_for(45_s);  // beyond cooldown: a new challenge round ran
  EXPECT_GT(verifier.failures(), failures_before);
}

}  // namespace
}  // namespace tmg::defense
