// Observability layer tests (DESIGN.md §10).
//
// Three contracts under test:
//   1. The metrics registry and trace log are deterministic: exports
//      are byte-stable, handles survive reset(), names are validated.
//   2. The span log reconstructs causal trees (hijack race windows) and
//      its cumulative counters survive the record cap and clear().
//   3. Determinism end to end: attaching the observability layer to a
//      full hijack experiment yields byte-identical metrics JSON and
//      trace JSONL across repeated runs and across --jobs 1 vs --jobs 8
//      (the same discipline as the pipeline.equivalence CI leg) — and
//      per-trial pipeline counters start from zero on every trial.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/assert.hpp"
#include "ctrl/message_pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/trace_log.hpp"
#include "scenario/experiments.hpp"
#include "scenario/fig1_testbed.hpp"
#include "scenario/trial_runner.hpp"
#include "sim/time.hpp"

namespace tmg {
namespace {

using namespace tmg::sim::literals;

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, NameValidation) {
  using obs::MetricsRegistry;
  EXPECT_TRUE(MetricsRegistry::valid_name("pipeline.dispatches"));
  EXPECT_TRUE(MetricsRegistry::valid_name("ctrl.echo_rtt_ms"));
  EXPECT_TRUE(MetricsRegistry::valid_name(
      "pipeline.listener_dispatches{listener=host-tracking}"));
  EXPECT_FALSE(MetricsRegistry::valid_name("nodot"));
  EXPECT_FALSE(MetricsRegistry::valid_name("Upper.case"));
  EXPECT_FALSE(MetricsRegistry::valid_name("trailing.dot."));
  EXPECT_FALSE(MetricsRegistry::valid_name("a.b{unclosed"));
  EXPECT_FALSE(MetricsRegistry::valid_name(""));
}

TEST(MetricsRegistry, FindOrCreateReturnsStableHandles) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("sim.events");
  c.add(3);
  EXPECT_EQ(&c, &reg.counter("sim.events"));
  EXPECT_EQ(reg.counter("sim.events").value(), 3u);

  stats::Histogram& h = reg.histogram("sim.queue_depth", 0.0, 100.0, 10);
  h.add(42.0);
  EXPECT_EQ(&h, &reg.histogram("sim.queue_depth", 0.0, 100.0, 10));
}

TEST(MetricsRegistry, ResetIsInPlaceSoHandlesStayValid) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("a.count");
  obs::Gauge& g = reg.gauge("a.gauge");
  stats::Histogram& h = reg.histogram("a.hist", 0.0, 10.0, 5);
  c.add(7);
  g.set(1.5);
  h.add(3.0);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total(), 0u);

  // The pre-reset handles must still feed the registry (hot paths cache
  // them once at attach).
  c.inc();
  EXPECT_EQ(reg.counter("a.count").value(), 1u);
}

TEST(MetricsRegistry, ExportsAreByteStable) {
  const auto build = [] {
    obs::MetricsRegistry reg;
    reg.counter("b.second").add(2);
    reg.counter("a.first").inc();
    reg.gauge("z.gauge").set(0.25);
    reg.histogram("m.hist", 0.0, 4.0, 2).add(1.0);
    return std::make_pair(reg.to_json(sim::SimTime::zero() + 5_ms),
                          reg.to_csv(sim::SimTime::zero() + 5_ms));
  };
  const auto [json1, csv1] = build();
  const auto [json2, csv2] = build();
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(csv1, csv2);
  // Keys export in sorted order regardless of registration order.
  EXPECT_LT(json1.find("a.first"), json1.find("b.second"));
  EXPECT_NE(json1.find("\"at_ns\": 5000000"), std::string::npos);
}

TEST(MetricsRegistry, EmptySnapshotIsWellFormed) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  const std::string json = reg.to_json(sim::SimTime::zero());
  // All three sections present (empty), stable across calls.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(json, reg.to_json(sim::SimTime::zero()));
  const std::string csv = reg.to_csv(sim::SimTime::zero());
  EXPECT_NE(csv.find("# at_ns=0"), std::string::npos);
  EXPECT_EQ(csv, reg.to_csv(sim::SimTime::zero()));
}

TEST(MetricsRegistry, EmptyHistogramExportsZeroTotal) {
  obs::MetricsRegistry reg;
  (void)reg.histogram("h.empty", 0.0, 10.0, 4);
  const std::string json = reg.to_json(sim::SimTime::zero());
  EXPECT_NE(json.find("h.empty"), std::string::npos);
  EXPECT_NE(json.find("\"total\": 0"), std::string::npos);
  const std::string csv = reg.to_csv(sim::SimTime::zero());
  EXPECT_NE(csv.find("histogram,h.empty,total,0"), std::string::npos);
}

TEST(MetricsRegistry, DuplicateHistogramRegistration) {
  obs::MetricsRegistry reg;
  stats::Histogram& h = reg.histogram("d.hist", 0.0, 8.0, 4);
  // Same buckets: find-or-create returns the same instance, and the
  // registry does not grow.
  EXPECT_EQ(&h, &reg.histogram("d.hist", 0.0, 8.0, 4));
  EXPECT_EQ(reg.size(), 1u);

  // Different buckets under the same name: contract violation, reported
  // through the assertion handler (the original layout survives).
  int failures = 0;
  check::FailureHandler previous = check::set_failure_handler(
      [&](const char*, int, const char*, const std::string&) { ++failures; });
  (void)reg.histogram("d.hist", 0.0, 99.0, 7);
  check::set_failure_handler(std::move(previous));
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, ExportOrderIndependentOfRegistrationOrder) {
  const auto build = [](bool reversed) {
    obs::MetricsRegistry reg;
    const auto fill = [&reg](int step) {
      switch (step) {
        case 0:
          reg.counter("c.one").add(1);
          break;
        case 1:
          reg.counter("c.two").add(2);
          break;
        case 2:
          reg.gauge("g.one").set(0.5);
          break;
        case 3:
          reg.histogram("h.one", 0.0, 4.0, 2).add(1.0);
          break;
        default:
          break;
      }
    };
    for (int i = 0; i < 4; ++i) fill(reversed ? 3 - i : i);
    return std::make_pair(reg.to_json(sim::SimTime::zero()),
                          reg.to_csv(sim::SimTime::zero()));
  };
  const auto [json_fwd, csv_fwd] = build(false);
  const auto [json_rev, csv_rev] = build(true);
  EXPECT_EQ(json_fwd, json_rev);
  EXPECT_EQ(csv_fwd, csv_rev);
}

// ---------------------------------------------------------------------
// Trace log
// ---------------------------------------------------------------------

TEST(TraceLog, SpanTreeAndExports) {
  obs::TraceLog log;
  const obs::SpanId root = log.begin_span(sim::SimTime::zero(), "attack",
                                          "hijack");
  log.annotate(root, "victim_ip", "10.0.0.1");
  const obs::SpanId probe =
      log.begin_span(sim::SimTime::zero() + 1_ms, "attack", "probe", root);
  log.end_span(probe, sim::SimTime::zero() + 2_ms);
  log.instant(sim::SimTime::zero() + 3_ms, "scenario", "victim.down");
  log.end_span(root, sim::SimTime::zero() + 4_ms);

  const std::string jsonl = log.to_jsonl();
  EXPECT_NE(jsonl.find("\"ph\":\"span\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"parent\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"victim_ip\":\"10.0.0.1\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ph\":\"instant\""), std::string::npos);

  const std::string chrome = log.to_chrome_trace();
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);

  EXPECT_EQ(log.count("attack", "probe"), 1u);
  EXPECT_EQ(log.category_total("attack"), 2u);
}

TEST(TraceLog, NullIdIsNoOpEverywhere) {
  obs::TraceLog log;
  log.end_span(0, sim::SimTime::zero());
  log.annotate(0, "k", "v");
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLog, CumulativeCountsSurviveCapAndClear) {
  obs::TraceLog log{2};  // tiny cap
  log.instant(sim::SimTime::zero(), "c", "n");
  log.instant(sim::SimTime::zero(), "c", "n");
  const obs::SpanId dropped = log.instant(sim::SimTime::zero(), "c", "n");
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_EQ(log.count("c", "n"), 3u);  // exact despite the cap

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.count("c", "n"), 3u);  // survives clear()
}

// ---------------------------------------------------------------------
// MessagePipeline counters: reset + zeroed-per-trial regression
// ---------------------------------------------------------------------

class CountingListener final : public ctrl::MessageListener {
 public:
  explicit CountingListener(std::string name) : name_{std::move(name)} {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint32_t subscriptions() const override {
    return mask_of(ctrl::MessageType::PacketIn);
  }
  ctrl::Disposition on_message(const ctrl::PipelineMessage&,
                               ctrl::DispatchContext&) override {
    return ctrl::Disposition::Continue;
  }

 private:
  std::string name_;
};

TEST(MessagePipeline, ResetStatsZeroesCountersButKeepsChain) {
  ctrl::MessagePipeline p;
  p.add_owned(100, std::make_unique<CountingListener>("alpha"));
  p.add_owned(200, std::make_unique<CountingListener>("beta"));
  p.set_enabled("beta", false);

  of::PacketIn pi;
  for (int i = 0; i < 5; ++i) {
    (void)p.dispatch(ctrl::PipelineMessage::from(pi));
  }
  auto stats = p.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].dispatches, 5u);
  EXPECT_EQ(stats[1].dispatches, 0u);  // disabled

  p.reset_stats();
  stats = p.stats();
  EXPECT_EQ(stats[0].dispatches, 0u);
  EXPECT_EQ(stats[0].stops, 0u);
  EXPECT_EQ(stats[0].wall_ms, 0.0);
  // Chain membership and the enabled flags are untouched.
  EXPECT_TRUE(p.is_enabled("alpha"));
  EXPECT_FALSE(p.is_enabled("beta"));
  EXPECT_TRUE(p.audit().empty());

  // Counters restart cleanly.
  (void)p.dispatch(ctrl::PipelineMessage::from(pi));
  EXPECT_EQ(p.stats()[0].dispatches, 1u);
}

std::string serialize_stats(
    const std::vector<ctrl::MessagePipeline::ListenerStats>& stats) {
  std::string s;
  for (const auto& ls : stats) {
    s += ls.name + ":" + std::to_string(ls.dispatches) + ":" +
         std::to_string(ls.stops) + ";";
  }
  return s;
}

// Regression (--jobs 8): every trial's per-listener counters must start
// from zero — a worker thread that already ran a trial must not leak
// dispatch counts into the next one it picks up.
TEST(MessagePipeline, TrialsStartFromZeroedCountersAtJobs8) {
  const auto run_trials = [](std::size_t jobs) {
    scenario::TrialRunner runner{{jobs}};
    return runner.map(8, [](std::size_t i) {
      scenario::HijackConfig cfg;
      cfg.seed = 7;  // same seed: identical trials expose any leakage
      cfg.suite = scenario::DefenseSuite::TopoGuard;
      cfg.collect_pipeline_stats = true;
      (void)i;
      return serialize_stats(scenario::run_hijack(cfg).pipeline_stats);
    });
  };
  const auto serial = run_trials(1);
  const auto parallel = run_trials(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "trial " << i;
    // Identical configs => identical counters; trial 0 is the baseline.
    EXPECT_EQ(serial[i], serial[0]) << "trial " << i;
  }
}

// set_timing() is the opt-in wall-clock switch: with it on, the
// controller's collector surfaces per-listener wall_ms gauges in the
// obs snapshot; with it off (the default), no host-clock value ever
// reaches the export, keeping snapshots byte-deterministic.
TEST(MessagePipeline, TimingCountersSurfaceInObsSnapshot) {
  const auto snapshot = [](bool timing) {
    obs::Observability obs;
    scenario::Fig1Testbed f = scenario::make_fig1_testbed({});
    f.tb->set_observability(&obs);
    f.tb->controller().pipeline().set_timing(timing);
    f.tb->start();
    f.tb->run_for(sim::Duration::seconds(5));
    obs.finalize(f.tb->loop().now());
    return obs.metrics_json(obs.final_time());
  };

  const std::string with_timing = snapshot(true);
  EXPECT_NE(with_timing.find("pipeline.listener_wall_ms{listener="),
            std::string::npos);
  // The untimed companions are present either way.
  EXPECT_NE(with_timing.find("pipeline.listener_dispatches{listener="),
            std::string::npos);

  const std::string without_timing = snapshot(false);
  EXPECT_EQ(without_timing.find("pipeline.listener_wall_ms"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end determinism of the exports
// ---------------------------------------------------------------------

/// One observed hijack run, exporting both artifacts.
std::pair<std::string, std::string> observed_hijack_export() {
  obs::Observability obs;
  scenario::HijackConfig cfg;
  cfg.seed = 7;
  cfg.suite = scenario::DefenseSuite::TopoGuardAndSphinx;
  cfg.obs = &obs;
  (void)scenario::run_hijack(cfg);
  return {obs.metrics_json(obs.final_time()), obs.trace().to_jsonl()};
}

TEST(Observability, ExportsAreByteIdenticalAcrossRuns) {
  const auto [metrics1, trace1] = observed_hijack_export();
  const auto [metrics2, trace2] = observed_hijack_export();
  EXPECT_EQ(metrics1, metrics2);
  EXPECT_EQ(trace1, trace2);
  // The exports carry real content, not vacuous equality.
  EXPECT_NE(metrics1.find("pipeline.dispatches"), std::string::npos);
  EXPECT_NE(trace1.find("\"cat\":\"attack\",\"name\":\"race\""),
            std::string::npos);
}

TEST(Observability, ExportsAreByteIdenticalAcrossJobs1And8) {
  const auto run_trials = [](std::size_t jobs) {
    scenario::TrialRunner runner{{jobs}};
    return runner.map(8, [](std::size_t i) {
      obs::Observability obs;
      scenario::HijackConfig cfg;
      cfg.seed = scenario::TrialRunner::trial_seed(7, i);
      cfg.suite = scenario::DefenseSuite::TopoGuard;
      cfg.obs = &obs;
      (void)scenario::run_hijack(cfg);
      return obs.metrics_json(obs.final_time()) + "\x1e" +
             obs.trace().to_jsonl();
    });
  };
  const auto serial = run_trials(1);
  const auto parallel = run_trials(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "trial " << i;
  }
}

TEST(Observability, ResetClearsStateAndDropsCollectors) {
  obs::Observability obs;
  int calls = 0;
  obs.add_collector([&](obs::MetricsRegistry& m, sim::SimTime) {
    ++calls;
    m.gauge("x.y").set(1.0);
  });
  obs.metrics().counter("a.b").inc();
  obs.trace().instant(sim::SimTime::zero(), "c", "n");
  obs.collect(sim::SimTime::zero());
  EXPECT_EQ(calls, 1);

  obs.reset();
  EXPECT_EQ(obs.metrics().counter("a.b").value(), 0u);
  EXPECT_EQ(obs.trace().size(), 0u);
  obs.collect(sim::SimTime::zero());
  EXPECT_EQ(calls, 1);  // collector was dropped
}

TEST(Observability, FinalizeRunsCollectorsOnceThenDetaches) {
  obs::Observability obs;
  int calls = 0;
  obs.add_collector([&](obs::MetricsRegistry& m, sim::SimTime) {
    ++calls;
    m.gauge("x.y").set(2.0);
  });
  obs.finalize(sim::SimTime::zero() + 9_ms);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(obs.final_time().count_nanos(), 9000000);
  // Post-finalize exports reuse the mirrored values; the (possibly
  // dangling in real use) collector must not run again.
  const std::string json = obs.metrics_json(obs.final_time());
  EXPECT_EQ(calls, 1);
  EXPECT_NE(json.find("\"x.y\": 2.000000"), std::string::npos);
}

}  // namespace
}  // namespace tmg
