// Scale / stress tests: discovery, routing and the defenses on larger
// randomized topologies than the paper's testbeds.
#include <gtest/gtest.h>

#include "ctrl/host_tracker.hpp"
#include "ctrl/link_discovery.hpp"
#include "ctrl/routing.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/testbed.hpp"

namespace tmg::scenario {
namespace {

using namespace tmg::sim::literals;

/// Build a random connected topology: a spanning tree over `n` switches
/// plus `extra` redundant links, with one host per switch.
struct RandomNet {
  Testbed tb;
  std::vector<attack::Host*> hosts;
  std::size_t expected_links = 0;

  RandomNet(std::uint64_t seed, int n, int extra)
      : tb{[&] {
          TestbedOptions o;
          o.seed = seed;
          o.check_invariants = true;
          // Large nets: check sparsely so O(links) sweeps stay cheap.
          o.check_every_events = 4096;
          return o;
        }()} {
    sim::Rng rng{seed ^ 0xbeef};
    for (int i = 1; i <= n; ++i) tb.add_switch(static_cast<of::Dpid>(i));
    std::vector<of::PortNo> next_port(static_cast<std::size_t>(n) + 1, 10);
    const auto connect = [&](int a, int b) {
      tb.connect_switches(static_cast<of::Dpid>(a),
                          next_port[static_cast<std::size_t>(a)]++,
                          static_cast<of::Dpid>(b),
                          next_port[static_cast<std::size_t>(b)]++);
      ++expected_links;
    };
    for (int i = 2; i <= n; ++i) {
      connect(static_cast<int>(rng.uniform_int(1, i - 1)), i);
    }
    for (int e = 0; e < extra; ++e) {
      const int a = static_cast<int>(rng.uniform_int(1, n));
      const int b = static_cast<int>(rng.uniform_int(1, n));
      if (a != b) connect(a, b);
    }
    for (int i = 1; i <= n; ++i) {
      attack::HostConfig cfg;
      cfg.mac = net::MacAddress::host(static_cast<std::uint32_t>(i));
      cfg.ip = net::Ipv4Address::host(static_cast<std::uint32_t>(i));
      hosts.push_back(
          &tb.add_host(static_cast<of::Dpid>(i), 1, std::move(cfg)));
    }
  }
};

class ScaleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, int>> {};

TEST_P(ScaleSweep, DiscoveryFindsEveryLink) {
  const auto [seed, n, extra] = GetParam();
  RandomNet net{seed, n, extra};
  net.tb.start(2_s);
  EXPECT_EQ(net.tb.controller().topology().link_count(),
            net.expected_links);
}

TEST_P(ScaleSweep, AnyToAnyRoutingWorks) {
  const auto [seed, n, extra] = GetParam();
  RandomNet net{seed, n, extra};
  net.tb.start(2_s);
  // Everyone announces, then a sample of host pairs exchange pings.
  for (auto* h : net.hosts) h->send_arp_request(net.hosts[0]->ip());
  net.tb.run_for(1_s);
  sim::Rng rng{seed};
  int exchanged = 0;
  for (int trial = 0; trial < 8; ++trial) {
    auto* a = net.hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.hosts.size()) - 1))];
    auto* b = net.hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.hosts.size()) - 1))];
    if (a == b) continue;
    a->clear_inbox();
    a->send_ping(b->mac(), b->ip(), static_cast<std::uint16_t>(trial), 1);
    net.tb.run_for(500_ms);
    for (const auto& p : a->received()) {
      if (p.icmp() && p.icmp()->type == net::IcmpPayload::Type::EchoReply &&
          p.icmp()->ident == trial) {
        ++exchanged;
        break;
      }
    }
  }
  EXPECT_GE(exchanged, 6);  // nearly all sampled pairs (a==b trials skip)
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ScaleSweep,
    ::testing::Values(std::make_tuple(1ull, 8, 2),
                      std::make_tuple(2ull, 12, 4),
                      std::make_tuple(3ull, 20, 6),
                      std::make_tuple(4ull, 20, 0),   // pure tree
                      std::make_tuple(5ull, 6, 10))); // dense mesh

TEST(Scale, TopoGuardQuietOnLargeBenignNetwork) {
  RandomNet net{7, 15, 4};
  defense::install_topoguard(net.tb.controller());
  net.tb.start(2_s);
  for (auto* h : net.hosts) h->send_arp_request(net.hosts[0]->ip());
  net.tb.run_for(60_s);
  EXPECT_EQ(net.tb.controller().alerts().count(), 0u);
}

TEST(Scale, LinkFailureReroutesTraffic) {
  // Redundant topology: cutting one link must not partition reachability
  // once the controller notices (Port-Down tears the link immediately).
  Testbed tb{[] {
    TestbedOptions o;
    o.seed = 11;
    o.check_invariants = true;
    return o;
  }()};
  for (of::Dpid d = 1; d <= 4; ++d) tb.add_switch(d);
  // Ring: 1-2-3-4-1.
  tb.connect_switches(1, 10, 2, 11);
  tb.connect_switches(2, 10, 3, 11);
  tb.connect_switches(3, 10, 4, 11);
  of::DataLink& closing = tb.connect_switches(4, 10, 1, 11);
  attack::HostConfig c1;
  c1.mac = net::MacAddress::host(1);
  c1.ip = net::Ipv4Address::host(1);
  attack::Host& h1 = tb.add_host(1, 1, c1);
  attack::HostConfig c2;
  c2.mac = net::MacAddress::host(2);
  c2.ip = net::Ipv4Address::host(2);
  attack::Host& h2 = tb.add_host(4, 1, c2);
  tb.start(2_s);
  h1.send_arp_request(h2.ip());
  h2.send_arp_request(h1.ip());
  tb.run_for(500_ms);

  // Direct path 1-4 works.
  h1.clear_inbox();
  h1.send_ping(h2.mac(), h2.ip(), 1, 1);
  tb.run_for(500_ms);
  bool before = false;
  for (const auto& p : h1.received()) {
    if (p.icmp() && p.icmp()->type == net::IcmpPayload::Type::EchoReply) {
      before = true;
    }
  }
  ASSERT_TRUE(before);

  // Cut the 4-1 link; old flow rules idle out; traffic re-routes the
  // long way around the ring.
  closing.set_carrier(of::Side::A, false);
  tb.run_for(6_s);  // rules (5s idle) expire
  EXPECT_EQ(tb.controller().topology().link_count(), 3u);
  h1.clear_inbox();
  h1.send_ping(h2.mac(), h2.ip(), 2, 1);
  tb.run_for(500_ms);
  bool after = false;
  for (const auto& p : h1.received()) {
    if (p.icmp() && p.icmp()->type == net::IcmpPayload::Type::EchoReply &&
        p.icmp()->ident == 2) {
      after = true;
    }
  }
  EXPECT_TRUE(after);
}

}  // namespace
}  // namespace tmg::scenario
