// Randomized equivalence tests for the algorithmic fast paths.
//
// Each fast-path structure (epoch-keyed PathCache, dst-MAC-indexed
// FlowTable, incremental LatencyWindow, DedupRing) is driven with random
// operation sequences and compared, step by step, against the naive
// reference it replaces. Seeded Rng, so failures are reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_set>
#include <vector>

#include "ctrl/dedup_ring.hpp"
#include "of/flow_table.hpp"
#include "sim/event_loop.hpp"
#include "sim/fastpath.hpp"
#include "sim/rng.hpp"
#include "stats/latency_window.hpp"
#include "stats/quantile.hpp"
#include "topo/graph.hpp"
#include "topo/path_cache.hpp"

namespace tmg {
namespace {

using sim::Duration;
using sim::Rng;
using sim::SimTime;

/// Restore the process-global fast-path flag when a test scope exits.
class FastpathGuard {
 public:
  explicit FastpathGuard(bool enabled) : saved_{sim::fastpath_enabled()} {
    sim::set_fastpath_enabled(enabled);
  }
  ~FastpathGuard() { sim::set_fastpath_enabled(saved_); }
  FastpathGuard(const FastpathGuard&) = delete;
  FastpathGuard& operator=(const FastpathGuard&) = delete;

 private:
  bool saved_;
};

// ---------------- LatencyWindow vs sort-based reference ----------------

class LatencyWindowFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencyWindowFuzz, IncrementalThresholdMatchesNaiveSort) {
  Rng rng{GetParam()};
  const auto capacity = static_cast<std::size_t>(rng.uniform_int(1, 40));
  const auto min_samples = static_cast<std::size_t>(rng.uniform_int(1, 10));
  const double k = 3.0;
  stats::LatencyWindow window{capacity, k, min_samples};
  std::deque<double> reference;  // same eviction policy, naive threshold

  for (int step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 99));
    if (op < 90) {
      const double sample = rng.normal(20.0, 5.0);
      window.add(sample);
      reference.push_back(sample);
      if (reference.size() > capacity) reference.pop_front();
    } else if (op < 95) {
      // Threshold probe between mutations.
      const double probe = rng.normal(25.0, 10.0);
      std::optional<double> naive;
      if (reference.size() >= min_samples) {
        std::vector<double> sorted(reference.begin(), reference.end());
        std::sort(sorted.begin(), sorted.end());
        naive = stats::compute_iqr_sorted(sorted).upper_fence(k);
      }
      ASSERT_EQ(window.threshold(), naive) << "step " << step;
      ASSERT_EQ(window.is_outlier(probe),
                naive.has_value() && probe > *naive);
    } else {
      window.clear();
      reference.clear();
    }
    ASSERT_TRUE(window.audit().empty());
  }
}

TEST_P(LatencyWindowFuzz, FastpathOffMatchesFastpathOn) {
  // Same operation sequence with the fast path enabled and disabled:
  // thresholds must be bitwise identical.
  const auto run = [&](bool fastpath) {
    FastpathGuard guard{fastpath};
    Rng rng{GetParam()};
    stats::LatencyWindow window{17, 3.0, 5};
    std::vector<double> thresholds;
    for (int step = 0; step < 500; ++step) {
      window.add(rng.normal(20.0, 5.0));
      thresholds.push_back(window.threshold().value_or(-1.0));
    }
    return thresholds;
  };
  ASSERT_EQ(run(true), run(false));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyWindowFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------- FlowTable vs linear-scan reference ----------------

/// The original linear-scan flow table, kept verbatim as the semantic
/// oracle for the indexed implementation.
class LinearFlowTable {
 public:
  void add(of::FlowEntry entry, SimTime now) {
    entry.installed_at = now;
    entry.last_matched_at = now;
    for (auto& e : entries_) {
      if (e.priority == entry.priority && e.match == entry.match) {
        e = entry;
        return;
      }
    }
    const auto pos = std::find_if(
        entries_.begin(), entries_.end(),
        [&](const of::FlowEntry& e) { return e.priority < entry.priority; });
    entries_.insert(pos, std::move(entry));
  }

  std::vector<of::FlowEntry> remove_matching(const of::FlowMatch& match) {
    std::vector<of::FlowEntry> removed;
    auto it = entries_.begin();
    while (it != entries_.end()) {
      if (it->match == match) {
        removed.push_back(*it);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    return removed;
  }

  of::FlowEntry* lookup(const net::Packet& pkt, of::PortNo in_port,
                        SimTime now) {
    for (auto& e : entries_) {
      if (e.match.matches(pkt, in_port)) {
        ++e.packet_count;
        e.byte_count += pkt.wire_size();
        e.last_matched_at = now;
        return &e;
      }
    }
    return nullptr;
  }

  std::vector<of::ExpiredEntry> expire(SimTime now) {
    std::vector<of::ExpiredEntry> expired;
    auto it = entries_.begin();
    while (it != entries_.end()) {
      const bool hard = it->hard_timeout > Duration::zero() &&
                        now - it->installed_at >= it->hard_timeout;
      const bool idle = it->idle_timeout > Duration::zero() &&
                        now - it->last_matched_at >= it->idle_timeout;
      if (hard || idle) {
        expired.push_back(of::ExpiredEntry{
            *it, hard ? of::FlowRemoved::Reason::HardTimeout
                      : of::FlowRemoved::Reason::IdleTimeout});
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    return expired;
  }

  [[nodiscard]] const std::vector<of::FlowEntry>& entries() const {
    return entries_;
  }

 private:
  std::vector<of::FlowEntry> entries_;
};

bool same_entry(const of::FlowEntry& a, const of::FlowEntry& b) {
  return a.cookie == b.cookie && a.match == b.match && a.action == b.action &&
         a.priority == b.priority && a.idle_timeout == b.idle_timeout &&
         a.hard_timeout == b.hard_timeout &&
         a.packet_count == b.packet_count && a.byte_count == b.byte_count &&
         a.installed_at == b.installed_at &&
         a.last_matched_at == b.last_matched_at;
}

class FlowTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableFuzz, IndexedTableMatchesLinearScan) {
  Rng rng{GetParam()};
  of::FlowTable indexed;
  LinearFlowTable linear;
  SimTime now = SimTime::zero();
  std::uint64_t next_cookie = 1;

  // A small universe of MACs/ports so priority ties, identical matches,
  // wildcards and dst collisions all happen often.
  const auto random_mac = [&] {
    return net::MacAddress::host(
        static_cast<std::uint32_t>(rng.uniform_int(1, 6)));
  };
  const auto random_match = [&] {
    of::FlowMatch m;
    if (rng.uniform_int(0, 9) < 8) m.dst_mac = random_mac();
    if (rng.uniform_int(0, 9) < 3) m.src_mac = random_mac();
    if (rng.uniform_int(0, 9) < 2)
      m.in_port = static_cast<of::PortNo>(rng.uniform_int(1, 4));
    return m;
  };
  const auto random_packet = [&] {
    net::Packet pkt;
    pkt.src_mac = random_mac();
    pkt.dst_mac = random_mac();
    return pkt;
  };

  for (int step = 0; step < 4000; ++step) {
    now = now + Duration::millis(rng.uniform_int(0, 200));
    const int op = static_cast<int>(rng.uniform_int(0, 99));
    if (op < 30) {
      of::FlowEntry e;
      e.cookie = next_cookie++;
      e.match = random_match();
      e.action = of::FlowAction::output(
          static_cast<of::PortNo>(rng.uniform_int(1, 4)));
      e.priority = static_cast<std::uint16_t>(100 + rng.uniform_int(0, 2));
      if (rng.uniform_int(0, 2) != 0)
        e.idle_timeout = Duration::seconds(rng.uniform_int(1, 5));
      if (rng.uniform_int(0, 3) == 0)
        e.hard_timeout = Duration::seconds(rng.uniform_int(1, 8));
      indexed.add(e, now);
      linear.add(e, now);
    } else if (op < 75) {
      const net::Packet pkt = random_packet();
      const auto in_port = static_cast<of::PortNo>(rng.uniform_int(1, 4));
      of::FlowEntry* a = indexed.lookup(pkt, in_port, now);
      of::FlowEntry* b = linear.lookup(pkt, in_port, now);
      ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
      if (a != nullptr) {
        ASSERT_TRUE(same_entry(*a, *b)) << "step " << step;
      }
    } else if (op < 85) {
      const of::FlowMatch m = random_match();  // DeleteMatching semantics
      const auto a = indexed.remove_matching(m);
      const auto b = linear.remove_matching(m);
      ASSERT_EQ(a.size(), b.size()) << "step " << step;
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(same_entry(a[i], b[i])) << "step " << step;
      }
    } else {
      const auto a = indexed.expire(now);
      const auto b = linear.expire(now);
      ASSERT_EQ(a.size(), b.size()) << "step " << step;
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(same_entry(a[i].entry, b[i].entry)) << "step " << step;
        ASSERT_EQ(a[i].reason, b[i].reason) << "step " << step;
      }
    }
    // Full-state equivalence after every operation.
    ASSERT_EQ(indexed.entries().size(), linear.entries().size());
    for (std::size_t i = 0; i < indexed.entries().size(); ++i) {
      ASSERT_TRUE(same_entry(indexed.entries()[i], linear.entries()[i]))
          << "step " << step << " position " << i;
    }
    ASSERT_TRUE(indexed.audit().empty()) << "step " << step;
  }
}

TEST_P(FlowTableFuzz, FastpathOffRunsLinearAlgorithms) {
  FastpathGuard guard{false};
  Rng rng{GetParam()};
  of::FlowTable table;
  SimTime now = SimTime::zero();
  for (int i = 0; i < 50; ++i) {
    of::FlowEntry e;
    e.match.dst_mac = net::MacAddress::host(
        static_cast<std::uint32_t>(rng.uniform_int(1, 4)));
    e.idle_timeout = Duration::seconds(1);
    table.add(e, now);
  }
  ASSERT_LE(table.size(), 4u);  // identical (match, priority) replaced
  ASSERT_TRUE(table.audit().empty());
  now = now + Duration::seconds(2);
  const std::size_t before = table.size();
  ASSERT_EQ(table.expire(now).size(), before);
  ASSERT_EQ(table.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableFuzz,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// ---------------- PathCache vs fresh BFS ----------------

class PathCacheFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathCacheFuzz, CachedPathsMatchFreshBfsAcrossChurn) {
  Rng rng{GetParam()};
  topo::TopologyGraph graph;
  topo::PathCache cache{graph};
  constexpr of::Dpid kSwitches = 8;

  const auto random_loc = [&] {
    return of::Location{
        static_cast<of::Dpid>(rng.uniform_int(1, kSwitches)),
        static_cast<of::PortNo>(rng.uniform_int(1, 4))};
  };

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 99));
    if (op < 25) {
      const std::uint64_t before = graph.epoch();
      const bool added = graph.add_link(random_loc(), random_loc());
      // The epoch must move iff the link set changed.
      ASSERT_EQ(graph.epoch() != before, added);
    } else if (op < 40) {
      const std::uint64_t before = graph.epoch();
      const bool removed = graph.remove_link(random_loc(), random_loc());
      ASSERT_EQ(graph.epoch() != before, removed);
    } else if (op < 42) {
      const std::uint64_t before = graph.epoch();
      graph.clear();
      ASSERT_GT(graph.epoch(), before);
    } else {
      const auto from = static_cast<of::Dpid>(rng.uniform_int(1, kSwitches));
      const auto to = static_cast<of::Dpid>(rng.uniform_int(1, kSwitches));
      const auto cached = cache.path(from, to);
      const auto fresh = graph.path(from, to);
      ASSERT_EQ(cached.has_value(), fresh.has_value()) << "step " << step;
      if (cached) {
        ASSERT_EQ(cached->size(), fresh->size()) << "step " << step;
        for (std::size_t i = 0; i < cached->size(); ++i) {
          ASSERT_EQ((*cached)[i].from, (*fresh)[i].from);
          ASSERT_EQ((*cached)[i].to, (*fresh)[i].to);
        }
      }
    }
    ASSERT_TRUE(cache.audit().empty()) << "step " << step;
  }
  // Steady state must actually hit: repeat one query with no churn.
  (void)cache.path(1, 2);
  const std::uint64_t hits_before = cache.hits();
  (void)cache.path(1, 2);
  ASSERT_EQ(cache.hits(), hits_before + 1);
}

TEST(PathCache, FabricatedLinkInvalidatesCachedPath) {
  // The security property behind the epoch contract: once an attacker
  // fabricates a link, no pre-attack path may be served from cache.
  topo::TopologyGraph graph;
  topo::PathCache cache{graph};
  graph.add_link({1, 1}, {2, 1});
  graph.add_link({2, 2}, {3, 1});
  const auto before = cache.path(1, 3);
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(before->size(), 2u);  // 1 -> 2 -> 3

  // Fabricated shortcut (the paper's link-fabrication attack).
  ASSERT_TRUE(graph.add_link({1, 2}, {3, 2}));
  const auto after = cache.path(1, 3);
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->size(), 1u);  // routed over the fabricated edge
  ASSERT_TRUE(cache.audit().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathCacheFuzz,
                         ::testing::Values(21u, 22u, 23u));

// ---------------- DedupRing vs set+deque reference ----------------

class DedupRingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DedupRingFuzz, MatchesSetDequeReference) {
  Rng rng{GetParam()};
  const auto capacity = static_cast<std::size_t>(rng.uniform_int(4, 64));
  ctrl::DedupRing ring{capacity};
  std::unordered_set<std::uint64_t> ref_set;
  std::deque<std::uint64_t> ref_order;

  for (int step = 0; step < 20000; ++step) {
    // Small id universe so evict-then-reinsert cycles are common.
    const auto id = static_cast<std::uint64_t>(rng.uniform_int(1, 300));
    ASSERT_EQ(ring.contains(id), ref_set.contains(id)) << "step " << step;
    if (!ref_set.contains(id)) {
      ring.push(id);
      ref_set.insert(id);
      ref_order.push_back(id);
      while (ref_order.size() > capacity) {
        ref_set.erase(ref_order.front());
        ref_order.pop_front();
      }
    }
    ASSERT_EQ(ring.size(), ref_set.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DedupRingFuzz,
                         ::testing::Values(31u, 32u, 33u));

// ---------------- EventLoop post() ordering ----------------

TEST(EventLoopPost, PostAndScheduleShareOneOrderingDomain) {
  sim::EventLoop loop;
  std::vector<int> fired;
  loop.post_after(Duration::millis(5), [&] { fired.push_back(1); });
  loop.schedule_after(Duration::millis(5), [&] { fired.push_back(2); });
  loop.post_after(Duration::millis(5), [&] { fired.push_back(3); });
  loop.post_after(Duration::millis(1), [&] { fired.push_back(0); });
  loop.run();
  // Equal timestamps fire in insertion order across both APIs.
  ASSERT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_EQ(loop.events_executed(), 4u);
}

TEST(EventLoopPost, CancelledTimersInterleavedWithPosts) {
  sim::EventLoop loop;
  std::vector<int> fired;
  auto handle =
      loop.schedule_after(Duration::millis(2), [&] { fired.push_back(-1); });
  for (int i = 0; i < 200; ++i) {
    loop.post_after(Duration::millis(3), [&fired, i] { fired.push_back(i); });
  }
  handle.cancel();
  ASSERT_EQ(loop.live_events(), 200u);
  loop.run();
  ASSERT_EQ(fired.size(), 200u);
  ASSERT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

}  // namespace
}  // namespace tmg
