// Tests for the hypervisor substrate and the attacker-induced migration
// kill chain (paper Sec. IV-B: co-locate, saturate, wait for the
// balancer to move the victim, win the re-binding race).
#include <gtest/gtest.h>

#include "attack/port_probing.hpp"
#include "ctrl/host_tracker.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/hypervisor.hpp"
#include "scenario/testbed.hpp"

namespace tmg::scenario {
namespace {

using namespace tmg::sim::literals;
using sim::Duration;

scenario::TestbedOptions checked_options() {
  scenario::TestbedOptions opts;
  opts.check_invariants = true;  // runtime invariant checker (src/check)
  return opts;
}

struct Cloud {
  Testbed tb{checked_options()};
  Hypervisor hv;
  attack::Host* victim;
  attack::Host* attacker_vm;   // co-located noisy neighbor (pinned)
  attack::Host* attacker_net;  // network-side attacker doing the probing
  std::vector<of::DataLink*> server_a_slots;
  std::vector<of::DataLink*> server_b_slots;

  explicit Cloud(HypervisorConfig cfg = {})
      : hv{tb.loop(), tb.fork_rng(), cfg} {
    tb.add_switch(0x1);
    tb.add_switch(0x2);
    tb.connect_switches(0x1, 10, 0x2, 10);
    // Server A's VM slots hang off switch 0x1, server B's off 0x2.
    server_a_slots = {&tb.add_access_link(0x1, 1), &tb.add_access_link(0x1, 2)};
    server_b_slots = {&tb.add_access_link(0x2, 1), &tb.add_access_link(0x2, 2)};
    hv.add_server(1, 1.0, server_a_slots);
    hv.add_server(2, 1.0, server_b_slots);

    attack::HostConfig v;
    v.mac = net::MacAddress::host(1);
    v.ip = net::Ipv4Address::host(1);
    victim = &tb.add_host_on(*server_a_slots[0], v);
    // place_vm re-attaches; create unattached hosts via add_host_on to a
    // temporary link is awkward, so we detach and let place_vm cable it.
    victim->detach_link();

    attack::HostConfig avm;
    avm.mac = net::MacAddress::host(0xA1);
    avm.ip = net::Ipv4Address::host(161);
    attacker_vm = &tb.add_host_on(*server_a_slots[1], avm);
    attacker_vm->detach_link();

    attack::HostConfig anet;
    anet.mac = net::MacAddress::host(0xA2);
    anet.ip = net::Ipv4Address::host(162);
    attacker_net = &tb.add_host(0x2, 5, anet);

    hv.place_vm("victim", *victim, 1, {.load = 0.3, .migratable = true});
    hv.place_vm("noisy", *attacker_vm, 1, {.load = 0.1, .migratable = false});
  }
};

TEST(Hypervisor, PlacementAndUtilization) {
  Cloud c;
  EXPECT_EQ(c.hv.server_of("victim"), 1u);
  EXPECT_EQ(c.hv.server_of("noisy"), 1u);
  EXPECT_DOUBLE_EQ(c.hv.server_utilization(1), 0.4);
  EXPECT_DOUBLE_EQ(c.hv.server_utilization(2), 0.0);
}

TEST(Hypervisor, PlacedVmIsReachable) {
  Cloud c;
  c.hv.start();
  c.tb.start(1_s);
  c.attacker_net->send_arp_request(c.victim->ip());
  c.tb.run_for(300_ms);
  bool replied = false;
  for (const auto& p : c.attacker_net->received()) {
    if (p.arp() && p.arp()->op == net::ArpPayload::Op::Reply) replied = true;
  }
  EXPECT_TRUE(replied);
}

TEST(Hypervisor, NoMigrationBelowThreshold) {
  Cloud c;
  c.hv.start();
  c.tb.start(1_s);
  c.tb.run_for(30_s);
  EXPECT_EQ(c.hv.migrations(), 0u);
  EXPECT_EQ(c.hv.server_of("victim"), 1u);
}

TEST(Hypervisor, TransientSpikeTolerated) {
  Cloud c;
  c.hv.start();
  c.tb.start(1_s);
  c.hv.set_load("noisy", 0.8);  // saturate...
  c.tb.run_for(3_s);            // ...but shorter than the 5 s sustain
  c.hv.set_load("noisy", 0.1);
  c.tb.run_for(30_s);
  EXPECT_EQ(c.hv.migrations(), 0u);
}

TEST(Hypervisor, SustainedSaturationMigratesVictim) {
  Cloud c;
  c.hv.start();
  c.tb.start(1_s);
  std::string moved;
  Duration downtime;
  c.hv.set_migration_listener([&](const std::string& vm, ServerId from,
                                  ServerId to, Duration d) {
    moved = vm;
    downtime = d;
    EXPECT_EQ(from, 1u);
    EXPECT_EQ(to, 2u);
  });
  c.hv.set_load("noisy", 0.8);  // co-tenant resource DoS
  c.tb.run_for(30_s);
  EXPECT_EQ(c.hv.migrations(), 1u);
  EXPECT_EQ(moved, "victim");  // the pinned noisy neighbor stays
  EXPECT_EQ(c.hv.server_of("victim"), 2u);
  EXPECT_EQ(c.hv.server_of("noisy"), 1u);
  // Live-migration downtime is seconds-scale (paper Sec. IV-B2).
  EXPECT_GT(downtime.to_seconds_f(), 0.3);
  EXPECT_LT(downtime.to_seconds_f(), 10.0);
}

TEST(Hypervisor, MigratedVmRebindsAtNewLocation) {
  Cloud c;
  c.hv.start();
  c.tb.start(1_s);
  c.attacker_net->send_arp_request(c.victim->ip());  // learn old binding
  c.tb.run_for(300_ms);
  c.hv.set_load("noisy", 0.8);
  c.tb.run_for(40_s);
  const auto rec =
      c.tb.controller().host_tracker().find(c.victim->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc.dpid, 0x2u);  // now behind server B's switch
}

TEST(Hypervisor, ServerFullThrows) {
  Cloud c;
  attack::HostConfig extra;
  extra.mac = net::MacAddress::host(7);
  extra.ip = net::Ipv4Address::host(7);
  attack::Host& h = c.tb.add_host(0x2, 6, extra);
  h.detach_link();
  EXPECT_THROW(c.hv.place_vm("extra", h, 1, {}), std::logic_error);
}

TEST(Hypervisor, DuplicateNamesAndServersRejected) {
  Cloud c;
  EXPECT_THROW(c.hv.add_server(1, 1.0, {}), std::logic_error);
  attack::HostConfig extra;
  extra.mac = net::MacAddress::host(8);
  extra.ip = net::Ipv4Address::host(8);
  attack::Host& h = c.tb.add_host(0x2, 6, extra);
  h.detach_link();
  EXPECT_THROW(c.hv.place_vm("victim", h, 2, {}), std::logic_error);
}

TEST(InducedMigration, FullKillChainUnderTopoGuard) {
  // The paper's "sophisticated attacker": instead of waiting for a
  // migration, cause one, with the port-probing attack armed.
  Cloud c;
  defense::install_topoguard(c.tb.controller());
  c.hv.start();
  c.tb.start(1_s);

  // Everyone registers.
  c.victim->send_arp_request(c.attacker_net->ip());
  c.attacker_net->send_arp_request(c.victim->ip());
  c.tb.run_for(500_ms);

  attack::PortProbingConfig pc;
  pc.victim_ip = c.victim->ip();
  attack::PortProbingAttack probe{c.tb.loop(), c.tb.fork_rng(),
                                  *c.attacker_net, pc};
  probe.start();
  c.tb.run_for(1_s);
  ASSERT_FALSE(probe.identity_claimed());  // victim healthy so far

  // Phase 1: co-located DoS saturates the server.
  c.hv.set_load("noisy", 0.8);
  // Phase 2: the balancer migrates the victim; the prober detects the
  // downtime window and claims the identity inside it.
  c.tb.run_for(40_s);
  EXPECT_EQ(c.hv.migrations(), 1u);
  EXPECT_TRUE(probe.identity_claimed());
  const auto& tl = probe.timeline();
  ASSERT_TRUE(tl.victim_declared_down.has_value());
  ASSERT_TRUE(tl.interface_up_as_victim.has_value());
  EXPECT_LT(*tl.victim_declared_down, *tl.interface_up_as_victim);
}

}  // namespace
}  // namespace tmg::scenario
