// Chaos test: randomized host churn (joins, leaves, migrations, flaps,
// traffic) against the full defense stack for minutes of simulated
// time. Invariants: the control plane never wedges, the topology
// converges back to exactly the physical links, and host bindings match
// where hosts actually sit.
#include <gtest/gtest.h>

#include "ctrl/host_tracker.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/testbed.hpp"

namespace tmg::scenario {
namespace {

using namespace tmg::sim::literals;

class Chaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Chaos, ControlPlaneSurvivesChurnAndConverges) {
  const std::uint64_t seed = GetParam();
  TestbedOptions opts;
  opts.seed = seed;
  opts.controller.authenticate_lldp = true;
  opts.controller.lldp_timestamps = true;
  opts.check_invariants = true;  // runtime invariant checker (src/check)
  Testbed tb{opts};

  constexpr int kSwitches = 6;
  for (of::Dpid d = 1; d <= kSwitches; ++d) tb.add_switch(d);
  // Ring plus one chord: survives any single link loss.
  std::size_t real_links = 0;
  for (int i = 1; i <= kSwitches; ++i) {
    tb.connect_switches(static_cast<of::Dpid>(i), 10,
                        static_cast<of::Dpid>(i % kSwitches + 1), 11);
    ++real_links;
  }
  tb.connect_switches(1, 12, 4, 12);
  ++real_links;

  struct Slot {
    attack::Host* host = nullptr;
    of::DataLink* home;
    of::DataLink* away;
    bool at_home = true;
  };
  std::vector<Slot> slots;
  for (int i = 0; i < kSwitches; ++i) {
    Slot s;
    s.home = &tb.add_access_link(static_cast<of::Dpid>(i + 1), 1);
    s.away = &tb.add_access_link(static_cast<of::Dpid>(i + 1), 2);
    attack::HostConfig cfg;
    cfg.mac = net::MacAddress::host(static_cast<std::uint32_t>(i + 1));
    cfg.ip = net::Ipv4Address::host(static_cast<std::uint32_t>(i + 1));
    s.host = &tb.add_host_on(*s.home, cfg);
    slots.push_back(s);
  }

  defense::install_topoguard_plus(tb.controller());
  tb.start(2_s);
  for (auto& s : slots) s.host->send_arp_request(slots[0].host->ip());
  tb.run_for(1_s);

  // Churn: random action every 100-400 ms of simulated time.
  sim::Rng rng{seed ^ 0xc4a05};
  for (int step = 0; step < 600; ++step) {
    Slot& s = slots[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1))];
    switch (rng.uniform_int(0, 5)) {
      case 0:  // traffic burst
        if (s.host->interface_up()) {
          Slot& peer = slots[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(slots.size()) - 1))];
          s.host->send_ping(peer.host->mac(), peer.host->ip(), 0x7,
                            static_cast<std::uint16_t>(step));
        }
        break;
      case 1:  // brief outage
        s.host->flap_interface(
            sim::Duration::millis(rng.uniform_int(2, 60)));
        break;
      case 2:  // go dark for a while
        s.host->set_interface(false);
        break;
      case 3:  // come back
        s.host->set_interface(true);
        break;
      case 4: {  // migrate between this switch's two access ports
        // One migration at a time per host (a VM can't start a second
        // move while unplugged mid-flight).
        if (!s.host->interface_up() || !s.host->attached()) break;
        of::DataLink* target = s.at_home ? s.away : s.home;
        s.at_home = !s.at_home;
        migrate_host(tb, *s.host,  *target,
                     sim::Duration::millis(rng.uniform_int(50, 2000)));
        break;
      }
      case 5:  // ARP chatter
        if (s.host->interface_up()) {
          s.host->send_arp_request(
              net::Ipv4Address::host(static_cast<std::uint32_t>(
                  rng.uniform_int(1, kSwitches))));
        }
        break;
    }
    tb.run_for(sim::Duration::millis(rng.uniform_int(100, 400)));
  }

  // Quiesce: everyone online and chatty, then two discovery rounds.
  for (auto& s : slots) s.host->set_interface(true);
  tb.run_for(2_s);
  for (auto& s : slots) s.host->send_arp_request(slots[0].host->ip());
  tb.run_for(40_s);

  // Invariant 1: the topology holds exactly the physical links again.
  EXPECT_EQ(tb.controller().topology().link_count(), real_links);

  // Invariant 2: every host's binding matches the port it actually
  // occupies (home or away slot of its switch).
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const auto rec =
        tb.controller().host_tracker().find(slots[i].host->mac());
    ASSERT_TRUE(rec.has_value()) << "host " << i;
    EXPECT_EQ(rec->loc.dpid, static_cast<of::Dpid>(i + 1)) << "host " << i;
    const of::PortNo expect_port = slots[i].at_home ? 1 : 2;
    EXPECT_EQ(rec->loc.port, expect_port) << "host " << i;
  }

  // Invariant 3: end-to-end reachability across the ring.
  slots[0].host->clear_inbox();
  slots[0].host->send_ping(slots[3].host->mac(), slots[3].host->ip(), 0x9,
                           1);
  tb.run_for(1_s);
  bool replied = false;
  for (const auto& p : slots[0].host->received()) {
    if (p.icmp() && p.icmp()->type == net::IcmpPayload::Type::EchoReply &&
        p.icmp()->ident == 0x9) {
      replied = true;
    }
  }
  EXPECT_TRUE(replied);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chaos,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tmg::scenario
