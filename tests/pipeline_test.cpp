// Tests for the message pipeline and service registry (DESIGN.md §9):
// deterministic chain ordering, Stop semantics, verdict accumulation,
// enable/disable, per-listener stats, and registry lookups — plus
// end-to-end determinism of the stacked-defense suite across repeated
// runs and worker counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/assert.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/message_pipeline.hpp"
#include "ctrl/service_registry.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_runner.hpp"

namespace tmg::ctrl {
namespace {

using namespace tmg::sim::literals;

/// Scripted listener: fixed name/mask/disposition, counts deliveries.
class TestListener final : public MessageListener {
 public:
  TestListener(std::string name, std::uint32_t mask,
               Disposition disposition = Disposition::Continue)
      : name_{std::move(name)}, mask_{mask}, disposition_{disposition} {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint32_t subscriptions() const override { return mask_; }
  Disposition on_message(const PipelineMessage&,
                         DispatchContext& ctx) override {
    ++calls;
    if (block) ctx.verdict = Verdict::Block;
    return disposition_;
  }

  int calls = 0;
  bool block = false;

 private:
  std::string name_;
  std::uint32_t mask_;
  Disposition disposition_;
};

PipelineMessage packet_in_message(const of::PacketIn& pi) {
  return PipelineMessage::from(pi);
}

// ---------------------------------------------------------------------
// Chain ordering
// ---------------------------------------------------------------------

TEST(MessagePipeline, ChainOrderIsPureFunctionOfPriorityAndName) {
  const std::uint32_t mask = mask_of(MessageType::PacketIn);
  // Three registration orders of the same (priority, name) set must
  // resolve to the same chain.
  std::vector<std::pair<int, std::string>> specs = {
      {300, "gamma"}, {100, "alpha"}, {200, "beta"}, {100, "delta"}};
  std::vector<std::vector<std::string>> chains;
  for (int shuffle = 0; shuffle < 3; ++shuffle) {
    std::rotate(specs.begin(), specs.begin() + shuffle, specs.end());
    MessagePipeline p;
    for (const auto& [prio, name] : specs) {
      p.add_owned(prio, std::make_unique<TestListener>(name, mask));
    }
    chains.push_back(p.chain_names());
    EXPECT_TRUE(p.audit().empty());
  }
  const std::vector<std::string> expected = {"alpha", "delta", "beta",
                                            "gamma"};
  EXPECT_EQ(chains[0], expected);
  EXPECT_EQ(chains[1], expected);
  EXPECT_EQ(chains[2], expected);
}

TEST(MessagePipeline, DuplicateNamesGetDeterministicSuffixes) {
  const std::uint32_t mask = mask_of(MessageType::PacketIn);
  MessagePipeline p;
  p.add_owned(50, std::make_unique<TestListener>("dup", mask));
  p.add_owned(50, std::make_unique<TestListener>("dup", mask));
  p.add_owned(50, std::make_unique<TestListener>("dup", mask));
  const std::vector<std::string> expected = {"dup", "dup#2", "dup#3"};
  EXPECT_EQ(p.chain_names(), expected);
  EXPECT_TRUE(p.audit().empty());
}

// ---------------------------------------------------------------------
// Dispatch semantics
// ---------------------------------------------------------------------

TEST(MessagePipeline, StopConsumesTheMessage) {
  const std::uint32_t mask = mask_of(MessageType::PacketIn);
  MessagePipeline p;
  auto& first = static_cast<TestListener&>(
      p.add_owned(1, std::make_unique<TestListener>("first", mask)));
  auto& mid = static_cast<TestListener&>(p.add_owned(
      2, std::make_unique<TestListener>("mid", mask, Disposition::Stop)));
  auto& last = static_cast<TestListener&>(
      p.add_owned(3, std::make_unique<TestListener>("last", mask)));

  of::PacketIn pi;
  DispatchContext ctx;
  p.dispatch(packet_in_message(pi), ctx);

  EXPECT_EQ(first.calls, 1);
  EXPECT_EQ(mid.calls, 1);
  EXPECT_EQ(last.calls, 0);
  EXPECT_EQ(ctx.visited, 2u);
  ASSERT_NE(ctx.stopped_by, nullptr);
  EXPECT_STREQ(ctx.stopped_by, "mid");

  const auto stats = p.stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[1].name, "mid");
  EXPECT_EQ(stats[1].dispatches, 1u);
  EXPECT_EQ(stats[1].stops, 1u);
  EXPECT_EQ(stats[2].dispatches, 0u);
}

TEST(MessagePipeline, SubscriptionMaskFiltersDelivery) {
  MessagePipeline p;
  auto& ports = static_cast<TestListener&>(p.add_owned(
      1, std::make_unique<TestListener>("ports",
                                        mask_of(MessageType::PortStatus))));
  auto& both = static_cast<TestListener&>(p.add_owned(
      2, std::make_unique<TestListener>(
             "both", MessageType::PacketIn | MessageType::PortStatus)));

  of::PacketIn pi;
  EXPECT_EQ(p.dispatch(packet_in_message(pi)), Verdict::Allow);
  EXPECT_EQ(ports.calls, 0);
  EXPECT_EQ(both.calls, 1);

  of::PortStatus ps;
  p.dispatch(PipelineMessage::from(0x1, ps));
  EXPECT_EQ(ports.calls, 1);
  EXPECT_EQ(both.calls, 2);
}

TEST(MessagePipeline, BlockAccumulatesWithoutStoppingSiblings) {
  const std::uint32_t mask = mask_of(MessageType::PacketIn);
  MessagePipeline p;
  auto& blocker = static_cast<TestListener&>(
      p.add_owned(1, std::make_unique<TestListener>("blocker", mask)));
  blocker.block = true;
  auto& sibling = static_cast<TestListener&>(
      p.add_owned(2, std::make_unique<TestListener>("sibling", mask)));

  of::PacketIn pi;
  EXPECT_EQ(p.dispatch(packet_in_message(pi)), Verdict::Block);
  // The sibling still saw the message: Block accumulates, it does not
  // short-circuit (paper Sec. IV-B).
  EXPECT_EQ(sibling.calls, 1);
}

TEST(MessagePipeline, DisabledListenersAreSkippedButKeepTheirSlot) {
  const std::uint32_t mask = mask_of(MessageType::PacketIn);
  MessagePipeline p;
  auto& a = static_cast<TestListener&>(
      p.add_owned(1, std::make_unique<TestListener>("a", mask)));
  auto& b = static_cast<TestListener&>(
      p.add_owned(2, std::make_unique<TestListener>("b", mask)));

  EXPECT_TRUE(p.set_enabled("a", false));
  EXPECT_FALSE(p.is_enabled("a"));
  EXPECT_FALSE(p.set_enabled("nonexistent", false));

  of::PacketIn pi;
  p.dispatch(packet_in_message(pi));
  EXPECT_EQ(a.calls, 0);
  EXPECT_EQ(b.calls, 1);
  const std::vector<std::string> expected = {"a", "b"};
  EXPECT_EQ(p.chain_names(), expected);  // order stable while disabled

  EXPECT_TRUE(p.set_enabled("a", true));
  p.dispatch(packet_in_message(pi));
  EXPECT_EQ(a.calls, 1);
}

// ---------------------------------------------------------------------
// Service registry
// ---------------------------------------------------------------------

TEST(ServiceRegistry, ProvideFindRequireRoundTrip) {
  ServiceRegistry reg;
  int service = 42;
  reg.provide("answer", &service);
  EXPECT_TRUE(reg.has("answer"));
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.find<int>("answer"), &service);
  EXPECT_EQ(&reg.require<int>("answer"), &service);
  EXPECT_EQ(reg.find<int>("missing"), nullptr);
  const std::vector<std::string> expected = {"answer"};
  EXPECT_EQ(reg.names(), expected);
}

TEST(ServiceRegistry, OfferIsFirstWins) {
  ServiceRegistry reg;
  int first = 1;
  int second = 2;
  reg.offer("svc", &first);
  reg.offer("svc", &second);  // no-op, no assertion
  EXPECT_EQ(reg.find<int>("svc"), &first);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ServiceRegistry, DuplicateProvideFailsTheAssertion) {
  ServiceRegistry reg;
  int service = 1;
  reg.provide("svc", &service);
  int failures = 0;
  check::FailureHandler previous = check::set_failure_handler(
      [&](const char*, int, const char*, const std::string&) { ++failures; });
  reg.provide("svc", &service);
  check::set_failure_handler(std::move(previous));
  EXPECT_GT(failures, 0);
}

TEST(ServiceRegistry, TypeMismatchFailsTheAssertion) {
  ServiceRegistry reg;
  int service = 1;
  reg.provide("svc", &service);
  int failures = 0;
  check::FailureHandler previous = check::set_failure_handler(
      [&](const char*, int, const char*, const std::string&) { ++failures; });
  (void)reg.find<double>("svc");
  check::set_failure_handler(std::move(previous));
  EXPECT_GT(failures, 0);
}

// ---------------------------------------------------------------------
// Controller wiring
// ---------------------------------------------------------------------

TEST(ControllerPipeline, CoreChainUsesTheProfileLayout) {
  sim::EventLoop loop;
  Controller ctrl{loop, sim::Rng{1}, ControllerConfig{}};
  const PipelineLayout layout = ctrl.config().profile.layout;
  const auto stats = ctrl.pipeline_stats();
  ASSERT_EQ(stats.size(), 6u);
  EXPECT_EQ(stats[0].name, "controller-core");
  EXPECT_EQ(stats[0].priority, layout.core);
  EXPECT_EQ(stats[1].name, "anomaly-ids");
  EXPECT_EQ(stats[1].priority, layout.anomaly_ids);
  EXPECT_EQ(stats[2].name, "verdict-gate");
  EXPECT_EQ(stats[2].priority, layout.verdict_gate);
  EXPECT_EQ(stats[3].name, kLinkDiscoveryServiceName);
  EXPECT_EQ(stats[3].priority, layout.link_discovery);
  EXPECT_EQ(stats[4].name, kHostTrackingServiceName);
  EXPECT_EQ(stats[4].priority, layout.host_tracking);
  EXPECT_EQ(stats[5].name, kRoutingServiceName);
  EXPECT_EQ(stats[5].priority, layout.routing);
  EXPECT_TRUE(ctrl.pipeline().audit().empty());

  // The three core services are registered under their canonical names.
  EXPECT_TRUE(ctrl.services().has(kLinkDiscoveryServiceName));
  EXPECT_TRUE(ctrl.services().has(kHostTrackingServiceName));
  EXPECT_TRUE(ctrl.services().has(kRoutingServiceName));
}

// ---------------------------------------------------------------------
// Stacked-suite determinism
// ---------------------------------------------------------------------

std::vector<std::pair<std::string, std::uint64_t>> dispatch_fingerprint(
    const std::vector<MessagePipeline::ListenerStats>& stats) {
  std::vector<std::pair<std::string, std::uint64_t>> fp;
  fp.reserve(stats.size());
  for (const auto& s : stats) fp.emplace_back(s.name, s.dispatches);
  return fp;
}

TEST(StackedSuite, TwoRunsAreIdentical) {
  scenario::HijackConfig cfg;
  cfg.suite = scenario::DefenseSuite::Stacked;
  cfg.seed = 11;
  cfg.collect_pipeline_stats = true;
  const scenario::HijackOutcome a = scenario::run_hijack(cfg);
  const scenario::HijackOutcome b = scenario::run_hijack(cfg);

  EXPECT_EQ(a.hijack_succeeded, b.hijack_succeeded);
  EXPECT_EQ(a.alerts_before_rejoin, b.alerts_before_rejoin);
  EXPECT_EQ(a.alerts_after_rejoin, b.alerts_after_rejoin);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(dispatch_fingerprint(a.pipeline_stats),
            dispatch_fingerprint(b.pipeline_stats));
  // The stacked chain really is the full stack.
  const auto names = dispatch_fingerprint(a.pipeline_stats);
  // core, 4 defenses, observer, anomaly slot, gate, 3 services
  ASSERT_EQ(names.size(), 11u);
  EXPECT_EQ(names[1].first, "TopoGuard");
  EXPECT_EQ(names[2].first, "SPHINX");
  EXPECT_EQ(names[3].first, "CMM");
  EXPECT_EQ(names[4].first, "LLI");
}

TEST(StackedSuite, WorkerCountDoesNotChangeResults) {
  const auto run_with_jobs = [](std::size_t jobs) {
    scenario::TrialRunner runner{{jobs}};
    return runner.map(4, [](std::size_t i) {
      scenario::HijackConfig cfg;
      cfg.suite = scenario::DefenseSuite::Stacked;
      cfg.seed = scenario::TrialRunner::trial_seed(11, i);
      cfg.collect_pipeline_stats = true;
      const scenario::HijackOutcome out = scenario::run_hijack(cfg);
      return std::make_tuple(out.hijack_succeeded, out.events_executed,
                             dispatch_fingerprint(out.pipeline_stats));
    });
  };
  EXPECT_EQ(run_with_jobs(1), run_with_jobs(8));
}

}  // namespace
}  // namespace tmg::ctrl
