// Fleet-scale testbed, background traffic, and driver determinism
// (src/scenario/fleet.*, src/scenario/background_traffic.*).
#include <gtest/gtest.h>

#include "ctrl/host_tracker.hpp"
#include "net/packet.hpp"
#include "scenario/fleet.hpp"

namespace tmg::scenario {
namespace {

using sim::Duration;

FleetTestbedConfig small_fat_tree(std::uint64_t seed = 42) {
  FleetTestbedConfig cfg;
  cfg.topology.family = topo::TopoFamily::FatTree;
  cfg.topology.k = 4;  // 20 switches, 16 attachments
  cfg.spare_access_links = 4;
  cfg.options.seed = seed;
  return cfg;
}

TEST(FleetTestbed, InstantiatesGeneratedFabricAndDiscoversIt) {
  net::reset_trace_ids();
  FleetTestbed f = make_fleet_testbed(small_fat_tree());
  EXPECT_EQ(f.topo.switch_count(), 20u);
  EXPECT_EQ(f.population.size(), 16u);  // every attachment is a host
  EXPECT_EQ(f.spare_links.size(), 4u);
  EXPECT_NE(f.victim_loc.dpid, f.attacker_loc.dpid);
  EXPECT_NE(f.attacker_loc.dpid, f.attacker_b_loc.dpid);

  f.tb->start(Duration::seconds(2));
  // Link discovery must converge on exactly the generated fabric.
  EXPECT_EQ(f.tb->controller().topology().link_count(),
            f.topo.graph.link_count());
}

TEST(FleetTestbed, WarmRegistersWholePopulationWithHts) {
  net::reset_trace_ids();
  FleetTestbed f = make_fleet_testbed(small_fat_tree());
  f.tb->start(Duration::seconds(2));
  fleet_warm_hosts(f);
  const ctrl::HostTrackingService& hts = f.tb->controller().host_tracker();
  EXPECT_EQ(hts.host_count(), f.population.size());
  for (std::size_t i = 0; i < f.population.size(); ++i) {
    const auto rec = hts.find(f.population[i]->mac());
    ASSERT_TRUE(rec.has_value()) << "host " << i << " never learned";
    EXPECT_EQ(rec->loc.dpid, f.topo.hosts[i].dpid);
    EXPECT_EQ(rec->loc.port, f.topo.hosts[i].port);
  }
}

TEST(BackgroundTraffic, GeneratesFlowsChurnAndMobility) {
  net::reset_trace_ids();
  FleetTestbed f = make_fleet_testbed(small_fat_tree());
  f.tb->start(Duration::seconds(2));
  fleet_warm_hosts(f);

  BackgroundTrafficConfig bc;
  bc.mean_flow_interarrival = Duration::millis(10);
  bc.arp_churn_period = Duration::millis(250);
  bc.mobility_period = Duration::millis(500);
  BackgroundTraffic bg{*f.tb, f.tb->fork_rng(), bc};
  fleet_attach_background(f, bg);
  bg.start();
  f.tb->run_for(Duration::seconds(5));
  bg.stop();

  const BackgroundTraffic::Stats& s = bg.stats();
  EXPECT_GT(s.flows_started, 100u);
  EXPECT_EQ(s.packets_offered, s.flows_started * 4);
  EXPECT_GT(s.arp_announcements, 10u);
  EXPECT_GT(s.migrations, 4u);
  // Migrations never displace the role hosts.
  const ctrl::HostTrackingService& hts = f.tb->controller().host_tracker();
  const auto victim = hts.find(f.victim->mac());
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->loc.dpid, f.victim_loc.dpid);
  EXPECT_EQ(victim->loc.port, f.victim_loc.port);
  EXPECT_EQ(hts.host_count(), f.population.size());
}

TEST(BackgroundTraffic, ByteIdenticalAcrossRuns) {
  const auto run = [] {
    net::reset_trace_ids();
    FleetTestbed f = make_fleet_testbed(small_fat_tree(7));
    f.tb->start(Duration::seconds(2));
    fleet_warm_hosts(f);
    BackgroundTrafficConfig bc;
    bc.mean_flow_interarrival = Duration::millis(5);
    bc.arp_churn_period = Duration::millis(200);
    bc.mobility_period = Duration::millis(400);
    BackgroundTraffic bg{*f.tb, f.tb->fork_rng(), bc};
    fleet_attach_background(f, bg);
    bg.start();
    f.tb->run_for(Duration::seconds(3));
    bg.stop();
    std::string fingerprint;
    for (const auto& rec : f.tb->controller().host_tracker().hosts_sorted()) {
      fingerprint += rec.mac.to_string() + "@" +
                     std::to_string(rec.loc.dpid) + ":" +
                     std::to_string(rec.loc.port) + ";";
    }
    fingerprint += "|f" + std::to_string(bg.stats().flows_started);
    fingerprint += "|m" + std::to_string(bg.stats().migrations);
    fingerprint += "|e" + std::to_string(f.tb->loop().events_executed());
    return fingerprint;
  };
  EXPECT_EQ(run(), run());
}

TEST(FleetHijack, WinsRaceOnUndefendedFleetUnderLoad) {
  net::reset_trace_ids();
  FleetHijackConfig cfg;
  cfg.topology.k = 4;
  cfg.suite = DefenseSuite::None;
  cfg.seed = 3;
  cfg.settle_window = Duration::seconds(3);
  cfg.victim_downtime = Duration::seconds(3);
  const FleetHijackOutcome out = run_fleet_hijack(cfg);
  EXPECT_TRUE(out.hijack_succeeded);
  ASSERT_TRUE(out.down_to_confirmed_ms.has_value());
  EXPECT_GT(*out.down_to_confirmed_ms, 0.0);
  EXPECT_LT(*out.down_to_confirmed_ms, 3000.0);  // won before rejoin
  EXPECT_EQ(out.hosts_tracked, 16u);
  EXPECT_GT(out.background.flows_started, 0u);
  EXPECT_EQ(out.invariant_violations, 0u);
}

TEST(FleetHijack, OutcomeIsDeterministic) {
  FleetHijackConfig cfg;
  cfg.topology.k = 4;
  cfg.suite = DefenseSuite::TopoGuard;
  cfg.seed = 11;
  cfg.settle_window = Duration::seconds(2);
  cfg.victim_downtime = Duration::seconds(2);
  const auto run = [&cfg] {
    net::reset_trace_ids();
    return run_fleet_hijack(cfg);
  };
  const FleetHijackOutcome a = run();
  const FleetHijackOutcome b = run();
  EXPECT_EQ(a.hijack_succeeded, b.hijack_succeeded);
  EXPECT_EQ(a.down_to_confirmed_ms, b.down_to_confirmed_ms);
  EXPECT_EQ(a.down_to_iface_up_ms, b.down_to_iface_up_ms);
  EXPECT_EQ(a.hosts_tracked, b.hosts_tracked);
  EXPECT_EQ(a.alerts_total, b.alerts_total);
  EXPECT_EQ(a.background.flows_started, b.background.flows_started);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

// The scale ceiling: a thousand-switch fabric must be attackable at
// all. k=32 instantiates 1,280 switches and 16,384 fabric links; the
// population is capped so the test exercises fabric scale, not host
// count (bench_fleet's k=16 cell covers the full-population case).
TEST(FleetHijack, RunsOnThousandSwitchFabric) {
  net::reset_trace_ids();
  FleetHijackConfig cfg;
  cfg.topology.k = 32;
  cfg.max_hosts = 64;
  cfg.suite = DefenseSuite::None;
  cfg.seed = 9;
  cfg.background_on = false;
  cfg.settle_window = Duration::seconds(2);
  cfg.victim_downtime = Duration::seconds(2);
  cfg.check_invariants = false;
  const FleetHijackOutcome out = run_fleet_hijack(cfg);
  EXPECT_TRUE(out.hijack_succeeded);
  EXPECT_EQ(out.hosts_tracked, 64u);
}

TEST(FleetLinkAttack, ClassicRelayFabricatesLinkOnUndefendedFleet) {
  net::reset_trace_ids();
  FleetLinkAttackConfig cfg;
  cfg.topology.k = 4;
  cfg.kind = LinkAttackKind::ClassicRelay;
  cfg.suite = DefenseSuite::None;
  cfg.seed = 5;
  cfg.benign_window = Duration::seconds(4);
  cfg.attack_window = Duration::seconds(34);
  const FleetLinkAttackOutcome out = run_fleet_link_attack(cfg);
  EXPECT_TRUE(out.link_registered);
  EXPECT_GT(out.lldp_relayed, 0u);
  EXPECT_EQ(out.hosts_tracked, 16u);
  EXPECT_GT(out.background.flows_started, 0u);
  EXPECT_EQ(out.invariant_violations, 0u);
}

TEST(FleetLinkAttack, FlowRuleRelayFabricatesLinkOnFleetFabric) {
  net::reset_trace_ids();
  FleetLinkAttackConfig cfg;
  cfg.topology.k = 4;
  cfg.kind = LinkAttackKind::FlowRuleRelay;
  cfg.suite = DefenseSuite::None;
  cfg.seed = 5;
  cfg.benign_window = Duration::seconds(4);
  cfg.attack_window = Duration::seconds(34);
  const FleetLinkAttackOutcome out = run_fleet_link_attack(cfg);
  // The spliced edge switch launders genuine LLDP between its two
  // uplinks, so discovery registers a direct aggregation-to-aggregation
  // link that does not exist in the generated fabric.
  EXPECT_TRUE(out.link_registered);
  EXPECT_TRUE(out.link_present_at_end);
  EXPECT_EQ(out.invariant_violations, 0u);
}

TEST(FleetLinkAttack, TopoGuardDetectsRelayOnFleet) {
  net::reset_trace_ids();
  FleetLinkAttackConfig cfg;
  cfg.topology.k = 4;
  cfg.kind = LinkAttackKind::ClassicRelay;
  cfg.suite = DefenseSuite::TopoGuard;
  cfg.seed = 5;
  cfg.benign_window = Duration::seconds(4);
  cfg.attack_window = Duration::seconds(34);
  const FleetLinkAttackOutcome out = run_fleet_link_attack(cfg);
  EXPECT_TRUE(out.detected());
  EXPECT_GT(out.alerts_topoguard, 0u);
  EXPECT_FALSE(out.link_registered);
}

}  // namespace
}  // namespace tmg::scenario
