// ARP spoofing vs. Host Location Hijacking (paper Sec. III-A.2).
//
// The paper distinguishes HLH from ARP spoofing: different binding
// attacked (MAC-to-port vs. IP-to-MAC), different traffic (arbitrary
// vs. ARP), so "defenses to ARP attacks [are] ineffective against HLH".
// These tests pin that down end-to-end.
#include <gtest/gtest.h>

#include "attack/arp_spoof.hpp"
#include "ctrl/host_tracker.hpp"
#include "defense/arp_inspection.hpp"
#include "scenario/experiments.hpp"
#include "scenario/testbed.hpp"

namespace tmg::defense {
namespace {

using namespace tmg::sim::literals;
using ctrl::AlertType;
using scenario::Testbed;
using scenario::TestbedOptions;

scenario::TestbedOptions checked_options() {
  scenario::TestbedOptions opts;
  opts.check_invariants = true;  // runtime invariant checker (src/check)
  return opts;
}

struct ArpNet {
  Testbed tb{checked_options()};
  attack::Host* victim;
  attack::Host* peer;
  attack::Host* attacker;

  ArpNet() {
    tb.add_switch(0x1);
    tb.add_switch(0x2);
    tb.connect_switches(0x1, 10, 0x2, 10);
    attack::HostConfig v;
    v.mac = net::MacAddress::host(1);
    v.ip = net::Ipv4Address::host(1);
    victim = &tb.add_host(0x1, 1, v);
    attack::HostConfig p;
    p.mac = net::MacAddress::host(2);
    p.ip = net::Ipv4Address::host(2);
    peer = &tb.add_host(0x1, 2, p);
    attack::HostConfig a;
    a.mac = net::MacAddress::host(0xA);
    a.ip = net::Ipv4Address::host(10);
    attacker = &tb.add_host(0x2, 1, a);
  }

  void warm() {
    victim->send_arp_request(peer->ip());
    peer->send_arp_request(victim->ip());
    attacker->send_arp_request(victim->ip());
    tb.run_for(500_ms);
  }

  attack::ArpSpoofAttack::Config spoof_cfg() {
    attack::ArpSpoofAttack::Config cfg;
    cfg.victim_ip = victim->ip();
    cfg.target_mac = peer->mac();
    cfg.target_ip = peer->ip();
    cfg.period = 200_ms;
    return cfg;
  }
};

TEST(ArpSpoof, PoisonsPeerCacheWithoutDefense) {
  ArpNet net;
  net.tb.start(1_s);
  net.warm();
  ASSERT_EQ(net.peer->arp_lookup(net.victim->ip()), net.victim->mac());

  attack::ArpSpoofAttack spoof{net.tb.loop(), *net.attacker,
                               net.spoof_cfg()};
  spoof.start();
  net.tb.run_for(1_s);
  // Peer's cache now maps the victim's IP to the attacker's MAC.
  EXPECT_EQ(net.peer->arp_lookup(net.victim->ip()), net.attacker->mac());
  EXPECT_GE(spoof.forged_replies(), 2u);
}

TEST(ArpSpoof, RedirectsResolvedTraffic) {
  ArpNet net;
  net.tb.start(1_s);
  net.warm();
  attack::ArpSpoofAttack spoof{net.tb.loop(), *net.attacker,
                               net.spoof_cfg()};
  spoof.start();
  net.tb.run_for(1_s);
  // The peer resolves the victim's IP and pings "it": the echo request
  // lands on the attacker.
  net.attacker->clear_inbox();
  net.peer->send_resolved(
      net.victim->ip(),
      net::make_icmp_echo(net.peer->mac(), net.peer->ip(), net::MacAddress{},
                          net.victim->ip(), 77, 1));
  net.tb.run_for(500_ms);
  bool attacker_got_it = false;
  for (const auto& p : net.attacker->received()) {
    if (p.icmp() && p.icmp()->ident == 77) attacker_got_it = true;
  }
  EXPECT_TRUE(attacker_got_it);
}

TEST(ArpSpoof, BudgetStopsAttack) {
  ArpNet net;
  net.tb.start(1_s);
  auto cfg = net.spoof_cfg();
  cfg.budget = 3;
  attack::ArpSpoofAttack spoof{net.tb.loop(), *net.attacker, cfg};
  spoof.start();
  net.tb.run_for(5_s);
  EXPECT_EQ(spoof.forged_replies(), 3u);
}

TEST(Dai, DeploysPuntRules) {
  ArpNet net;
  DynamicArpInspection& dai = install_arp_inspection(net.tb.controller());
  net.tb.start(1_s);
  dai.deploy();
  net.tb.run_for(100_ms);
  bool found = false;
  for (const auto& e : net.tb.get_switch(0x1).flow_table().entries()) {
    if (e.match.ethertype == net::EtherType::Arp && e.priority == 500 &&
        e.action.kind == of::FlowAction::Kind::ToController) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dai, BlocksCachePoisoning) {
  ArpNet net;
  DynamicArpInspection& dai = install_arp_inspection(net.tb.controller());
  net.tb.start(1_s);
  dai.deploy();
  net.warm();
  ASSERT_EQ(net.peer->arp_lookup(net.victim->ip()), net.victim->mac());

  attack::ArpSpoofAttack spoof{net.tb.loop(), *net.attacker,
                               net.spoof_cfg()};
  spoof.start();
  net.tb.run_for(2_s);
  // The forged replies were punted, inspected, and dropped: the peer's
  // cache still holds the genuine mapping and the violation is logged.
  EXPECT_EQ(net.peer->arp_lookup(net.victim->ip()), net.victim->mac());
  EXPECT_GE(dai.violations(), 2u);
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::ArpInspectionViolation));
}

TEST(Dai, GenuineArpPasses) {
  ArpNet net;
  DynamicArpInspection& dai = install_arp_inspection(net.tb.controller());
  net.tb.start(1_s);
  dai.deploy();
  net.warm();
  net.peer->clear_inbox();
  net.peer->send_arp_request(net.victim->ip());
  net.tb.run_for(300_ms);
  bool replied = false;
  for (const auto& p : net.peer->received()) {
    if (p.arp() && p.arp()->op == net::ArpPayload::Op::Reply) replied = true;
  }
  EXPECT_TRUE(replied);
  EXPECT_GT(dai.inspected(), 0u);
  EXPECT_EQ(net.tb.controller().alerts().count(
                AlertType::ArpInspectionViolation),
            0u);
}

TEST(Dai, IneffectiveAgainstHostLocationHijacking) {
  // The paper's Sec. III-A.2 claim, end to end: deploy DAI (plus
  // TopoGuard) and run the full port-probing hijack. The attacker's
  // gratuitous ARP carries the victim's *consistent* IP/MAC pair, so
  // DAI sees nothing wrong — the corrupted binding is MAC-to-port.
  scenario::Fig2Testbed f = make_fig2_testbed(
      scenario::suite_options(scenario::DefenseSuite::TopoGuard, 7));
  scenario::install_suite(f.tb->controller(),
                          scenario::DefenseSuite::TopoGuard);
  DynamicArpInspection& dai = install_arp_inspection(f.tb->controller());
  f.tb->start(2_s);
  dai.deploy();
  scenario::fig2_warm_hosts(f);

  attack::PortProbingConfig pc;
  pc.victim_ip = f.victim_ip;
  attack::PortProbingAttack attack{f.tb->loop(), f.tb->fork_rng(),
                                   *f.attacker, pc};
  attack.start();
  f.tb->run_for(2_s);
  f.victim->detach_link();
  f.tb->run_for(2_s);

  EXPECT_TRUE(attack.identity_claimed());
  const auto rec = f.tb->controller().host_tracker().find(f.victim_mac);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, f.attacker_loc);  // hijack succeeded through DAI
  EXPECT_EQ(f.tb->controller().alerts().count(
                AlertType::ArpInspectionViolation),
            0u);
}

}  // namespace
}  // namespace tmg::defense
