// tmglint: fixture-driven pins for every rule (positive AND negative),
// byte-identical report output, and the two cross-checks that make the
// analyzer trustworthy on this repo:
//
//   * the real source tree is clean (findings in src/ get fixed or
//     deliberately annotated in the same change that introduces them);
//   * every checked-in pipeline_spec_<profile>.txt equals BOTH the
//     statically extracted chain for that profile and the chain a live
//     Controller actually builds under it (names, priorities,
//     subscription masks — band entries expanded).
//
// TMGLINT_FIXTURES and TMG_SOURCE_ROOT are compile definitions set in
// tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analyzer.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/message_pipeline.hpp"
#include "ctrl/profiles.hpp"
#include "defense/sphinx.hpp"
#include "defense/topoguard.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"

namespace tmg::tmglint {
namespace {

std::string fixture(const std::string& name) {
  return std::string{TMGLINT_FIXTURES} + "/" + name;
}

/// (file, rule) pairs, for order-insensitive presence checks.
std::multiset<std::pair<std::string, std::string>> keyed(
    const std::vector<Finding>& findings) {
  std::multiset<std::pair<std::string, std::string>> out;
  for (const auto& f : findings) out.emplace(f.file, f.rule);
  return out;
}

int count_of(const std::vector<Finding>& findings, const std::string& file,
             const std::string& rule) {
  int n = 0;
  for (const auto& f : findings) {
    if (f.file == file && f.rule == rule) ++n;
  }
  return n;
}

bool any_message_contains(const std::vector<Finding>& findings,
                          const std::string& needle) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.message.find(needle) != std::string::npos;
                     });
}

// ---------------------------------------------------------------------
// Determinism rules: each fixture pins one rule both ways.
// ---------------------------------------------------------------------

class DeterminismFixtures : public ::testing::Test {
 protected:
  static const std::vector<Finding>& findings() {
    static const std::vector<Finding> kFindings = [] {
      const SourceTree tree = load_source_tree(fixture("rules"));
      std::vector<Finding> out;
      run_determinism_pass(tree, out);
      sort_findings(out);
      return out;
    }();
    return kFindings;
  }
};

TEST_F(DeterminismFixtures, WallClockPositiveAndNegative) {
  EXPECT_GE(count_of(findings(), "src/sim/wallclock_bad.cpp", "wall-clock"),
            2);  // system_clock::now() and time(nullptr)
  EXPECT_EQ(count_of(findings(), "src/sim/wallclock_good.cpp", "wall-clock"),
            0);  // strings, comments, raw strings, time(x) with an arg
}

TEST_F(DeterminismFixtures, WallClockIsHardInObsDespiteAllow) {
  EXPECT_EQ(count_of(findings(), "src/obs/hard_wallclock.cpp", "wall-clock"),
            1);
  EXPECT_TRUE(any_message_contains(findings(), "(hard, src/obs)"));
}

TEST_F(DeterminismFixtures, LibcRandPositiveAndNegative) {
  EXPECT_GE(count_of(findings(), "src/sim/rand_bad.cpp", "libc-rand"), 3);
  EXPECT_EQ(count_of(findings(), "src/sim/rand_good.cpp", "libc-rand"), 0);
}

TEST_F(DeterminismFixtures, RandomDevicePositiveAndNegative) {
  EXPECT_EQ(
      count_of(findings(), "src/sim/random_device_bad.cpp", "random-device"),
      1);
  EXPECT_EQ(
      count_of(findings(), "src/sim/random_device_good.cpp", "random-device"),
      0);
}

TEST_F(DeterminismFixtures, UnorderedIterPairsHeaderWithImpl) {
  // The member is declared in the .hpp; the range-for lives in the .cpp.
  EXPECT_EQ(
      count_of(findings(), "src/net/flow_table_bad.cpp", "unordered-iter"),
      1);
  EXPECT_EQ(
      count_of(findings(), "src/net/flow_table_good.cpp", "unordered-iter"),
      0);  // iterates a sorted snapshot
}

TEST_F(DeterminismFixtures, PointerKeyPositiveAndNegative) {
  EXPECT_EQ(count_of(findings(), "src/sim/ptrkey_bad.hpp", "pointer-key"), 2);
  EXPECT_EQ(count_of(findings(), "src/sim/ptrkey_good.hpp", "pointer-key"),
            0);  // pointer in the mapped position is fine
}

TEST_F(DeterminismFixtures, ThreadingScopedToAllowlist) {
  EXPECT_GE(count_of(findings(), "src/net/threading_bad.cpp", "threading"),
            1);
  // src/sim/thread_pool.hpp is the sanctioned worker pool.
  EXPECT_EQ(count_of(findings(), "src/sim/thread_pool.hpp", "threading"), 0);
}

TEST_F(DeterminismFixtures, SharedRngPositiveAndNegative) {
  EXPECT_GE(
      count_of(findings(), "src/scenario/shared_rng_bad.hpp", "shared-rng"),
      2);  // static global + reference member
  EXPECT_EQ(
      count_of(findings(), "src/scenario/shared_rng_good.hpp", "shared-rng"),
      0);  // owned member + borrowed parameter
}

TEST_F(DeterminismFixtures, RegistryBypassScopedToCtrlAndDefense) {
  EXPECT_EQ(
      count_of(findings(), "src/ctrl/bypass_bad.cpp", "registry-bypass"), 2);
  EXPECT_EQ(
      count_of(findings(), "src/ctrl/bypass_good.cpp", "registry-bypass"), 0);
  // Same accessor text, but src/ids is outside the rule's scope.
  EXPECT_EQ(count_of(findings(), "src/ids/bypass_out_of_scope.cpp",
                     "registry-bypass"),
            0);
}

TEST_F(DeterminismFixtures, CacheCoherencePositiveAndNegative) {
  EXPECT_EQ(
      count_of(findings(), "src/topo/route_cache_bad.hpp", "cache-coherence"),
      1);
  EXPECT_EQ(count_of(findings(), "src/topo/route_cache_good.hpp",
                     "cache-coherence"),
            0);  // epoch_seen_ ties the cache to the graph's epoch
}

TEST_F(DeterminismFixtures, NoFindingsOutsideTheBadFixtures) {
  static const std::set<std::string> kExpectedDirty = {
      "src/sim/wallclock_bad.cpp",   "src/obs/hard_wallclock.cpp",
      "src/sim/rand_bad.cpp",        "src/sim/random_device_bad.cpp",
      "src/net/flow_table_bad.cpp",  "src/sim/ptrkey_bad.hpp",
      "src/net/threading_bad.cpp",   "src/scenario/shared_rng_bad.hpp",
      "src/ctrl/bypass_bad.cpp",     "src/topo/route_cache_bad.hpp",
  };
  for (const auto& f : findings()) {
    EXPECT_TRUE(kExpectedDirty.count(f.file) != 0)
        << f.file << ":" << f.line << ": " << f.rule << ": " << f.message;
  }
}

// ---------------------------------------------------------------------
// Callback lifetimes
// ---------------------------------------------------------------------

TEST(LifetimeFixtures, FlagsEscapingCapturesAndBorrowedThis) {
  const SourceTree tree = load_source_tree(fixture("rules"));
  std::vector<Finding> out;
  run_lifetime_pass(tree, out);
  EXPECT_EQ(count_of(out, "src/of/lifetime_bad.cpp", "callback-lifetime"), 2);
  EXPECT_EQ(count_of(out, "src/of/lifetime_good.cpp", "callback-lifetime"),
            0);  // drained driver, member-loop `this`, by-value capture
  for (const auto& f : out) {
    EXPECT_EQ(f.file, "src/of/lifetime_bad.cpp") << f.file << ": " << f.message;
  }
}

// ---------------------------------------------------------------------
// Suppression audit
// ---------------------------------------------------------------------

TEST(SuppressionAudit, LiveDirectivesPassStaleOnesFail) {
  const SourceTree tree = load_source_tree(fixture("suppression"));
  std::vector<Finding> findings;
  run_determinism_pass(tree, findings);
  run_lifetime_pass(tree, findings);
  // fresh.cpp's rand() is allowed, skipped.cpp is skip-file'd: no rule
  // findings anywhere.
  EXPECT_TRUE(findings.empty());

  run_suppression_audit(tree, findings);
  sort_findings(findings);
  const auto keys = keyed(findings);
  EXPECT_EQ(keys.count({"src/sim/stale.cpp", "stale-suppression"}), 1u);
  EXPECT_EQ(keys.count({"src/sim/skip_stale.cpp", "stale-suppression"}), 1u);
  EXPECT_EQ(keys.count({"src/sim/fresh.cpp", "stale-suppression"}), 0u);
  EXPECT_EQ(keys.count({"src/sim/skipped.cpp", "stale-suppression"}), 0u);
  EXPECT_EQ(findings.size(), 2u);
}

// ---------------------------------------------------------------------
// Pipeline wiring
// ---------------------------------------------------------------------

TEST(PipelineFixtures, GoodWiringMatchesItsSpec) {
  const SourceTree tree = load_source_tree(fixture("pipeline_good"));
  std::vector<Finding> findings;
  const std::vector<ProfileSpec> specs = run_pipeline_pass(
      tree, fixture("pipeline_good") + "/pipeline_spec.txt", false, findings);
  EXPECT_TRUE(findings.empty()) << render_report(findings);
  // No <key>_profile() functions in the fixture: legacy single-spec
  // mode extracts exactly one keyless chain.
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs.front().key, "");
  const PipelineSpec& extracted = specs.front().spec;
  ASSERT_EQ(extracted.entries.size(), 3u);
  EXPECT_EQ(to_line(extracted.entries[0]), "0 core PacketIn");
  EXPECT_EQ(to_line(extracted.entries[1]),
            "100+10N <dynamic> PacketIn|PortStatus");
  EXPECT_EQ(to_line(extracted.entries[2]),
            "500 audit-listener FlowStats|PacketIn");
}

TEST(PipelineFixtures, BadWiringYieldsAllThreeDefects) {
  const SourceTree tree = load_source_tree(fixture("pipeline_bad"));
  std::vector<Finding> findings;
  (void)run_pipeline_pass(
      tree, fixture("pipeline_bad") + "/pipeline_spec.txt", false, findings);
  EXPECT_TRUE(any_message_contains(findings, "duplicate chain priority 500"));
  EXPECT_TRUE(any_message_contains(findings, "OrphanListener"));
  EXPECT_TRUE(any_message_contains(findings, "!= source"));  // spec drift
  for (const auto& f : findings) {
    EXPECT_EQ(f.rule, "pipeline-wiring") << f.message;
  }
}

// ---------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------

TEST(LayeringFixtures, DownwardIncludesAreClean) {
  const SourceTree tree = load_source_tree(fixture("layering_good"));
  std::vector<Finding> findings;
  run_layering_pass(tree, findings);
  EXPECT_TRUE(findings.empty()) << render_report(findings);
}

TEST(LayeringFixtures, UpwardPeerObsAndCycleAllFlagged) {
  const SourceTree tree = load_source_tree(fixture("layering_bad"));
  std::vector<Finding> findings;
  run_layering_pass(tree, findings);
  sort_findings(findings);
  const auto keys = keyed(findings);
  EXPECT_EQ(keys.count({"src/net/wire.hpp", "layering"}), 1u);      // upward
  EXPECT_EQ(keys.count({"src/defense/guard.hpp", "layering"}), 1u);  // peer
  EXPECT_EQ(keys.count({"src/obs/metrics.hpp", "layering"}), 1u);   // obs leak
  int cycles = 0;
  for (const auto& f : findings) {
    if (f.rule == "include-cycle") ++cycles;
  }
  EXPECT_GE(cycles, 1);
}

// The anomaly-IDS edges (DESIGN.md §14): ids -> obs and ids -> stats
// are one-way. The good tree includes both directions ids is allowed;
// the bad tree closes the loop (obs -> ids), which must surface as an
// obs-leak rank violation AND a file-level include cycle.
TEST(LayeringFixtures, IdsObsEdgeIsOneWay) {
  const SourceTree good = load_source_tree(fixture("layering_good"));
  std::vector<Finding> good_findings;
  run_layering_pass(good, good_findings);
  for (const auto& f : good_findings) {
    EXPECT_NE(f.file, "src/ids/profile.hpp") << f.message;
  }

  const SourceTree bad = load_source_tree(fixture("layering_bad"));
  std::vector<Finding> findings;
  run_layering_pass(bad, findings);
  sort_findings(findings);
  const auto keys = keyed(findings);
  // obs reaching back into ids: rank violation on the obs file.
  EXPECT_EQ(keys.count({"src/obs/export.hpp", "layering"}), 1u);
  // The legal direction alone raises nothing with the "layering" rule;
  // the closed loop is reported as an include cycle through the pair.
  EXPECT_EQ(keys.count({"src/ids/profile.hpp", "layering"}), 0u);
  bool ids_obs_cycle = false;
  for (const auto& f : findings) {
    if (f.rule == "include-cycle" &&
        f.message.find("src/ids/profile.hpp") != std::string::npos &&
        f.message.find("src/obs/export.hpp") != std::string::npos) {
      ids_obs_cycle = true;
    }
  }
  EXPECT_TRUE(ids_obs_cycle) << render_report(findings);
}

// ---------------------------------------------------------------------
// The real tree
// ---------------------------------------------------------------------

Options real_tree_options() {
  Options opts;
  opts.root = TMG_SOURCE_ROOT;
  return opts;
}

TEST(RealTree, AllPassesClean) {
  const AnalysisResult result = analyze(real_tree_options());
  EXPECT_TRUE(result.findings.empty()) << render_report(result.findings);
  EXPECT_TRUE(result.pipeline_ran);
}

TEST(RealTree, ReportIsByteIdenticalAcrossRuns) {
  const AnalysisResult a = analyze(real_tree_options());
  const AnalysisResult b = analyze(real_tree_options());
  EXPECT_EQ(render_report(a.findings), render_report(b.findings));
  ASSERT_EQ(a.extracted.size(), b.extracted.size());
  for (std::size_t i = 0; i < a.extracted.size(); ++i) {
    EXPECT_EQ(a.extracted[i].key, b.extracted[i].key);
    EXPECT_EQ(emit_pipeline_spec(a.extracted[i].spec, a.extracted[i].key),
              emit_pipeline_spec(b.extracted[i].spec, b.extracted[i].key));
  }
}

TEST(RealTree, ExtractsOneSpecPerProfile) {
  const AnalysisResult result = analyze(real_tree_options());
  std::vector<std::string> keys;
  for (const auto& ps : result.extracted) keys.push_back(ps.key);
  EXPECT_EQ(keys, (std::vector<std::string>{"floodlight", "pox",
                                            "opendaylight", "onos"}));
}

TEST(RealTree, EmittedSpecEqualsCheckedInFilePerProfile) {
  const AnalysisResult result = analyze(real_tree_options());
  ASSERT_FALSE(result.extracted.empty());
  for (const auto& ps : result.extracted) {
    ASSERT_FALSE(ps.key.empty());
    const std::string path = std::string{TMG_SOURCE_ROOT} +
                             "/tools/tmglint/pipeline_spec_" + ps.key +
                             ".txt";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream file;
    file << in.rdbuf();
    EXPECT_EQ(emit_pipeline_spec(ps.spec, ps.key), file.str()) << path;
  }
}

// ---------------------------------------------------------------------
// Spec vs. the chain a live Controller actually builds
// ---------------------------------------------------------------------

std::uint32_t mask_from_spec_subs(const std::vector<std::string>& subs) {
  using ctrl::MessageType;
  static const std::map<std::string, MessageType> kByName = {
      {"PacketIn", MessageType::PacketIn},
      {"PortStatus", MessageType::PortStatus},
      {"EchoReply", MessageType::EchoReply},
      {"FlowRemoved", MessageType::FlowRemoved},
      {"FlowStats", MessageType::FlowStats},
      {"PortStats", MessageType::PortStats},
      {"LldpObservation", MessageType::LldpObservation},
      {"HostEvent", MessageType::HostEvent},
      {"LinkRemoved", MessageType::LinkRemoved},
      {"FlowModOut", MessageType::FlowModOut},
  };
  std::uint32_t mask = 0;
  for (const auto& s : subs) {
    const auto it = kByName.find(s);
    EXPECT_TRUE(it != kByName.end()) << "unknown MessageType in spec: " << s;
    if (it != kByName.end()) mask |= ctrl::mask_of(it->second);
  }
  return mask;
}

TEST(RealTree, SpecMatchesRuntimeChain) {
  // Per profile: the statically extracted spec, with the defense band
  // expanded for two installed modules, must equal the live chain a
  // Controller running that profile actually builds (OpenDaylight's
  // chain has no verdict gate; the others carry the full slot table).
  for (const std::string& key : ctrl::profile_cli_names()) {
    SCOPED_TRACE("profile " + key);
    std::string error;
    const auto spec = parse_pipeline_spec(
        std::string{TMG_SOURCE_ROOT} + "/tools/tmglint/pipeline_spec_" + key +
            ".txt",
        &error);
    ASSERT_TRUE(spec.has_value()) << error;

    sim::EventLoop loop;
    ctrl::ControllerConfig config;
    config.profile = *ctrl::profile_by_name(key);
    ctrl::Controller controller{loop, sim::Rng{1}, config};
    controller.add_defense(std::make_unique<defense::TopoGuard>(controller));
    controller.add_defense(std::make_unique<defense::Sphinx>(controller));
    const auto stats = controller.pipeline().stats();

    // Expand the spec into the expected runtime chain: a band entry
    // `B+SN` becomes one listener per installed module at B, B+S, ...
    struct Expected {
      int priority;
      std::string name;  // empty = dynamic, matches anything
      std::uint32_t mask;
    };
    std::vector<Expected> expected;
    constexpr int kInstalledDefenses = 2;
    for (const auto& e : spec->entries) {
      const std::uint32_t mask = mask_from_spec_subs(e.subs);
      const auto plus = e.priority.find('+');
      if (plus == std::string::npos) {
        expected.push_back({std::stoi(e.priority),
                            e.name == "<dynamic>" ? "" : e.name, mask});
        continue;
      }
      const int base = std::stoi(e.priority.substr(0, plus));
      const int step = std::stoi(e.priority.substr(plus + 1));  // "10N"
      for (int n = 0; n < kInstalledDefenses; ++n) {
        expected.push_back(
            {base + step * n, e.name == "<dynamic>" ? "" : e.name, mask});
      }
    }
    std::sort(
        expected.begin(), expected.end(),
        [](const Expected& a, const Expected& b) {
          return std::tie(a.priority, a.name) < std::tie(b.priority, b.name);
        });

    ASSERT_EQ(stats.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(stats[i].priority, expected[i].priority)
          << "chain[" << i << "]";
      if (!expected[i].name.empty()) {
        EXPECT_EQ(stats[i].name, expected[i].name) << "chain[" << i << "]";
      }
      EXPECT_EQ(stats[i].subscriptions, expected[i].mask)
          << "chain[" << i << "] (" << stats[i].name << ")";
    }
  }
}

}  // namespace
}  // namespace tmg::tmglint
