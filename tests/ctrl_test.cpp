// Tests for the controller core and its services (link discovery, host
// tracking, routing), run over small scenario testbeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/assert.hpp"
#include "ctrl/host_tracker.hpp"
#include "ctrl/link_discovery.hpp"
#include "ctrl/routing.hpp"
#include "scenario/testbed.hpp"

namespace tmg::ctrl {
namespace {

using namespace tmg::sim::literals;
using scenario::Testbed;
using scenario::TestbedOptions;
using sim::Duration;

/// Test module that records every hook invocation.
class Recorder final : public DefenseModule {
 public:
  [[nodiscard]] std::string name() const override { return "recorder"; }
  Verdict on_packet_in(const of::PacketIn& pi) override {
    packet_ins.push_back(pi);
    return Verdict::Allow;
  }
  void on_port_status(const of::PortStatus& ps) override {
    port_events.push_back(ps);
  }
  Verdict on_lldp_observation(const LldpObservation& obs) override {
    observations.push_back(obs);
    return veto_links ? Verdict::Block : Verdict::Allow;
  }
  void on_link_removed(const topo::Link& l) override {
    removed_links.push_back(l);
  }
  Verdict on_host_event(const HostEvent& ev) override {
    host_events.push_back(ev);
    return veto_hosts ? Verdict::Block : Verdict::Allow;
  }
  void on_flow_mod(of::Dpid dpid, const of::FlowMod& fm) override {
    flow_mods.emplace_back(dpid, fm);
  }

  std::vector<of::PacketIn> packet_ins;
  std::vector<of::PortStatus> port_events;
  std::vector<LldpObservation> observations;
  std::vector<topo::Link> removed_links;
  std::vector<HostEvent> host_events;
  std::vector<std::pair<of::Dpid, of::FlowMod>> flow_mods;
  bool veto_links = false;
  bool veto_hosts = false;
};

struct TwoSwitchNet {
  Testbed tb;
  attack::Host* h1;
  attack::Host* h2;
  Recorder* rec;

  explicit TwoSwitchNet(TestbedOptions opts = {}) : tb{std::move(opts)} {
    tb.add_switch(0x1);
    tb.add_switch(0x2);
    tb.connect_switches(0x1, 10, 0x2, 10);
    attack::HostConfig c1;
    c1.mac = net::MacAddress::host(1);
    c1.ip = net::Ipv4Address::host(1);
    h1 = &tb.add_host(0x1, 1, c1);
    attack::HostConfig c2;
    c2.mac = net::MacAddress::host(2);
    c2.ip = net::Ipv4Address::host(2);
    h2 = &tb.add_host(0x2, 1, c2);
    auto r = std::make_unique<Recorder>();
    rec = r.get();
    tb.controller().add_defense(std::move(r));
  }
};

// ---------------- Profiles (Table III) ----------------

TEST(Profiles, TableIIIValues) {
  EXPECT_EQ(floodlight_profile().name, "Floodlight");
  EXPECT_EQ(floodlight_profile().lldp_interval, 15_s);
  EXPECT_EQ(floodlight_profile().link_timeout, 35_s);
  EXPECT_EQ(pox_profile().lldp_interval, 5_s);
  EXPECT_EQ(pox_profile().link_timeout, 10_s);
  EXPECT_EQ(opendaylight_profile().lldp_interval, 5_s);
  EXPECT_EQ(opendaylight_profile().link_timeout, 15_s);
  EXPECT_EQ(onos_profile().lldp_interval, 3_s);
  EXPECT_EQ(onos_profile().link_timeout, 10_s);
  EXPECT_EQ(all_profiles().size(), 4u);
}

TEST(Profiles, TimeoutExceedsIntervalByFactor2To3) {
  // Paper Sec. VIII-A: the link timeout exceeds the discovery interval
  // by a factor of 2-3, tolerating isolated false removals. This holds
  // for the Table III rows; ONOS (a post-paper addition) sits just
  // above the band at 10s/3s.
  for (const auto& p :
       {floodlight_profile(), pox_profile(), opendaylight_profile()}) {
    const double ratio =
        p.link_timeout.to_seconds_f() / p.lldp_interval.to_seconds_f();
    EXPECT_GE(ratio, 2.0) << p.name;
    EXPECT_LE(ratio, 3.0) << p.name;
  }
}

// ---------------- AlertBus ----------------

TEST(AlertBus, CountsAndListeners) {
  AlertBus bus;
  int notified = 0;
  bus.subscribe([&](const Alert&) { ++notified; });
  bus.raise(Alert{sim::SimTime::zero(), "m1", AlertType::LldpFromHostPort,
                  "x", std::nullopt});
  bus.raise(Alert{sim::SimTime::zero(), "m2", AlertType::LliAbnormalLatency,
                  "y", std::nullopt});
  bus.raise(Alert{sim::SimTime::zero(), "m1", AlertType::LldpFromHostPort,
                  "z", std::nullopt});
  EXPECT_EQ(bus.count(), 3u);
  EXPECT_EQ(bus.count(AlertType::LldpFromHostPort), 2u);
  EXPECT_EQ(bus.count_from("m1"), 2u);
  EXPECT_TRUE(bus.any(AlertType::LliAbnormalLatency));
  EXPECT_FALSE(bus.any(AlertType::CmmControlMessage));
  EXPECT_EQ(notified, 3);
  bus.clear();
  EXPECT_EQ(bus.count(), 0u);
}

TEST(AlertBus, TypeNames) {
  EXPECT_STREQ(to_string(AlertType::LldpFromHostPort),
               "LLDP_FROM_HOST_PORT");
  EXPECT_STREQ(to_string(AlertType::LliAbnormalLatency),
               "LLI_ABNORMAL_LATENCY");
}

// ---------------- Link discovery ----------------

TEST(LinkDiscovery, DiscoversRealLink) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  EXPECT_TRUE(net.tb.controller().topology().has_link(of::Location{0x1, 10},
                                                      of::Location{0x2, 10}));
  EXPECT_EQ(net.tb.controller().topology().link_count(), 1u);
  EXPECT_GE(net.tb.controller().link_discovery().receptions(), 2u);
}

TEST(LinkDiscovery, HostPortsProduceNoLinks) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  const auto& topo = net.tb.controller().topology();
  EXPECT_FALSE(topo.is_switch_port(of::Location{0x1, 1}));
  EXPECT_FALSE(topo.is_switch_port(of::Location{0x2, 1}));
}

TEST(LinkDiscovery, EmitsPerPortPerRound) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  // 4 ports total, one round at t=0.
  EXPECT_EQ(net.tb.controller().link_discovery().emissions(), 4u);
  net.tb.run_for(15_s);  // Floodlight interval
  EXPECT_EQ(net.tb.controller().link_discovery().emissions(), 8u);
}

TEST(LinkDiscovery, LinkTimesOutWithoutRefresh) {
  TestbedOptions opts;
  opts.controller.profile = pox_profile();  // 5s interval, 10s timeout
  TwoSwitchNet net{std::move(opts)};
  net.tb.start(1_s);
  ASSERT_EQ(net.tb.controller().topology().link_count(), 1u);
  // Cut the inter-switch wire: LLDP stops crossing; the link must be
  // swept out after the POX timeout.
  // Easiest cut: veto refreshes via the recorder (the link handle is
  // not exposed, so the wire itself cannot be unplugged here).
  net.rec->veto_links = true;
  net.tb.run_for(11_s);
  EXPECT_EQ(net.tb.controller().topology().link_count(), 0u);
  ASSERT_FALSE(net.rec->removed_links.empty());
}

TEST(LinkDiscovery, ObservationCarriesTimestampLatency) {
  TestbedOptions opts;
  opts.controller.lldp_timestamps = true;
  TwoSwitchNet net{std::move(opts)};
  net.tb.start(6_s);  // a couple of echo rounds for control-RTT estimates
  net.tb.run_for(16_s);  // second LLDP round with RTTs available
  bool found = false;
  for (const auto& obs : net.rec->observations) {
    if (obs.link_latency) {
      found = true;
      EXPECT_TRUE(obs.timestamp_present);
      // The wire is 5ms nominal; estimate within [2, 15] ms given
      // jitter and bootstrap conservatism.
      EXPECT_GT(obs.link_latency->to_millis_f(), 2.0);
      EXPECT_LT(obs.link_latency->to_millis_f(), 15.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LinkDiscovery, UnsignedLldpRejectedWhenAuthRequired) {
  TestbedOptions opts;
  opts.controller.authenticate_lldp = true;
  TwoSwitchNet net{std::move(opts)};
  net.tb.start(1_s);
  // An attacker forges an (unsigned) LLDP announcing a bogus link.
  net.h1->send(net::make_lldp_frame(net::MacAddress::lldp_multicast(),
                                    net::LldpPacket{0x2, 10}));
  net.tb.run_for(100_ms);
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::InvalidLldpSignature));
  // Only the genuine link exists.
  EXPECT_EQ(net.tb.controller().topology().link_count(), 1u);
}

TEST(LinkDiscovery, ForgedLldpAcceptedWithoutAuth) {
  // Without authentication the same forgery poisons the topology — the
  // baseline weakness TopoGuard's signed LLDP closes.
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h1->send(net::make_lldp_frame(net::MacAddress::lldp_multicast(),
                                    net::LldpPacket{0x2, 7}));
  net.tb.run_for(100_ms);
  EXPECT_TRUE(net.tb.controller().topology().has_link(
      of::Location{0x2, 7}, of::Location{0x1, 1}));
}

TEST(LinkDiscovery, VetoBlocksNewLink) {
  TwoSwitchNet net;
  net.rec->veto_links = true;
  net.tb.start(1_s);
  EXPECT_EQ(net.tb.controller().topology().link_count(), 0u);
  EXPECT_FALSE(net.rec->observations.empty());
}

TEST(LinkDiscovery, SingleLostRoundDoesNotRemoveLink) {
  // Sec. VIII-A: the link timeout exceeds the discovery interval 2-3x,
  // so one lost LLDP round (e.g. an LLI false positive blocking a
  // refresh, or transient loss) never drops a benign link.
  TwoSwitchNet net;
  net.tb.start(1_s);
  ASSERT_EQ(net.tb.controller().topology().link_count(), 1u);
  // Suppress exactly one refresh round via module veto.
  net.rec->veto_links = true;
  net.tb.run_for(16_s);  // covers one 15 s Floodlight round
  net.rec->veto_links = false;
  bool always_present = true;
  for (int i = 0; i < 40; ++i) {
    net.tb.run_for(1_s);
    always_present &= net.tb.controller().topology().link_count() == 1;
  }
  EXPECT_TRUE(always_present);
}

TEST(LinkDiscovery, TwoLostRoundsRemoveLink) {
  // The flip side: missing two consecutive rounds exceeds the 35 s
  // Floodlight timeout and the link ages out.
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.rec->veto_links = true;
  net.tb.run_for(36_s);  // two rounds suppressed
  EXPECT_EQ(net.tb.controller().topology().link_count(), 0u);
}

// ---------------- Control RTT ----------------

TEST(Controller, ControlRttTracksChannel) {
  TwoSwitchNet net;
  net.tb.start(5_s);  // a few echo rounds (every 2s)
  const auto rtt = net.tb.controller().control_rtt(0x1);
  ASSERT_TRUE(rtt.has_value());
  // Channel one-way is ~1 ms, so RTT ~2 ms.
  EXPECT_NEAR(rtt->to_millis_f(), 2.0, 0.5);
}

TEST(Controller, ControlRttUnknownSwitch) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  EXPECT_FALSE(net.tb.controller().control_rtt(0x99).has_value());
}

// ---------------- Host tracking ----------------

TEST(HostTracker, LearnsFromFirstPacket) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  const auto rec = net.tb.controller().host_tracker().find(net.h1->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x1, 1}));
  EXPECT_EQ(rec->ip, net.h1->ip());
}

TEST(HostTracker, FindByIp) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  const auto rec =
      net.tb.controller().host_tracker().find_by_ip(net.h1->ip());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->mac, net.h1->mac());
  EXPECT_FALSE(net.tb.controller()
                   .host_tracker()
                   .find_by_ip(net::Ipv4Address::host(99))
                   .has_value());
}

TEST(HostTracker, IgnoresSwitchInternalPorts) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  net.tb.run_for(500_ms);
  // No host may ever be bound to the inter-switch ports.
  for (const auto& rec :
       net.tb.controller().host_tracker().hosts_sorted()) {
    EXPECT_NE(rec.loc, (of::Location{0x1, 10})) << rec.mac.to_string();
    EXPECT_NE(rec.loc, (of::Location{0x2, 10})) << rec.mac.to_string();
  }
}

TEST(HostTracker, MoveEmitsEventAndRebinds) {
  TwoSwitchNet net;
  of::DataLink& target = net.tb.add_access_link(0x2, 4);
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(200_ms);
  scenario::migrate_host(net.tb, *net.h1, target, 500_ms);
  net.tb.run_for(600_ms);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(200_ms);
  const auto rec = net.tb.controller().host_tracker().find(net.h1->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x2, 4}));
  EXPECT_EQ(net.tb.controller().host_tracker().migrations(), 1u);
  bool saw_move = false;
  for (const auto& ev : net.rec->host_events) {
    if (ev.kind == HostEvent::Kind::Moved && ev.mac == net.h1->mac()) {
      saw_move = true;
      ASSERT_TRUE(ev.old_loc.has_value());
      EXPECT_EQ(*ev.old_loc, (of::Location{0x1, 1}));
    }
  }
  EXPECT_TRUE(saw_move);
}

TEST(HostTracker, VetoBlocksRebinding) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(200_ms);
  net.rec->veto_hosts = true;
  // A spoofer claims h1's identity from h2's port.
  net.h2->send(net::make_raw(net.h1->mac(), net.h1->ip(), net.h2->mac(),
                             net.h2->ip(), "spoof", 64));
  net.tb.run_for(200_ms);
  const auto rec = net.tb.controller().host_tracker().find(net.h1->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x1, 1}));  // unchanged
  EXPECT_GE(net.tb.controller().host_tracker().blocked_events(), 1u);
}

// ---------------- Routing ----------------

TEST(Routing, EndToEndPingAcrossSwitches) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  net.tb.run_for(300_ms);
  net.h1->send_ping(net.h2->mac(), net.h2->ip(), 1, 1);
  net.tb.run_for(300_ms);
  // h2 got the echo request and h1 got the reply.
  bool h2_got_req = false, h1_got_rep = false;
  for (const auto& p : net.h2->received()) {
    if (p.icmp() && p.icmp()->type == net::IcmpPayload::Type::EchoRequest) {
      h2_got_req = true;
    }
  }
  for (const auto& p : net.h1->received()) {
    if (p.icmp() && p.icmp()->type == net::IcmpPayload::Type::EchoReply) {
      h1_got_rep = true;
    }
  }
  EXPECT_TRUE(h2_got_req);
  EXPECT_TRUE(h1_got_rep);
  EXPECT_GE(net.tb.controller().routing().paths_installed(), 1u);
}

TEST(Routing, InstallsFlowRules) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  net.tb.run_for(200_ms);
  net.h1->send_ping(net.h2->mac(), net.h2->ip(), 1, 1);
  net.tb.run_for(200_ms);
  EXPECT_GT(net.tb.get_switch(0x1).flow_table().size(), 0u);
  EXPECT_GT(net.tb.get_switch(0x2).flow_table().size(), 0u);
  EXPECT_FALSE(net.rec->flow_mods.empty());
}

TEST(Routing, BroadcastDeliveredOncePerHost) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h2->clear_inbox();
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(300_ms);
  int arp_reqs = 0;
  for (const auto& p : net.h2->received()) {
    if (p.arp() && p.arp()->op == net::ArpPayload::Op::Request) ++arp_reqs;
  }
  EXPECT_EQ(arp_reqs, 1);  // duplicate-suppressed flood
}

TEST(Routing, UnknownUnicastFloods) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  const auto before = net.tb.controller().routing().floods();
  net.h1->send_raw(net::MacAddress::host(77), net::Ipv4Address::host(77),
                   "mystery");
  net.tb.run_for(200_ms);
  EXPECT_GT(net.tb.controller().routing().floods(), before);
}

TEST(Routing, HostMovePurgesStaleRules) {
  TwoSwitchNet net;
  of::DataLink& target = net.tb.add_access_link(0x2, 4);
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  net.tb.run_for(200_ms);
  net.h2->send_ping(net.h1->mac(), net.h1->ip(), 3, 1);
  net.tb.run_for(200_ms);
  // Rules toward h1 exist; move h1 and verify fresh traffic reaches the
  // new location.
  scenario::migrate_host(net.tb, *net.h1, target, 200_ms);
  net.tb.run_for(300_ms);
  net.h1->send_arp_request(net.h2->ip());  // re-register at new port
  net.tb.run_for(200_ms);
  net.h1->clear_inbox();
  net.h2->send_ping(net.h1->mac(), net.h1->ip(), 3, 2);
  net.tb.run_for(300_ms);
  bool got_ping = false;
  for (const auto& p : net.h1->received()) {
    if (p.icmp() && p.icmp()->type == net::IcmpPayload::Type::EchoRequest) {
      got_ping = true;
    }
  }
  EXPECT_TRUE(got_ping);
}

// ---------------- Reachability probes ----------------

TEST(Controller, ProbeReachabilityTrueForLiveHost) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  bool result = false, done = false;
  net.tb.controller().probe_reachability(
      of::Location{0x1, 1}, net.h1->mac(), net.h1->ip(), [&](bool r) {
        result = r;
        done = true;
      });
  net.tb.run_for(300_ms);
  EXPECT_TRUE(done);
  EXPECT_TRUE(result);
}

TEST(Controller, ProbeReachabilityFalseForDownHost) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h1->set_interface(false);
  net.tb.run_for(50_ms);
  bool result = true, done = false;
  net.tb.controller().probe_reachability(
      of::Location{0x1, 1}, net.h1->mac(), net.h1->ip(), [&](bool r) {
        result = r;
        done = true;
      });
  net.tb.run_for(500_ms);
  EXPECT_TRUE(done);
  EXPECT_FALSE(result);
}

TEST(Controller, ProbeRepliesInvisibleToModules) {
  TwoSwitchNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  const auto before = net.rec->packet_ins.size();
  bool done = false;
  net.tb.controller().probe_reachability(of::Location{0x1, 1}, net.h1->mac(),
                                         net.h1->ip(),
                                         [&](bool) { done = true; });
  net.tb.run_for(300_ms);
  ASSERT_TRUE(done);
  // The probe's echo reply was consumed before the defense pipeline.
  for (std::size_t i = before; i < net.rec->packet_ins.size(); ++i) {
    const auto* icmp = net.rec->packet_ins[i].packet.icmp();
    EXPECT_FALSE(icmp &&
                 icmp->type == net::IcmpPayload::Type::EchoReply &&
                 net.rec->packet_ins[i].packet.dst_mac ==
                     net.tb.controller().mac());
  }
}

// ---------------------------------------------------------------------
// ControllerConfig validation (the constructor rejects non-positive
// timeouts/intervals through TMG_ASSERT; one test per knob).
// ---------------------------------------------------------------------

/// Construct a Controller with `mutate` applied to a default config and
/// return the assertion messages that fired.
std::vector<std::string> config_violations(
    const std::function<void(ControllerConfig&)>& mutate) {
  ControllerConfig cfg;
  mutate(cfg);
  std::vector<std::string> messages;
  check::FailureHandler previous = check::set_failure_handler(
      [&](const char*, int, const char*, const std::string& msg) {
        messages.push_back(msg);
      });
  {
    sim::EventLoop loop;
    Controller ctrl{loop, sim::Rng{1}, cfg};
  }
  check::set_failure_handler(std::move(previous));
  return messages;
}

bool any_mentions(const std::vector<std::string>& messages,
                  const std::string& knob) {
  return std::any_of(messages.begin(), messages.end(),
                     [&](const std::string& m) {
                       return m.find(knob) != std::string::npos;
                     });
}

TEST(ControllerConfig, DefaultConfigIsValid) {
  EXPECT_TRUE(config_violations([](ControllerConfig&) {}).empty());
}

TEST(ControllerConfig, RejectsNonPositiveFlowIdleTimeout) {
  const auto msgs = config_violations([](ControllerConfig& c) {
    c.flow_idle_timeout = sim::Duration::zero();
  });
  EXPECT_TRUE(any_mentions(msgs, "flow_idle_timeout"));
}

TEST(ControllerConfig, RejectsNonPositiveHostProbeTimeout) {
  const auto msgs = config_violations([](ControllerConfig& c) {
    c.host_probe_timeout = sim::Duration::millis(-5);
  });
  EXPECT_TRUE(any_mentions(msgs, "host_probe_timeout"));
}

TEST(ControllerConfig, RejectsNonPositiveEchoInterval) {
  const auto msgs = config_violations(
      [](ControllerConfig& c) { c.echo_interval = sim::Duration::zero(); });
  EXPECT_TRUE(any_mentions(msgs, "echo_interval"));
}

TEST(ControllerConfig, RejectsNonPositiveLinkSweepInterval) {
  const auto msgs = config_violations([](ControllerConfig& c) {
    c.link_sweep_interval = sim::Duration::seconds(-1);
  });
  EXPECT_TRUE(any_mentions(msgs, "link_sweep_interval"));
}

TEST(ControllerConfig, RejectsNonPositiveLldpInterval) {
  const auto msgs = config_violations([](ControllerConfig& c) {
    c.profile.lldp_interval = sim::Duration::zero();
  });
  EXPECT_TRUE(any_mentions(msgs, "lldp_interval"));
}

TEST(ControllerConfig, RejectsNonPositiveLinkTimeout) {
  const auto msgs = config_violations([](ControllerConfig& c) {
    c.profile.link_timeout = sim::Duration::zero();
  });
  EXPECT_TRUE(any_mentions(msgs, "link_timeout"));
}

// --- Sharded open-addressed host table (host_table.hpp) ---

HostRecord make_rec(std::uint32_t i) {
  HostRecord rec;
  rec.mac = net::MacAddress::host(i);
  rec.ip = net::Ipv4Address::host(i);
  rec.loc = of::Location{1 + (i % 7), static_cast<of::PortNo>(1 + i % 40)};
  rec.first_seen = sim::SimTime{};
  return rec;
}

TEST(HostTable, InsertFindGrowAcrossShardDoublings) {
  HostTable table;
  // Well past the per-shard initial capacity so every shard doubles
  // several times.
  constexpr std::uint32_t kHosts = 20'000;
  for (std::uint32_t i = 0; i < kHosts; ++i) table.insert(make_rec(i));
  EXPECT_EQ(table.size(), kHosts);
  EXPECT_TRUE(table.audit().empty());
  for (std::uint32_t i = 0; i < kHosts; ++i) {
    const HostRecord* rec = table.find(net::MacAddress::host(i));
    ASSERT_NE(rec, nullptr) << "host " << i << " lost";
    EXPECT_EQ(rec->ip, net::Ipv4Address::host(i));
  }
  EXPECT_EQ(table.find(net::MacAddress::host(kHosts + 1)), nullptr);
}

TEST(HostTable, InsertRewritesExistingKey) {
  HostTable table;
  table.insert(make_rec(1));
  HostRecord updated = make_rec(1);
  updated.loc = of::Location{0x42, 9};
  table.insert(updated);
  EXPECT_EQ(table.size(), 1u);
  const HostRecord* rec = table.find(net::MacAddress::host(1));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->loc, (of::Location{0x42, 9}));
  EXPECT_TRUE(table.audit().empty());
}

TEST(HostTable, SortedSnapshotIsMacOrdered) {
  HostTable table;
  // Insert in descending order; snapshot must come back ascending.
  for (std::uint32_t i = 500; i > 0; --i) table.insert(make_rec(i));
  const std::vector<HostRecord> snap = table.sorted();
  ASSERT_EQ(snap.size(), 500u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].mac, snap[i].mac);
  }
}

TEST(HostTable, SortedSnapshotIsHistoryIndependent) {
  // Same record set inserted in two different orders must export the
  // same snapshot, regardless of the physical probe layout each
  // history produced.
  HostTable a;
  HostTable b;
  for (std::uint32_t i = 0; i < 1'000; ++i) a.insert(make_rec(i));
  for (std::uint32_t i = 1'000; i > 0; --i) b.insert(make_rec(i - 1));
  const auto sa = a.sorted();
  const auto sb = b.sorted();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].mac, sb[i].mac);
    EXPECT_EQ(sa[i].loc, sb[i].loc);
  }
}

}  // namespace
}  // namespace tmg::ctrl
