// Unit tests for the OpenFlow substrate: matches, flow table, data link,
// control channel, switch behavior (including link-integrity-pulse
// Port-Down semantics, which Port Amnesia depends on).
#include <gtest/gtest.h>

#include <vector>

#include "of/control_channel.hpp"
#include "of/data_link.hpp"
#include "of/flow_table.hpp"
#include "of/messages.hpp"
#include "of/switch.hpp"

namespace tmg::of {
namespace {

using namespace tmg::sim::literals;
using sim::Duration;
using sim::EventLoop;
using sim::Rng;
using sim::SimTime;

net::Packet ping(std::uint32_t src, std::uint32_t dst) {
  return net::make_icmp_echo(net::MacAddress::host(src),
                             net::Ipv4Address::host(src),
                             net::MacAddress::host(dst),
                             net::Ipv4Address::host(dst), 1, 1);
}

// ---------------- FlowMatch ----------------

TEST(FlowMatch, EmptyMatchesEverything) {
  const FlowMatch m;
  EXPECT_TRUE(m.matches(ping(1, 2), 1));
  EXPECT_TRUE(m.matches(ping(3, 4), 99));
}

TEST(FlowMatch, InPort) {
  FlowMatch m;
  m.in_port = 3;
  EXPECT_TRUE(m.matches(ping(1, 2), 3));
  EXPECT_FALSE(m.matches(ping(1, 2), 4));
}

TEST(FlowMatch, MacFields) {
  FlowMatch m;
  m.src_mac = net::MacAddress::host(1);
  m.dst_mac = net::MacAddress::host(2);
  EXPECT_TRUE(m.matches(ping(1, 2), 1));
  EXPECT_FALSE(m.matches(ping(2, 1), 1));
}

TEST(FlowMatch, EtherType) {
  FlowMatch m;
  m.ethertype = net::EtherType::Arp;
  EXPECT_FALSE(m.matches(ping(1, 2), 1));
  EXPECT_TRUE(m.matches(net::make_arp_request(net::MacAddress::host(1),
                                              net::Ipv4Address::host(1),
                                              net::Ipv4Address::host(2)),
                        1));
}

TEST(FlowMatch, IpFieldsRequireIpHeader) {
  FlowMatch m;
  m.src_ip = net::Ipv4Address::host(1);
  EXPECT_TRUE(m.matches(ping(1, 2), 1));
  EXPECT_FALSE(m.matches(ping(3, 2), 1));
  // ARP has no IPv4 header: an ip match can never hit it.
  EXPECT_FALSE(m.matches(net::make_arp_request(net::MacAddress::host(1),
                                               net::Ipv4Address::host(1),
                                               net::Ipv4Address::host(2)),
                         1));
}

TEST(FlowMatch, ToStringListsSetFields) {
  FlowMatch m;
  m.in_port = 2;
  m.dst_mac = net::MacAddress::host(9);
  const std::string s = m.to_string();
  EXPECT_NE(s.find("in=2"), std::string::npos);
  EXPECT_NE(s.find("dmac="), std::string::npos);
}

// ---------------- FlowTable ----------------

TEST(FlowTable, LookupHonorsPriority) {
  FlowTable t;
  FlowEntry low;
  low.match.dst_mac = net::MacAddress::host(2);
  low.priority = 10;
  low.action = FlowAction::drop();
  FlowEntry high = low;
  high.priority = 200;
  high.action = FlowAction::output(7);
  t.add(low, SimTime::zero());
  t.add(high, SimTime::zero());
  FlowEntry* hit = t.lookup(ping(1, 2), 1, SimTime::zero());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, FlowAction::output(7));
}

TEST(FlowTable, EqualPriorityFirstInstalledWins) {
  FlowTable t;
  FlowEntry a;
  a.priority = 100;
  a.action = FlowAction::output(1);
  FlowEntry b;
  b.priority = 100;
  b.match.in_port = 1;  // different match, same priority
  b.action = FlowAction::output(2);
  t.add(a, SimTime::zero());
  t.add(b, SimTime::zero());
  FlowEntry* hit = t.lookup(ping(1, 2), 1, SimTime::zero());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action, FlowAction::output(1));
}

TEST(FlowTable, AddReplacesIdenticalMatchAndPriority) {
  FlowTable t;
  FlowEntry e;
  e.match.dst_mac = net::MacAddress::host(2);
  e.priority = 100;
  e.action = FlowAction::output(1);
  t.add(e, SimTime::zero());
  e.action = FlowAction::output(9);
  t.add(e, SimTime::zero());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.entries()[0].action, FlowAction::output(9));
}

TEST(FlowTable, LookupUpdatesCounters) {
  FlowTable t;
  FlowEntry e;
  e.action = FlowAction::output(1);
  t.add(e, SimTime::zero());
  const net::Packet p = ping(1, 2);
  t.lookup(p, 1, SimTime::zero() + 1_ms);
  t.lookup(p, 1, SimTime::zero() + 2_ms);
  EXPECT_EQ(t.entries()[0].packet_count, 2u);
  EXPECT_EQ(t.entries()[0].byte_count, 2 * p.wire_size());
  EXPECT_EQ(t.entries()[0].last_matched_at, SimTime::zero() + 2_ms);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable t;
  FlowEntry e;
  e.match.dst_mac = net::MacAddress::host(9);
  e.action = FlowAction::output(1);
  t.add(e, SimTime::zero());
  EXPECT_EQ(t.lookup(ping(1, 2), 1, SimTime::zero()), nullptr);
}

TEST(FlowTable, RemoveMatching) {
  FlowTable t;
  FlowEntry e;
  e.match.dst_mac = net::MacAddress::host(2);
  e.action = FlowAction::output(1);
  t.add(e, SimTime::zero());
  FlowMatch other;
  other.dst_mac = net::MacAddress::host(3);
  EXPECT_TRUE(t.remove_matching(other).empty());
  const auto removed = t.remove_matching(e.match);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowTable, IdleTimeoutExpiry) {
  FlowTable t;
  FlowEntry e;
  e.action = FlowAction::output(1);
  e.idle_timeout = 5_s;
  t.add(e, SimTime::zero());
  EXPECT_TRUE(t.expire(SimTime::zero() + 4_s).empty());
  const auto expired = t.expire(SimTime::zero() + 5_s);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].reason, FlowRemoved::Reason::IdleTimeout);
}

TEST(FlowTable, IdleTimeoutRefreshedByTraffic) {
  FlowTable t;
  FlowEntry e;
  e.action = FlowAction::output(1);
  e.idle_timeout = 5_s;
  t.add(e, SimTime::zero());
  t.lookup(ping(1, 2), 1, SimTime::zero() + 4_s);
  EXPECT_TRUE(t.expire(SimTime::zero() + 8_s).empty());
  EXPECT_EQ(t.expire(SimTime::zero() + 9_s).size(), 1u);
}

TEST(FlowTable, HardTimeoutIgnoresTraffic) {
  FlowTable t;
  FlowEntry e;
  e.action = FlowAction::output(1);
  e.hard_timeout = 10_s;
  t.add(e, SimTime::zero());
  t.lookup(ping(1, 2), 1, SimTime::zero() + 9_s);
  const auto expired = t.expire(SimTime::zero() + 10_s);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].reason, FlowRemoved::Reason::HardTimeout);
}

TEST(FlowTable, ZeroTimeoutsNeverExpire) {
  FlowTable t;
  FlowEntry e;
  e.action = FlowAction::output(1);
  t.add(e, SimTime::zero());
  EXPECT_TRUE(t.expire(SimTime::zero() + Duration::seconds(100000)).empty());
}

// ---------------- DataLink ----------------

struct LinkFixture {
  EventLoop loop;
  Rng rng{1};
  DataLink link{loop, Rng{2}, sim::make_fixed(Duration::millis(5))};
  std::vector<net::Packet> at_a;
  std::vector<net::Packet> at_b;

  LinkFixture() {
    link.attach(Side::A, {[this](const net::Packet& p) { at_a.push_back(p); },
                          [](bool) {}});
    link.attach(Side::B, {[this](const net::Packet& p) { at_b.push_back(p); },
                          [](bool) {}});
  }
};

TEST(DataLink, DeliversAfterLatency) {
  LinkFixture f;
  f.link.send(Side::A, ping(1, 2));
  f.loop.run_until(SimTime::zero() + Duration::from_millis_f(4.9));
  EXPECT_TRUE(f.at_b.empty());
  f.loop.run_until(SimTime::zero() + Duration::from_millis_f(5.1));
  ASSERT_EQ(f.at_b.size(), 1u);
  EXPECT_TRUE(f.at_a.empty());
  EXPECT_EQ(f.link.delivered(Side::B), 1u);
}

TEST(DataLink, CarrierDownDropsPackets) {
  LinkFixture f;
  f.link.set_carrier(Side::B, false);
  f.link.send(Side::A, ping(1, 2));
  f.loop.run();
  EXPECT_TRUE(f.at_b.empty());
  f.link.set_carrier(Side::B, true);
  f.link.send(Side::A, ping(1, 2));
  f.loop.run();
  EXPECT_EQ(f.at_b.size(), 1u);
}

TEST(DataLink, CarrierChangeNotifiesPeer) {
  EventLoop loop;
  DataLink link{loop, Rng{3}, sim::make_fixed(1_ms)};
  std::vector<bool> seen_at_a;
  link.attach(Side::A, {[](const net::Packet&) {},
                        [&](bool up) { seen_at_a.push_back(up); }});
  link.attach(Side::B, {{}, {}});
  link.set_carrier(Side::B, false);
  link.set_carrier(Side::B, false);  // duplicate: no second notification
  link.set_carrier(Side::B, true);
  EXPECT_EQ(seen_at_a, (std::vector<bool>{false, true}));
}

TEST(DataLink, JitterDoesNotReorder) {
  EventLoop loop;
  // Huge jitter relative to mean would reorder without the FIFO clamp.
  DataLink link{loop, Rng{4},
                std::make_unique<sim::NormalLatency>(5_ms, 3_ms)};
  std::vector<std::uint64_t> order;
  link.attach(Side::A, {{}, {}});
  link.attach(Side::B, {[&](const net::Packet& p) {
                          order.push_back(p.trace_id);
                        },
                        {}});
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 50; ++i) {
    net::Packet p = ping(1, 2);
    sent.push_back(p.trace_id);
    link.send(Side::A, p);
  }
  loop.run();
  EXPECT_EQ(order, sent);
}

TEST(DataLink, DropFilterInjectsLoss) {
  LinkFixture f;
  f.link.set_drop_filter(
      [](const net::Packet& p) { return p.is_lldp(); });
  f.link.send(Side::A, ping(1, 2));
  f.link.send(Side::A, net::make_lldp_frame(net::MacAddress::lldp_multicast(),
                                            net::LldpPacket{0x1, 1}));
  f.loop.run();
  ASSERT_EQ(f.at_b.size(), 1u);  // only the ping survived
  EXPECT_FALSE(f.at_b[0].is_lldp());
}

TEST(DataLink, TapSeesDeliveredPackets) {
  LinkFixture f;
  int tapped = 0;
  f.link.set_tap([&](const net::Packet&, Side to) {
    EXPECT_EQ(to, Side::B);
    ++tapped;
  });
  f.link.send(Side::A, ping(1, 2));
  f.loop.run();
  EXPECT_EQ(tapped, 1);
}

// ---------------- ControlChannel ----------------

TEST(ControlChannel, RoundTripDelivery) {
  EventLoop loop;
  ControlChannel ch{loop, Rng{5}, sim::make_fixed(1_ms)};
  std::vector<CtrlToSwitch> to_sw;
  std::vector<SwitchToCtrl> to_ctrl;
  ch.attach_switch([&](const CtrlToSwitch& m) { to_sw.push_back(m); });
  ch.attach_controller([&](const SwitchToCtrl& m) { to_ctrl.push_back(m); });
  ch.to_switch(EchoRequest{7});
  ch.to_controller(EchoReply{0x1, 7});
  loop.run();
  ASSERT_EQ(to_sw.size(), 1u);
  ASSERT_EQ(to_ctrl.size(), 1u);
  EXPECT_EQ(std::get<EchoRequest>(to_sw[0]).token, 7u);
  EXPECT_EQ(std::get<EchoReply>(to_ctrl[0]).token, 7u);
  EXPECT_EQ(ch.messages_to_switch(), 1u);
  EXPECT_EQ(ch.messages_to_controller(), 1u);
}

TEST(ControlChannel, PerTypeCountersPartitionTheTotals) {
  EventLoop loop;
  ControlChannel ch{loop, Rng{5}, sim::make_fixed(1_ms)};
  ch.attach_switch([](const CtrlToSwitch&) {});
  ch.attach_controller([](const SwitchToCtrl&) {});
  ch.to_switch(EchoRequest{1});
  ch.to_switch(EchoRequest{2});
  ch.to_switch(PacketOut{});
  ch.to_controller(EchoReply{0x1, 1});
  ch.to_controller(PacketIn{});
  ch.to_controller(PacketIn{});
  ch.to_controller(PortStatus{});
  loop.run();

  const auto& down = ch.to_switch_counts();
  const auto& up = ch.to_controller_counts();
  EXPECT_EQ(down[CtrlToSwitch{PacketOut{}}.index()], 1u);
  EXPECT_EQ(down[CtrlToSwitch{EchoRequest{}}.index()], 2u);
  EXPECT_EQ(up[SwitchToCtrl{PacketIn{}}.index()], 2u);
  EXPECT_EQ(up[SwitchToCtrl{PortStatus{}}.index()], 1u);
  EXPECT_EQ(up[SwitchToCtrl{EchoReply{}}.index()], 1u);

  std::uint64_t down_sum = 0;
  for (std::uint64_t c : down) down_sum += c;
  std::uint64_t up_sum = 0;
  for (std::uint64_t c : up) up_sum += c;
  EXPECT_EQ(down_sum, ch.messages_to_switch());
  EXPECT_EQ(up_sum, ch.messages_to_controller());
}

TEST(ControlChannel, FifoUnderJitter) {
  EventLoop loop;
  ControlChannel ch{loop, Rng{6},
                    std::make_unique<sim::NormalLatency>(2_ms, 1500_us)};
  std::vector<std::uint64_t> seen;
  ch.attach_switch([&](const CtrlToSwitch& m) {
    seen.push_back(std::get<EchoRequest>(m).token);
  });
  for (std::uint64_t i = 0; i < 50; ++i) ch.to_switch(EchoRequest{i});
  loop.run();
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

// ---------------- Switch ----------------

struct SwitchFixture {
  EventLoop loop;
  ControlChannel channel{loop, Rng{7}, sim::make_fixed(1_ms)};
  Switch sw;
  DataLink l1{loop, Rng{8}, sim::make_fixed(100_us)};
  DataLink l2{loop, Rng{9}, sim::make_fixed(100_us)};
  DataLink l3{loop, Rng{10}, sim::make_fixed(100_us)};
  std::vector<SwitchToCtrl> ctrl_inbox;
  std::vector<net::Packet> host1, host2, host3;

  static Switch::Config config() {
    Switch::Config c;
    c.dpid = 0xA;
    return c;
  }

  SwitchFixture() : sw{loop, Rng{11}, config(), channel} {
    channel.attach_controller(
        [this](const SwitchToCtrl& m) { ctrl_inbox.push_back(m); });
    sw.attach_link(1, l1, Side::A);
    sw.attach_link(2, l2, Side::A);
    sw.attach_link(3, l3, Side::A);
    l1.attach(Side::B, {[this](const net::Packet& p) { host1.push_back(p); },
                        [](bool) {}});
    l2.attach(Side::B, {[this](const net::Packet& p) { host2.push_back(p); },
                        [](bool) {}});
    l3.attach(Side::B, {[this](const net::Packet& p) { host3.push_back(p); },
                        [](bool) {}});
  }

  void run(Duration d = Duration::millis(100)) {
    loop.run_until(loop.now() + d);
  }

  template <typename T>
  std::vector<T> collect() const {
    std::vector<T> out;
    for (const auto& m : ctrl_inbox) {
      if (const T* v = std::get_if<T>(&m)) out.push_back(*v);
    }
    return out;
  }
};

TEST(Switch, TableMissGoesToController) {
  SwitchFixture f;
  f.l1.send(Side::B, ping(1, 2));
  f.run();
  const auto pis = f.collect<PacketIn>();
  ASSERT_EQ(pis.size(), 1u);
  EXPECT_EQ(pis[0].dpid, 0xAu);
  EXPECT_EQ(pis[0].in_port, 1);
  EXPECT_EQ(pis[0].reason, PacketIn::Reason::TableMiss);
}

TEST(Switch, FlowRuleForwards) {
  SwitchFixture f;
  FlowMod fm;
  fm.match.dst_mac = net::MacAddress::host(2);
  fm.action = FlowAction::output(2);
  f.channel.to_switch(fm);
  f.run();
  f.l1.send(Side::B, ping(1, 2));
  f.run();
  EXPECT_EQ(f.host2.size(), 1u);
  EXPECT_TRUE(f.collect<PacketIn>().empty());
  EXPECT_EQ(f.sw.port_stats(2).tx_packets, 1u);
  EXPECT_EQ(f.sw.port_stats(1).rx_packets, 1u);
}

TEST(Switch, FloodExcludesIngress) {
  SwitchFixture f;
  FlowMod fm;
  fm.action = FlowAction::flood();
  f.channel.to_switch(fm);
  f.run();
  f.l1.send(Side::B, ping(1, 2));
  f.run();
  EXPECT_TRUE(f.host1.empty());
  EXPECT_EQ(f.host2.size(), 1u);
  EXPECT_EQ(f.host3.size(), 1u);
}

TEST(Switch, DropActionDrops) {
  SwitchFixture f;
  FlowMod fm;
  fm.action = FlowAction::drop();
  f.channel.to_switch(fm);
  f.run();
  f.l1.send(Side::B, ping(1, 2));
  f.run();
  EXPECT_TRUE(f.host2.empty());
  EXPECT_TRUE(f.collect<PacketIn>().empty());
}

TEST(Switch, LldpAlwaysPuntsToController) {
  SwitchFixture f;
  // Even a catch-all forwarding rule must not swallow LLDP.
  FlowMod fm;
  fm.action = FlowAction::output(2);
  f.channel.to_switch(fm);
  f.run();
  f.l1.send(Side::B, net::make_lldp_frame(net::MacAddress::lldp_multicast(),
                                          net::LldpPacket{0x1, 1}));
  f.run();
  const auto pis = f.collect<PacketIn>();
  ASSERT_EQ(pis.size(), 1u);
  EXPECT_TRUE(pis[0].packet.is_lldp());
  EXPECT_TRUE(f.host2.empty());
}

TEST(Switch, PacketOutToPort) {
  SwitchFixture f;
  f.channel.to_switch(PacketOut{2, kPortNone, ping(9, 2)});
  f.run();
  EXPECT_EQ(f.host2.size(), 1u);
}

TEST(Switch, PacketOutFloodReachesAllPorts) {
  SwitchFixture f;
  f.channel.to_switch(PacketOut{kPortFlood, kPortNone, ping(9, 2)});
  f.run();
  EXPECT_EQ(f.host1.size(), 1u);
  EXPECT_EQ(f.host2.size(), 1u);
  EXPECT_EQ(f.host3.size(), 1u);
}

TEST(Switch, PacketOutToControllerBouncesBack) {
  SwitchFixture f;
  f.channel.to_switch(PacketOut{kPortController, kPortNone, ping(9, 2)});
  f.run();
  const auto pis = f.collect<PacketIn>();
  ASSERT_EQ(pis.size(), 1u);
  EXPECT_EQ(pis[0].in_port, kPortController);
}

TEST(Switch, EchoRequestAnswered) {
  SwitchFixture f;
  f.channel.to_switch(EchoRequest{99});
  f.run();
  const auto replies = f.collect<EchoReply>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].token, 99u);
  EXPECT_EQ(replies[0].dpid, 0xAu);
}

TEST(Switch, FlowStatsIncludeMatchAndCounters) {
  SwitchFixture f;
  FlowMod fm;
  fm.cookie = 77;
  fm.match.dst_mac = net::MacAddress::host(2);
  fm.action = FlowAction::output(2);
  f.channel.to_switch(fm);
  f.run();
  f.l1.send(Side::B, ping(1, 2));
  f.run();
  f.channel.to_switch(FlowStatsRequest{5});
  f.run();
  const auto stats = f.collect<FlowStatsReply>();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].xid, 5u);
  ASSERT_EQ(stats[0].entries.size(), 1u);
  EXPECT_EQ(stats[0].entries[0].cookie, 77u);
  EXPECT_EQ(stats[0].entries[0].packet_count, 1u);
  EXPECT_EQ(stats[0].entries[0].match.dst_mac, net::MacAddress::host(2));
}

TEST(Switch, DeleteMatchingEmitsFlowRemoved) {
  SwitchFixture f;
  FlowMod fm;
  fm.cookie = 12;
  fm.match.dst_mac = net::MacAddress::host(2);
  fm.action = FlowAction::output(2);
  f.channel.to_switch(fm);
  f.run();
  FlowMod del;
  del.command = FlowMod::Command::DeleteMatching;
  del.match = fm.match;
  f.channel.to_switch(del);
  f.run();
  const auto removed = f.collect<FlowRemoved>();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].cookie, 12u);
  EXPECT_EQ(removed[0].reason, FlowRemoved::Reason::Delete);
}

TEST(Switch, IdleExpiryEmitsFlowRemoved) {
  SwitchFixture f;
  FlowMod fm;
  fm.cookie = 13;
  fm.match.dst_mac = net::MacAddress::host(2);
  fm.action = FlowAction::output(2);
  fm.idle_timeout = 2_s;
  f.channel.to_switch(fm);
  f.run(Duration::seconds(5));
  const auto removed = f.collect<FlowRemoved>();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].reason, FlowRemoved::Reason::IdleTimeout);
}

// --- Link-integrity pulse semantics (the physics behind Port Amnesia) ---

TEST(Switch, SustainedCarrierLossEmitsPortDown) {
  SwitchFixture f;
  f.l1.set_carrier(Side::B, false);
  f.run(Duration::millis(30));  // > detect_max (24 ms)
  const auto events = f.collect<PortStatus>();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].reason, PortStatus::Reason::Down);
  EXPECT_EQ(events[0].port, 1);
  EXPECT_FALSE(f.sw.port_oper_up(1));
}

TEST(Switch, FastFlapIsInvisible) {
  // A flap shorter than the minimum link-integrity window (8 ms) can
  // never be detected: no Port-Down, no Port-Up.
  SwitchFixture f;
  f.l1.set_carrier(Side::B, false);
  f.loop.run_until(f.loop.now() + Duration::millis(5));
  f.l1.set_carrier(Side::B, true);
  f.run(Duration::millis(100));
  EXPECT_TRUE(f.collect<PortStatus>().empty());
  EXPECT_TRUE(f.sw.port_oper_up(1));
}

TEST(Switch, SlowFlapEmitsDownThenUp) {
  SwitchFixture f;
  f.l1.set_carrier(Side::B, false);
  f.loop.run_until(f.loop.now() + Duration::millis(30));
  f.l1.set_carrier(Side::B, true);
  f.run(Duration::millis(100));
  const auto events = f.collect<PortStatus>();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].reason, PortStatus::Reason::Down);
  EXPECT_EQ(events[1].reason, PortStatus::Reason::Up);
  EXPECT_TRUE(f.sw.port_oper_up(1));
}

TEST(Switch, OperDownPortDropsRx) {
  SwitchFixture f;
  f.l1.set_carrier(Side::B, false);
  f.run(Duration::millis(30));
  ASSERT_FALSE(f.sw.port_oper_up(1));
  // Carrier restored; frames sent before the up-detect window closes
  // are dropped.
  f.l1.set_carrier(Side::B, true);
  f.l1.send(Side::B, ping(1, 2));
  f.run(Duration::millis(100));
  EXPECT_TRUE(f.collect<PacketIn>().empty());
  // After detection, traffic flows again.
  f.l1.send(Side::B, ping(1, 2));
  f.run();
  EXPECT_EQ(f.collect<PacketIn>().size(), 1u);
}

TEST(Switch, DownPortExcludedFromFlood) {
  SwitchFixture f;
  f.l2.set_carrier(Side::B, false);
  f.run(Duration::millis(30));
  f.channel.to_switch(PacketOut{kPortFlood, kPortNone, ping(9, 2)});
  f.run();
  EXPECT_EQ(f.host1.size(), 1u);
  EXPECT_EQ(f.host3.size(), 1u);
  EXPECT_TRUE(f.host2.empty());
}

TEST(Switch, PortsListed) {
  SwitchFixture f;
  EXPECT_EQ(f.sw.ports(), (std::vector<PortNo>{1, 2, 3}));
  EXPECT_EQ(f.sw.dpid(), 0xAu);
}

TEST(Location, Formatting) {
  EXPECT_EQ((Location{0x2, 5}).to_string(), "0x2:5");
  EXPECT_LT((Location{0x1, 9}), (Location{0x2, 1}));
}

}  // namespace
}  // namespace tmg::of
