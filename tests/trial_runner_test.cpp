// TrialRunner determinism contract (DESIGN.md §7).
//
// The whole point of the parallel trial runner is that `--jobs N` is a
// pure wall-clock knob: every simulated number must be byte-identical
// to the serial run. These tests serialize full experiment outcomes —
// including exact double bits and per-trial alert logs — and require
// jobs 1/2/8 to agree on the paper's two headline experiment families
// (port amnesia link fabrication, port probing hijack).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/packet.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_arena.hpp"
#include "scenario/trial_runner.hpp"
#include "sim/thread_pool.hpp"
#include "stats/streaming_quantile.hpp"

namespace tmg::scenario {
namespace {

// Exact textual serialization: doubles are printed as hex-floats so
// that "identical" means identical bits, not identical rounding.
void put(std::ostream& os, double v) { os << std::hexfloat << v << ';'; }
void put(std::ostream& os, const std::optional<double>& v) {
  if (v) {
    put(os, *v);
  } else {
    os << "nil;";
  }
}

std::string serialize(const HijackOutcome& out) {
  std::ostringstream os;
  os << out.hijack_succeeded << ';' << out.traffic_redirected << ';';
  put(os, out.down_to_final_probe_start_ms);
  put(os, out.down_to_declared_down_ms);
  put(os, out.down_to_iface_up_ms);
  put(os, out.down_to_confirmed_ms);
  put(os, out.ident_change_ms);
  os << out.alerts_before_rejoin << ';' << out.alerts_after_rejoin << ';'
     << out.events_executed << ';';
  for (const ctrl::Alert& a : out.alerts) {
    os << a.time.count_nanos() << ',' << a.module << ','
       << static_cast<int>(a.type) << ',' << a.message << '|';
  }
  return std::move(os).str();
}

std::string serialize(const LinkAttackOutcome& out) {
  std::ostringstream os;
  os << out.link_registered << ';' << out.link_present_at_end << ';'
     << out.mitm_traffic << ';' << out.lldp_relayed << ';'
     << out.transit_bridged << ';' << out.flaps << ';'
     << out.alerts_before_attack << ';' << out.alerts_total << ';'
     << out.alerts_topoguard << ';' << out.alerts_sphinx << ';'
     << out.alerts_cmm << ';' << out.alerts_lli << ';'
     << out.events_executed;
  return std::move(os).str();
}

std::vector<std::string> hijack_trials_at(std::size_t jobs,
                                          std::size_t trials) {
  TrialRunner runner{{jobs}};
  const auto outcomes = runner.map(trials, [](std::size_t i) {
    HijackConfig cfg;
    // Alternate suites so trials exercise different code paths and
    // alert volumes, not just different seeds.
    cfg.suite = (i % 2 == 0) ? DefenseSuite::TopoGuardAndSphinx
                             : DefenseSuite::Sphinx;
    cfg.seed = 500 + i;
    cfg.nmap_overhead = (i % 3 == 0);
    return run_hijack(cfg);
  });
  std::vector<std::string> serialized;
  serialized.reserve(outcomes.size());
  for (const auto& out : outcomes) serialized.push_back(serialize(out));
  return serialized;
}

std::vector<std::string> link_attack_trials_at(std::size_t jobs,
                                               std::size_t trials) {
  TrialRunner runner{{jobs}};
  const auto outcomes = runner.map(trials, [](std::size_t i) {
    LinkAttackConfig cfg;
    cfg.kind = (i % 2 == 0) ? LinkAttackKind::OobAmnesia
                            : LinkAttackKind::ClassicRelay;
    cfg.suite = DefenseSuite::TopoGuardAndSphinx;
    cfg.seed = 700 + i;
    // Shortened windows keep the test fast; the attack still needs a
    // few LLDP rounds to land (benign >= 10 s, attack >= 32 s).
    cfg.benign_window = sim::Duration::seconds(12);
    cfg.attack_window = sim::Duration::seconds(33);
    return run_link_attack(cfg);
  });
  std::vector<std::string> serialized;
  serialized.reserve(outcomes.size());
  for (const auto& out : outcomes) serialized.push_back(serialize(out));
  return serialized;
}

TEST(TrialRunnerTest, HijackTrialsIdenticalAcrossJobCounts) {
  const auto serial = hijack_trials_at(1, 6);
  const auto two = hijack_trials_at(2, 6);
  const auto eight = hijack_trials_at(8, 6);
  ASSERT_EQ(serial.size(), 6u);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  // Sanity: the experiment actually produced signal, so equality above
  // is not comparing six empty outcomes.
  bool any_success = false;
  for (const auto& s : serial) any_success |= (s.substr(0, 2) == "1;");
  EXPECT_TRUE(any_success);
}

TEST(TrialRunnerTest, LinkAttackTrialsIdenticalAcrossJobCounts) {
  const auto serial = link_attack_trials_at(1, 4);
  const auto parallel = link_attack_trials_at(2, 4);
  ASSERT_EQ(serial.size(), 4u);
  EXPECT_EQ(serial, parallel);
}

TEST(TrialRunnerTest, AggregatesIdenticalAcrossJobCounts) {
  // Aggregation in trial-index order over parallel results must match
  // the serial fold exactly (no floating-point reassociation).
  const auto sum_at = [](std::size_t jobs) {
    TrialRunner runner{{jobs}};
    const auto outcomes = runner.map(5, [](std::size_t i) {
      HijackConfig cfg;
      cfg.seed = 900 + i;
      return run_hijack(cfg);
    });
    double sum = 0.0;
    std::uint64_t events = 0;
    for (const auto& out : outcomes) {
      if (out.down_to_confirmed_ms) sum += *out.down_to_confirmed_ms;
      events += out.events_executed;
    }
    std::ostringstream os;
    os << std::hexfloat << sum << ';' << events;
    return std::move(os).str();
  };
  const std::string serial = sum_at(1);
  EXPECT_EQ(serial, sum_at(2));
  EXPECT_EQ(serial, sum_at(8));
}

TEST(TrialRunnerTest, TrialSeedIsPureAndWellSpread) {
  // Same (base, index) -> same seed, every call.
  EXPECT_EQ(TrialRunner::trial_seed(42, 0), TrialRunner::trial_seed(42, 0));
  EXPECT_EQ(TrialRunner::trial_seed(7, 123),
            TrialRunner::trial_seed(7, 123));
  // Distinct indices must not collide over a realistic trial range,
  // and far-apart bases land in distinct streams. (base and index are
  // XOR-folded before scrambling, so trial_seed(b, 0) == trial_seed(
  // b ^ i, i) by construction — bases below stay clear of 42 ^ [0,1000).)
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    seen.insert(TrialRunner::trial_seed(42, i));
  }
  for (std::uint64_t base : {0x10000ull, 0x20000ull, 0xdeadbeefull}) {
    seen.insert(TrialRunner::trial_seed(base, 0));
  }
  EXPECT_EQ(seen.size(), 1003u);
}

TEST(TrialRunnerTest, JobsResolveAndSerialFallback) {
  TrialRunner defaulted{{}};
  EXPECT_GE(defaulted.jobs(), 1u);
  EXPECT_EQ(defaulted.jobs(), sim::ThreadPool::hardware_jobs());
  TrialRunner serial{{1}};
  EXPECT_EQ(serial.jobs(), 1u);
  TrialRunner four{{4}};
  EXPECT_EQ(four.jobs(), 4u);
}

TEST(TrialRunnerTest, MapPreservesIndexOrder) {
  TrialRunner runner{{4}};
  const auto out =
      runner.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(TrialRunnerTest, ExceptionFromLowestFailingTrialPropagates) {
  TrialRunner runner{{4}};
  try {
    runner.map(16, [](std::size_t i) -> int {
      if (i == 3 || i == 11) {
        throw std::runtime_error("trial " + std::to_string(i));
      }
      return 0;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 3");
  }
}

TEST(TrialRunnerTest, ChunkGeometryDependsOnTrialCountAlone) {
  // The determinism argument rests on chunk boundaries being a pure
  // function of the trial count: every trial is covered exactly once,
  // and at most kMaxChunks chunks exist (so reduce() holds O(64)
  // partials at any scale).
  for (const std::size_t trials :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{65},
        std::size_t{1000}, std::size_t{100000}}) {
    const std::size_t size = TrialRunner::chunk_size(trials);
    const std::size_t n = TrialRunner::chunk_count(trials);
    EXPECT_LE(n, TrialRunner::kMaxChunks) << trials;
    EXPECT_GE(size * n, trials) << trials;
    EXPECT_LT(size * (n - 1), trials) << trials;
  }
  EXPECT_EQ(TrialRunner::chunk_count(0), 0u);
  // Small batches fan out one trial per chunk (full parallelism).
  EXPECT_EQ(TrialRunner::chunk_size(8), 1u);
  EXPECT_EQ(TrialRunner::chunk_count(8), 8u);
}

TEST(TrialRunnerTest, ReduceStreamsWithoutMaterializingResults) {
  // Sum of squares over 10^5 indices through per-chunk accumulators.
  TrialRunner runner{{4}};
  struct Acc {
    std::uint64_t sum = 0;
  };
  const Acc total = runner.reduce(
      100000, [] { return Acc{}; },
      [](Acc& a, std::size_t i) {
        a.sum += static_cast<std::uint64_t>(i) * i;
      },
      [](Acc& t, Acc&& part) { t.sum += part.sum; });
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) expect += i * i;
  EXPECT_EQ(total.sum, expect);
}

TEST(TrialRunnerTest, ReduceQuantilesByteIdenticalAcrossJobCounts) {
  // The Monte-Carlo contract: a StreamingQuantile reduce — whose merge
  // is deliberately order-sensitive — must still come out bit-identical
  // at any job count, because chunk boundaries and merge order are a
  // function of the trial count alone.
  const auto run_at = [](std::size_t jobs) {
    TrialRunner runner{{jobs}};
    struct Acc {
      stats::StreamingQuantile p50{0.5, 32};
      stats::StreamingQuantile p99{0.99, 32};
      double sum = 0.0;
    };
    const Acc acc = runner.reduce(
        5000, [] { return Acc{}; },
        [](Acc& a, std::size_t i) {
          // Deterministic per-trial value derived the same way trial
          // seeds are: no RNG state crosses trials.
          const double x = static_cast<double>(
                               TrialRunner::trial_seed(9000, i) % 100000) /
                           1000.0;
          a.p50.add(x);
          a.p99.add(x);
          a.sum += x;
        },
        [](Acc& t, Acc&& part) {
          t.p50.merge(part.p50);
          t.p99.merge(part.p99);
          t.sum += part.sum;
        });
    std::ostringstream os;
    os << std::hexfloat << acc.p50.value() << ';' << acc.p99.value() << ';'
       << acc.p50.min() << ';' << acc.p50.max() << ';' << acc.sum;
    return std::move(os).str();
  };
  const std::string serial = run_at(1);
  EXPECT_EQ(serial, run_at(2));
  EXPECT_EQ(serial, run_at(8));
}

TEST(TrialRunnerTest, LegacyRunnerProducesIdenticalResults) {
  // The pre-chunking scheduler is kept as the --speedup A/B baseline;
  // it must stay observationally interchangeable with the default path
  // — including well past kMaxChunks trials, where its per-trial
  // "chunks" outnumber the chunked scheduler's static grid.
  TrialRunner chunked{{4, false}};
  TrialRunner legacy{{4, true}};
  for (const std::size_t trials : {std::size_t{50}, std::size_t{200}}) {
    const auto a =
        chunked.map(trials, [](std::size_t i) { return i * 3 + 1; });
    const auto b =
        legacy.map(trials, [](std::size_t i) { return i * 3 + 1; });
    EXPECT_EQ(a, b) << trials;
  }
}

TEST(TrialRunnerTest, LegacyReduceHoldsOnePartialPerTrial) {
  // Regression: the legacy scheduler emits chunk index == trial index,
  // so reduce() must size its partials per *trial*, not per the static
  // <= kMaxChunks grid — at 200 trials the old sizing wrote partials[64
  // and up] out of bounds (bench_montecarlo --legacy-runner).
  struct Acc {
    std::uint64_t sum = 0;
  };
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 200; ++i) expect += i * i;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    TrialRunner legacy{{jobs, true}};
    const Acc total = legacy.reduce(
        200, [] { return Acc{}; },
        [](Acc& a, std::size_t i) {
          a.sum += static_cast<std::uint64_t>(i) * i;
        },
        [](Acc& t, Acc&& part) { t.sum += part.sum; });
    EXPECT_EQ(total.sum, expect) << jobs;
  }
}

TEST(TrialRunnerTest, ReduceResetsTraceIdsAtEveryTrialEntry) {
  // DESIGN.md §7 rule 1 on the reduce path: every trial must start with
  // a fresh thread-local trace-id counter, so the first trace id a
  // trial draws is 1 regardless of what the worker ran before — at any
  // job count (the serial path shares one thread across all trials).
  for (const std::size_t jobs :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    TrialRunner runner{{jobs}};
    struct Acc {
      bool all_first_ids_one = true;
    };
    const Acc acc = runner.reduce(
        64, [] { return Acc{}; },
        [](Acc& a, std::size_t) {
          // Draw twice: the first id must be the post-reset 1, and the
          // second draw dirties the counter for the *next* trial to
          // prove the reset actually happens per trial.
          a.all_first_ids_one &= (net::next_trace_id() == 1);
          net::next_trace_id();
        },
        [](Acc& t, Acc&& part) {
          t.all_first_ids_one &= part.all_first_ids_one;
        });
    EXPECT_TRUE(acc.all_first_ids_one) << jobs;
  }
}

TEST(TrialRunnerTest, WorkerSlotStaysWithinJobs) {
  TrialRunner runner{{4}};
  std::atomic<bool> out_of_range{false};
  runner.map(200, [&](std::size_t) {
    if (TrialRunner::worker_slot() >= 4) out_of_range.store(true);
    return 0;
  });
  EXPECT_FALSE(out_of_range.load());
  // The serial path runs on the caller's thread: slot 0 by contract.
  EXPECT_EQ(TrialRunner::worker_slot(), 0u);
}

TEST(TrialRunnerTest, ArenaReusedAcrossTrialsIsObservationallyFresh) {
  // The arena-reset contract, end to end: N hijack experiments run back
  // to back through ONE recycled arena must serialize byte-identically
  // to N fresh-testbed runs — same alert logs, same double bits, same
  // event counts.
  std::vector<std::string> fresh;
  for (std::size_t i = 0; i < 3; ++i) {
    HijackConfig cfg;
    cfg.suite = (i % 2 == 0) ? DefenseSuite::TopoGuardAndSphinx
                             : DefenseSuite::Sphinx;
    cfg.seed = 1300 + i;
    fresh.push_back(serialize(run_hijack(cfg)));
  }
  TrialArena arena;
  std::vector<std::string> recycled;
  for (std::size_t i = 0; i < 3; ++i) {
    HijackConfig cfg;
    cfg.suite = (i % 2 == 0) ? DefenseSuite::TopoGuardAndSphinx
                             : DefenseSuite::Sphinx;
    cfg.seed = 1300 + i;
    cfg.arena = &arena;
    recycled.push_back(serialize(run_hijack(cfg)));
  }
  EXPECT_EQ(fresh, recycled);
  EXPECT_EQ(arena.trials_served(), 3u);
}

TEST(TrialRunnerTest, ArenaLinkAttackMatchesFreshTestbed) {
  LinkAttackConfig cfg;
  cfg.kind = LinkAttackKind::OobAmnesia;
  cfg.suite = DefenseSuite::TopoGuardAndSphinx;
  cfg.seed = 4242;
  cfg.benign_window = sim::Duration::seconds(12);
  cfg.attack_window = sim::Duration::seconds(33);
  const std::string fresh = serialize(run_link_attack(cfg));
  TrialArena arena;
  cfg.arena = &arena;
  // Twice through the same arena: the second run exercises reset() on a
  // loop the first run left dirty.
  EXPECT_EQ(serialize(run_link_attack(cfg)), fresh);
  EXPECT_EQ(serialize(run_link_attack(cfg)), fresh);
}

TEST(TrialRunnerTest, DisablingInvariantCheckerIsResultNeutral) {
  // Benches turn the audit battery off for wall-clock; every simulated
  // number must survive unchanged (the hook is read-only).
  HijackConfig cfg;
  cfg.suite = DefenseSuite::TopoGuard;
  cfg.seed = 2024;
  const HijackOutcome audited = run_hijack(cfg);
  cfg.check_invariants = false;
  const HijackOutcome bare = run_hijack(cfg);
  EXPECT_GT(audited.invariant_sweeps, 0u);
  EXPECT_EQ(bare.invariant_sweeps, 0u);
  // Strip the checker counters (the knob's only legitimate effect) and
  // compare everything else bit for bit.
  HijackOutcome a = audited, b = bare;
  a.invariant_sweeps = b.invariant_sweeps = 0;
  a.invariant_violations = b.invariant_violations = 0;
  EXPECT_EQ(serialize(a), serialize(b));
}

// ---------------------------------------------------------------------
// parse_jobs_value / parse_jobs_arg (satellite: malformed --jobs must
// be rejected, not silently treated as the hardware default)
// ---------------------------------------------------------------------

TEST(ParseJobsTest, AcceptsPlainNonNegativeIntegers) {
  EXPECT_EQ(parse_jobs_value("0"), std::size_t{0});
  EXPECT_EQ(parse_jobs_value("1"), std::size_t{1});
  EXPECT_EQ(parse_jobs_value("8"), std::size_t{8});
  EXPECT_EQ(parse_jobs_value("64"), std::size_t{64});
  EXPECT_EQ(parse_jobs_value("007"), std::size_t{7});
}

TEST(ParseJobsTest, RejectsMalformedValues) {
  EXPECT_FALSE(parse_jobs_value(nullptr).has_value());
  EXPECT_FALSE(parse_jobs_value("").has_value());
  EXPECT_FALSE(parse_jobs_value("abc").has_value());
  EXPECT_FALSE(parse_jobs_value("-1").has_value());
  EXPECT_FALSE(parse_jobs_value("+4").has_value());
  EXPECT_FALSE(parse_jobs_value("4x").has_value());
  EXPECT_FALSE(parse_jobs_value("4 ").has_value());
  EXPECT_FALSE(parse_jobs_value(" 4").has_value());
  EXPECT_FALSE(parse_jobs_value("1e3").has_value());
  EXPECT_FALSE(parse_jobs_value("0x10").has_value());
  // 2^64 overflows: must be rejected, not wrapped.
  EXPECT_FALSE(parse_jobs_value("18446744073709551616").has_value());
}

TEST(ParseJobsTest, ParsesBothFlagSpellings) {
  const char* eq_form[] = {"bench", "--jobs=8"};
  EXPECT_EQ(parse_jobs_arg(2, const_cast<char**>(eq_form)), 8u);
  const char* sep_form[] = {"bench", "--jobs", "3"};
  EXPECT_EQ(parse_jobs_arg(3, const_cast<char**>(sep_form)), 3u);
  const char* absent[] = {"bench", "--trials", "10"};
  EXPECT_EQ(parse_jobs_arg(3, const_cast<char**>(absent)), 0u);
}

TEST(TrialRunnerTest, ParallelTrialsActuallyRunOnPoolThreads) {
  // Guard against a silent fallback to serial execution: 4 trials on 4
  // workers rendezvous — each blocks until all 4 are resident at once.
  // A serial runner can never satisfy the rendezvous; the wall-clock
  // deadline keeps a broken pool from deadlocking the test.
  TrialRunner runner{{4}};
  std::atomic<int> inside{0};
  std::atomic<bool> rendezvous{false};
  runner.map(4, [&](std::size_t) {
    if (++inside == 4) rendezvous.store(true);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!rendezvous.load() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    --inside;
    return 0;
  });
  EXPECT_TRUE(rendezvous.load());
}

}  // namespace
}  // namespace tmg::scenario
