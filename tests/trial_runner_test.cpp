// TrialRunner determinism contract (DESIGN.md §7).
//
// The whole point of the parallel trial runner is that `--jobs N` is a
// pure wall-clock knob: every simulated number must be byte-identical
// to the serial run. These tests serialize full experiment outcomes —
// including exact double bits and per-trial alert logs — and require
// jobs 1/2/8 to agree on the paper's two headline experiment families
// (port amnesia link fabrication, port probing hijack).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "scenario/experiments.hpp"
#include "scenario/trial_runner.hpp"
#include "sim/thread_pool.hpp"

namespace tmg::scenario {
namespace {

// Exact textual serialization: doubles are printed as hex-floats so
// that "identical" means identical bits, not identical rounding.
void put(std::ostream& os, double v) { os << std::hexfloat << v << ';'; }
void put(std::ostream& os, const std::optional<double>& v) {
  if (v) {
    put(os, *v);
  } else {
    os << "nil;";
  }
}

std::string serialize(const HijackOutcome& out) {
  std::ostringstream os;
  os << out.hijack_succeeded << ';' << out.traffic_redirected << ';';
  put(os, out.down_to_final_probe_start_ms);
  put(os, out.down_to_declared_down_ms);
  put(os, out.down_to_iface_up_ms);
  put(os, out.down_to_confirmed_ms);
  put(os, out.ident_change_ms);
  os << out.alerts_before_rejoin << ';' << out.alerts_after_rejoin << ';'
     << out.events_executed << ';';
  for (const ctrl::Alert& a : out.alerts) {
    os << a.time.count_nanos() << ',' << a.module << ','
       << static_cast<int>(a.type) << ',' << a.message << '|';
  }
  return std::move(os).str();
}

std::string serialize(const LinkAttackOutcome& out) {
  std::ostringstream os;
  os << out.link_registered << ';' << out.link_present_at_end << ';'
     << out.mitm_traffic << ';' << out.lldp_relayed << ';'
     << out.transit_bridged << ';' << out.flaps << ';'
     << out.alerts_before_attack << ';' << out.alerts_total << ';'
     << out.alerts_topoguard << ';' << out.alerts_sphinx << ';'
     << out.alerts_cmm << ';' << out.alerts_lli << ';'
     << out.events_executed;
  return std::move(os).str();
}

std::vector<std::string> hijack_trials_at(std::size_t jobs,
                                          std::size_t trials) {
  TrialRunner runner{{jobs}};
  const auto outcomes = runner.map(trials, [](std::size_t i) {
    HijackConfig cfg;
    // Alternate suites so trials exercise different code paths and
    // alert volumes, not just different seeds.
    cfg.suite = (i % 2 == 0) ? DefenseSuite::TopoGuardAndSphinx
                             : DefenseSuite::Sphinx;
    cfg.seed = 500 + i;
    cfg.nmap_overhead = (i % 3 == 0);
    return run_hijack(cfg);
  });
  std::vector<std::string> serialized;
  serialized.reserve(outcomes.size());
  for (const auto& out : outcomes) serialized.push_back(serialize(out));
  return serialized;
}

std::vector<std::string> link_attack_trials_at(std::size_t jobs,
                                               std::size_t trials) {
  TrialRunner runner{{jobs}};
  const auto outcomes = runner.map(trials, [](std::size_t i) {
    LinkAttackConfig cfg;
    cfg.kind = (i % 2 == 0) ? LinkAttackKind::OobAmnesia
                            : LinkAttackKind::ClassicRelay;
    cfg.suite = DefenseSuite::TopoGuardAndSphinx;
    cfg.seed = 700 + i;
    // Shortened windows keep the test fast; the attack still needs a
    // few LLDP rounds to land (benign >= 10 s, attack >= 32 s).
    cfg.benign_window = sim::Duration::seconds(12);
    cfg.attack_window = sim::Duration::seconds(33);
    return run_link_attack(cfg);
  });
  std::vector<std::string> serialized;
  serialized.reserve(outcomes.size());
  for (const auto& out : outcomes) serialized.push_back(serialize(out));
  return serialized;
}

TEST(TrialRunnerTest, HijackTrialsIdenticalAcrossJobCounts) {
  const auto serial = hijack_trials_at(1, 6);
  const auto two = hijack_trials_at(2, 6);
  const auto eight = hijack_trials_at(8, 6);
  ASSERT_EQ(serial.size(), 6u);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  // Sanity: the experiment actually produced signal, so equality above
  // is not comparing six empty outcomes.
  bool any_success = false;
  for (const auto& s : serial) any_success |= (s.substr(0, 2) == "1;");
  EXPECT_TRUE(any_success);
}

TEST(TrialRunnerTest, LinkAttackTrialsIdenticalAcrossJobCounts) {
  const auto serial = link_attack_trials_at(1, 4);
  const auto parallel = link_attack_trials_at(2, 4);
  ASSERT_EQ(serial.size(), 4u);
  EXPECT_EQ(serial, parallel);
}

TEST(TrialRunnerTest, AggregatesIdenticalAcrossJobCounts) {
  // Aggregation in trial-index order over parallel results must match
  // the serial fold exactly (no floating-point reassociation).
  const auto sum_at = [](std::size_t jobs) {
    TrialRunner runner{{jobs}};
    const auto outcomes = runner.map(5, [](std::size_t i) {
      HijackConfig cfg;
      cfg.seed = 900 + i;
      return run_hijack(cfg);
    });
    double sum = 0.0;
    std::uint64_t events = 0;
    for (const auto& out : outcomes) {
      if (out.down_to_confirmed_ms) sum += *out.down_to_confirmed_ms;
      events += out.events_executed;
    }
    std::ostringstream os;
    os << std::hexfloat << sum << ';' << events;
    return std::move(os).str();
  };
  const std::string serial = sum_at(1);
  EXPECT_EQ(serial, sum_at(2));
  EXPECT_EQ(serial, sum_at(8));
}

TEST(TrialRunnerTest, TrialSeedIsPureAndWellSpread) {
  // Same (base, index) -> same seed, every call.
  EXPECT_EQ(TrialRunner::trial_seed(42, 0), TrialRunner::trial_seed(42, 0));
  EXPECT_EQ(TrialRunner::trial_seed(7, 123),
            TrialRunner::trial_seed(7, 123));
  // Distinct indices must not collide over a realistic trial range,
  // and far-apart bases land in distinct streams. (base and index are
  // XOR-folded before scrambling, so trial_seed(b, 0) == trial_seed(
  // b ^ i, i) by construction — bases below stay clear of 42 ^ [0,1000).)
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    seen.insert(TrialRunner::trial_seed(42, i));
  }
  for (std::uint64_t base : {0x10000ull, 0x20000ull, 0xdeadbeefull}) {
    seen.insert(TrialRunner::trial_seed(base, 0));
  }
  EXPECT_EQ(seen.size(), 1003u);
}

TEST(TrialRunnerTest, JobsResolveAndSerialFallback) {
  TrialRunner defaulted{{}};
  EXPECT_GE(defaulted.jobs(), 1u);
  EXPECT_EQ(defaulted.jobs(), sim::ThreadPool::hardware_jobs());
  TrialRunner serial{{1}};
  EXPECT_EQ(serial.jobs(), 1u);
  TrialRunner four{{4}};
  EXPECT_EQ(four.jobs(), 4u);
}

TEST(TrialRunnerTest, MapPreservesIndexOrder) {
  TrialRunner runner{{4}};
  const auto out =
      runner.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(TrialRunnerTest, ExceptionFromLowestFailingTrialPropagates) {
  TrialRunner runner{{4}};
  try {
    runner.map(16, [](std::size_t i) -> int {
      if (i == 3 || i == 11) {
        throw std::runtime_error("trial " + std::to_string(i));
      }
      return 0;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 3");
  }
}

TEST(TrialRunnerTest, ParallelTrialsActuallyRunOnPoolThreads) {
  // Guard against a silent fallback to serial execution: 4 trials on 4
  // workers rendezvous — each blocks until all 4 are resident at once.
  // A serial runner can never satisfy the rendezvous; the wall-clock
  // deadline keeps a broken pool from deadlocking the test.
  TrialRunner runner{{4}};
  std::atomic<int> inside{0};
  std::atomic<bool> rendezvous{false};
  runner.map(4, [&](std::size_t) {
    if (++inside == 4) rendezvous.store(true);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!rendezvous.load() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    --inside;
    return 0;
  });
  EXPECT_TRUE(rendezvous.load());
}

}  // namespace
}  // namespace tmg::scenario
