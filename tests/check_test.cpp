// Runtime invariant checker (src/check) end-to-end tests.
//
// Two families: healthy runs must be violation-free with the full
// battery exercised (clock, topology symmetry, discovery coherence,
// host bindings, port profiles, LLDP conservation), and deliberately
// corrupted state must make the checker raise InvariantViolation
// alerts. Plus the TMG_ASSERT / failure-handler plumbing itself.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "check/assert.hpp"
#include "check/invariants.hpp"
#include "ctrl/link_discovery.hpp"
#include "scenario/experiments.hpp"
#include "scenario/fig1_testbed.hpp"
#include "scenario/testbed.hpp"

namespace tmg::check {
namespace {

using namespace tmg::sim::literals;
using ctrl::AlertType;
using scenario::Testbed;
using scenario::TestbedOptions;

/// Manual-mode options: no periodic hook, no abort — tests drive
/// run_checks() themselves and observe violations as return values.
InvariantOptions manual_options() {
  InvariantOptions opts;
  opts.check_every_events = 0;
  opts.assert_on_violation = false;
  return opts;
}

struct TwoSwitchNet {
  Testbed tb;
  attack::Host* h1;
  attack::Host* h2;

  TwoSwitchNet() {
    tb.add_switch(0x1);
    tb.add_switch(0x2);
    tb.connect_switches(0x1, 10, 0x2, 10);
    attack::HostConfig a;
    a.mac = net::MacAddress::host(1);
    a.ip = net::Ipv4Address::host(1);
    h1 = &tb.add_host(0x1, 1, a);
    attack::HostConfig b;
    b.mac = net::MacAddress::host(2);
    b.ip = net::Ipv4Address::host(2);
    h2 = &tb.add_host(0x2, 1, b);
  }

  void warm() {
    tb.start();
    h1->send_arp_request(h2->ip());
    h2->send_arp_request(h1->ip());
    tb.run_for(500_ms);
  }
};

// ---------------------------------------------------------------------
// Healthy runs: the full battery passes, periodically and at teardown.
// ---------------------------------------------------------------------

TEST(InvariantChecker, HealthyRunIsViolationFree) {
  TwoSwitchNet net;
  InvariantChecker& checker = net.tb.enable_invariant_checker();
  net.warm();
  checker.final_check();
  EXPECT_GT(checker.checks_run(), 0u) << "periodic hook never fired";
  EXPECT_EQ(checker.violation_count(), 0u);
  EXPECT_EQ(net.tb.controller().alerts().count(AlertType::InvariantViolation),
            0u);
}

TEST(InvariantChecker, PeriodicCadenceFollowsEventCount) {
  TwoSwitchNet net;
  InvariantOptions opts;
  opts.check_every_events = 8;  // tight cadence: a small net is quiet
  InvariantChecker checker{net.tb.controller(), opts};
  net.tb.start();
  const std::uint64_t after_start = checker.checks_run();
  EXPECT_GT(after_start, 0u) << "warmup alone should trigger sweeps";
  net.tb.run_for(2_s);
  EXPECT_GT(checker.checks_run(), after_start)
      << "more events should mean more periodic sweeps";
  EXPECT_GE(checker.checks_run(), net.tb.loop().events_executed() / 8);
  EXPECT_EQ(checker.violation_count(), 0u);
}

TEST(InvariantChecker, Fig1AttackRunStaysClean) {
  // An in-progress fabrication attack stresses the LLDP classification
  // buckets (unsolicited/relayed probes); conservation must still hold.
  scenario::TestbedOptions opts;
  opts.check_invariants = true;
  scenario::Fig1Testbed f = scenario::make_fig1_testbed(opts);
  f.tb->start();
  scenario::fig1_warm_hosts(f);
  InvariantChecker* checker = f.tb->invariant_checker();
  ASSERT_NE(checker, nullptr);
  EXPECT_TRUE(checker->run_checks().empty());
  EXPECT_EQ(checker->violation_count(), 0u);
}

TEST(InvariantChecker, LldpLedgerBalancesAfterDiscovery) {
  // Invariant 6, inspected directly: every emission is matched, expired,
  // or still outstanding — nothing vanishes from the ledger.
  TwoSwitchNet net;
  net.warm();
  const auto acct = net.tb.controller().link_discovery().lldp_accounting();
  EXPECT_GT(acct.emitted, 0u);
  EXPECT_GT(acct.matched, 0u) << "the real link should have been matched";
  EXPECT_EQ(acct.emitted,
            acct.matched + acct.expired + acct.outstanding_unmatched);
}

// ---------------------------------------------------------------------
// Deliberate corruption: the checker must notice and raise alerts.
// ---------------------------------------------------------------------

TEST(InvariantChecker, TopologyCorruptionRaisesAlert) {
  TwoSwitchNet net;
  net.warm();
  InvariantChecker checker{net.tb.controller(), manual_options()};
  ASSERT_TRUE(checker.run_checks().empty()) << "clean before corruption";

  // Rip the discovered link out of the graph behind the discovery
  // service's back: the ledger still believes it is Active, so the
  // discovery/topology coherence invariant must fire.
  ASSERT_TRUE(net.tb.controller().topology().remove_link(
      of::Location{0x1, 10}, of::Location{0x2, 10}));

  const std::vector<std::string> violations = checker.run_checks();
  EXPECT_FALSE(violations.empty());
  EXPECT_GT(checker.violation_count(), 0u);
  EXPECT_GT(net.tb.controller().alerts().count(AlertType::InvariantViolation),
            0u);
  EXPECT_GT(net.tb.controller().alerts().count_from("InvariantChecker"), 0u);
}

TEST(InvariantChecker, IllegalProfileFlipRaisesAlert) {
  // Invariant 5: HOST -> SWITCH without an intervening Port-Down reset
  // is exactly the corruption Port Amnesia exploits in a real profiler.
  TwoSwitchNet net;
  net.warm();
  InvariantChecker checker{net.tb.controller(), manual_options()};

  const of::Location loc{0x1, 1};
  auto profile = defense::TopoGuard::PortType::Host;
  checker.watch_port_profiles(
      [&profile, loc] {
        InvariantChecker::ProfileSnapshot snap;
        snap[loc] = profile;
        return snap;
      },
      [](of::Location) -> std::optional<sim::SimTime> {
        return std::nullopt;  // no Port-Down ever observed
      });

  ASSERT_TRUE(checker.run_checks().empty()) << "baseline snapshot";
  profile = defense::TopoGuard::PortType::Switch;  // flip without reset
  const std::vector<std::string> violations = checker.run_checks();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("profile"), std::string::npos) << violations[0];
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::InvariantViolation));
}

TEST(InvariantChecker, ProfileFlipAcrossResetIsLegal) {
  // The same HOST -> SWITCH flip is fine when a Port-Down reset happened
  // since the previous sweep — that is the legitimate Port Amnesia path.
  TwoSwitchNet net;
  net.warm();
  InvariantChecker checker{net.tb.controller(), manual_options()};

  const of::Location loc{0x1, 1};
  auto profile = defense::TopoGuard::PortType::Host;
  std::optional<sim::SimTime> reset_at;
  checker.watch_port_profiles(
      [&profile, loc] {
        InvariantChecker::ProfileSnapshot snap;
        snap[loc] = profile;
        return snap;
      },
      [&reset_at](of::Location) { return reset_at; });

  ASSERT_TRUE(checker.run_checks().empty());
  reset_at = net.tb.loop().now();  // Port-Down lands now...
  net.tb.run_for(10_ms);
  profile = defense::TopoGuard::PortType::Switch;  // ...then the flip
  EXPECT_TRUE(checker.run_checks().empty());
  EXPECT_EQ(checker.violation_count(), 0u);
}

TEST(InvariantChecker, AssertOnViolationRoutesThroughFailureHandler) {
  TwoSwitchNet net;
  net.warm();
  InvariantOptions opts = manual_options();
  opts.assert_on_violation = true;
  InvariantChecker checker{net.tb.controller(), opts};

  int failures = 0;
  std::string last_msg;
  FailureHandler previous = set_failure_handler(
      [&](const char*, int, const char*, const std::string& msg) {
        ++failures;
        last_msg = msg;
      });

  net.tb.controller().topology().remove_link(of::Location{0x1, 10},
                                             of::Location{0x2, 10});
  checker.run_checks();
  set_failure_handler(std::move(previous));

  EXPECT_GT(failures, 0);
  EXPECT_FALSE(last_msg.empty());
}

// ---------------------------------------------------------------------
// TMG_ASSERT / TMG_DCHECK plumbing.
// ---------------------------------------------------------------------

TEST(Assert, PassingConditionDoesNotInvokeHandler) {
  int failures = 0;
  FailureHandler previous =
      set_failure_handler([&](const char*, int, const char*,
                              const std::string&) { ++failures; });
  TMG_ASSERT(1 + 1 == 2, "arithmetic works");
  set_failure_handler(std::move(previous));
  EXPECT_EQ(failures, 0);
}

TEST(Assert, FailingConditionReportsFileLineAndMessage) {
  std::string seen_file;
  int seen_line = 0;
  std::string seen_cond;
  std::string seen_msg;
  FailureHandler previous = set_failure_handler(
      [&](const char* file, int line, const char* cond,
          const std::string& msg) {
        seen_file = file;
        seen_line = line;
        seen_cond = cond;
        seen_msg = msg;
      });
  TMG_ASSERT(2 < 1, "deliberately false");
  set_failure_handler(std::move(previous));

  EXPECT_NE(seen_file.find("check_test.cpp"), std::string::npos);
  EXPECT_GT(seen_line, 0);
  EXPECT_EQ(seen_cond, "2 < 1");
  EXPECT_EQ(seen_msg, "deliberately false");
}

TEST(Assert, DcheckEvaluatesOnlyInDebugBuilds) {
  int evaluations = 0;
  int failures = 0;
  FailureHandler previous =
      set_failure_handler([&](const char*, int, const char*,
                              const std::string&) { ++failures; });
  TMG_DCHECK(++evaluations > 0, "side effect probe");
  set_failure_handler(std::move(previous));
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0) << "NDEBUG must not evaluate the condition";
#else
  EXPECT_EQ(evaluations, 1);
#endif
  EXPECT_EQ(failures, 0);
}

}  // namespace
}  // namespace tmg::check
