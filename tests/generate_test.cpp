// Tests for the fleet-scale topology generators (DESIGN.md §12):
// two-run determinism per (family, size, seed), structural invariants
// (fat-tree degree/level math, leaf-spine bipartiteness, ISP
// connectivity), and generator output pinned under the graph audit.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topo/generate.hpp"

namespace tmg::topo {
namespace {

bool same_topology(const GeneratedTopology& a, const GeneratedTopology& b) {
  if (a.family != b.family) return false;
  if (a.tiers != b.tiers) return false;
  if (a.hosts.size() != b.hosts.size()) return false;
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    if (a.hosts[i].dpid != b.hosts[i].dpid ||
        a.hosts[i].port != b.hosts[i].port) {
      return false;
    }
  }
  return a.graph.links_view() == b.graph.links_view();
}

// Per-switch fabric degree, counted from the link list.
std::size_t degree(const GeneratedTopology& t, Dpid d) {
  std::size_t n = 0;
  for (const Link& l : t.graph.links_view()) {
    if (l.a.dpid == d) ++n;
    if (l.b.dpid == d) ++n;
  }
  return n;
}

TEST(FatTree, LevelAndLinkCounts) {
  for (const int k : {4, 8, 16}) {
    GeneratorConfig cfg;
    cfg.family = TopoFamily::FatTree;
    cfg.k = k;
    const GeneratedTopology t = generate(cfg);
    const std::size_t ku = static_cast<std::size_t>(k);
    ASSERT_EQ(t.tiers.size(), 3u);
    EXPECT_EQ(t.tiers[0].size(), ku * ku / 4) << "core, k=" << k;
    EXPECT_EQ(t.tiers[1].size(), ku * ku / 2) << "aggregation, k=" << k;
    EXPECT_EQ(t.tiers[2].size(), ku * ku / 2) << "edge, k=" << k;
    EXPECT_EQ(t.switch_count(), 5 * ku * ku / 4);
    EXPECT_EQ(t.host_count(), ku * ku * ku / 4);
    // Edge<->agg and agg<->core each contribute k * (k/2)^2 links.
    EXPECT_EQ(t.graph.link_count(), 2 * ku * (ku / 2) * (ku / 2));
    EXPECT_TRUE(t.graph.audit().empty());
  }
}

TEST(FatTree, DegreeInvariants) {
  GeneratorConfig cfg;
  cfg.family = TopoFamily::FatTree;
  cfg.k = 8;
  const GeneratedTopology t = generate(cfg);
  // Core and aggregation switches carry k fabric links; edge switches
  // carry k/2 up-links (their other k/2 ports face hosts).
  for (const Dpid d : t.tiers[0]) EXPECT_EQ(degree(t, d), 8u);
  for (const Dpid d : t.tiers[1]) EXPECT_EQ(degree(t, d), 8u);
  for (const Dpid d : t.tiers[2]) EXPECT_EQ(degree(t, d), 4u);
}

TEST(FatTree, HostPortsAreNotSwitchPorts) {
  GeneratorConfig cfg;
  cfg.family = TopoFamily::FatTree;
  cfg.k = 4;
  const GeneratedTopology t = generate(cfg);
  for (const HostAttachment& h : t.hosts) {
    EXPECT_FALSE(t.graph.is_switch_port(Location{h.dpid, h.port}))
        << "host port " << h.dpid << ":" << h.port
        << " classified as fabric";
    // Hosts hang off edge switches only.
    EXPECT_NE(std::find(t.tiers[2].begin(), t.tiers[2].end(), h.dpid),
              t.tiers[2].end());
  }
}

TEST(FatTree, AnyEdgePairIsConnected) {
  GeneratorConfig cfg;
  cfg.family = TopoFamily::FatTree;
  cfg.k = 8;
  const GeneratedTopology t = generate(cfg);
  // First and last edge switch live in different pods: the shortest
  // path must climb edge -> agg -> core -> agg -> edge (4 hops).
  const auto p = t.graph.path(t.tiers[2].front(), t.tiers[2].back());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 4u);
  // Same-pod pair: edge -> agg -> edge.
  const auto q = t.graph.path(t.tiers[2][0], t.tiers[2][1]);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->size(), 2u);
}

TEST(LeafSpine, BipartiteFabric) {
  GeneratorConfig cfg;
  cfg.family = TopoFamily::LeafSpine;
  cfg.spines = 4;
  cfg.leaves = 12;
  cfg.hosts_per_leaf = 16;
  const GeneratedTopology t = generate(cfg);
  ASSERT_EQ(t.tiers.size(), 2u);
  EXPECT_EQ(t.tiers[0].size(), 4u);
  EXPECT_EQ(t.tiers[1].size(), 12u);
  EXPECT_EQ(t.graph.link_count(), 48u);
  EXPECT_EQ(t.host_count(), 12u * 16u);
  const std::set<Dpid> spines(t.tiers[0].begin(), t.tiers[0].end());
  const std::set<Dpid> leaves(t.tiers[1].begin(), t.tiers[1].end());
  // Every link crosses tiers: no leaf-leaf or spine-spine edges.
  for (const Link& l : t.graph.links_view()) {
    const bool a_spine = spines.contains(l.a.dpid);
    const bool b_spine = spines.contains(l.b.dpid);
    EXPECT_NE(a_spine, b_spine) << "intra-tier link " << l.to_string();
  }
  // Full mesh between tiers: leaf degree == spines, spine degree ==
  // leaves.
  for (const Dpid d : t.tiers[0]) EXPECT_EQ(degree(t, d), 12u);
  for (const Dpid d : t.tiers[1]) EXPECT_EQ(degree(t, d), 4u);
  EXPECT_TRUE(t.graph.audit().empty());
}

TEST(Isp, ConnectedAndAudited) {
  GeneratorConfig cfg;
  cfg.family = TopoFamily::Isp;
  cfg.isp_switches = 64;
  cfg.seed = 7;
  const GeneratedTopology t = generate(cfg);
  ASSERT_EQ(t.tiers.size(), 1u);
  EXPECT_EQ(t.switch_count(), 64u);
  // The preferential-attachment spanning tree guarantees at least n-1
  // links; Waxman shortcuts only add more.
  EXPECT_GE(t.graph.link_count(), 63u);
  EXPECT_TRUE(t.graph.audit().empty());
  // Spanning tree => every switch reachable from the first.
  for (const Dpid d : t.tiers[0]) {
    EXPECT_TRUE(t.graph.path(t.tiers[0].front(), d).has_value())
        << "switch " << d << " unreachable";
  }
}

TEST(Isp, SeedChangesWiring) {
  GeneratorConfig cfg;
  cfg.family = TopoFamily::Isp;
  cfg.isp_switches = 48;
  cfg.seed = 1;
  const GeneratedTopology a = generate(cfg);
  cfg.seed = 2;
  const GeneratedTopology b = generate(cfg);
  EXPECT_FALSE(same_topology(a, b));
}

TEST(Generate, TwoRunDeterminismPerFamily) {
  for (const TopoFamily family :
       {TopoFamily::FatTree, TopoFamily::LeafSpine, TopoFamily::Isp}) {
    GeneratorConfig cfg;
    cfg.family = family;
    cfg.k = 8;
    cfg.leaves = 16;
    cfg.spines = 4;
    cfg.isp_switches = 96;
    cfg.seed = 42;
    const GeneratedTopology a = generate(cfg);
    const GeneratedTopology b = generate(cfg);
    EXPECT_TRUE(same_topology(a, b)) << "family " << to_string(family);
  }
}

TEST(Generate, MillionHostAttachments) {
  // Leaf-spine host capacity scales independently of fabric size: the
  // attachment list is the only thing that grows.
  GeneratorConfig cfg;
  cfg.family = TopoFamily::LeafSpine;
  cfg.spines = 8;
  cfg.leaves = 1024;
  cfg.hosts_per_leaf = 1024;
  const GeneratedTopology t = generate(cfg);
  EXPECT_EQ(t.host_count(), 1024u * 1024u);
  EXPECT_EQ(t.switch_count(), 1032u);
  // Identities stay unique out to the end of the range.
  const std::uint32_t last =
      static_cast<std::uint32_t>(t.host_count()) - 1;
  EXPECT_NE(fleet_mac(0), fleet_mac(last));
  EXPECT_NE(fleet_ip(0), fleet_ip(last));
  EXPECT_EQ(fleet_ip(0).to_string(), "10.0.0.1");
}

TEST(Generate, FleetIdentityIsIndexDerived) {
  EXPECT_EQ(fleet_mac(0), net::MacAddress::host(1));
  EXPECT_EQ(fleet_ip(65535).to_string(), "10.1.0.0");
  EXPECT_EQ(fleet_ip(0x00ffffff - 1).to_string(), "10.255.255.255");
}

}  // namespace
}  // namespace tmg::topo
