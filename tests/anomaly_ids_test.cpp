// Tests for the trace-profile anomaly IDS (DESIGN.md §14): the
// featurization contract between the online listener and the offline
// trace trainer, profile serialization, and the Tables II/IV scoring
// acceptance — zero false alerts on clean runs, detection on the
// attack rows the hand-written defenses cover.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ctrl/profiles.hpp"
#include "ids/behavior_profile.hpp"
#include "ids/profile_anomaly.hpp"
#include "obs/observability.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_runner.hpp"

namespace tmg {
namespace {

using scenario::DefenseSuite;
using scenario::HijackConfig;
using scenario::LinkAttackConfig;
using scenario::LinkAttackKind;
using scenario::TrialRunner;

// Train a baseline from `train_trials` clean link-attack + hijack
// timelines under one controller profile — the bench_anomaly recipe at
// test scale.
ids::BehaviorProfile train_baseline(const ctrl::ControllerProfile& profile,
                                    int train_trials) {
  ids::ProfileTrainer trainer;
  for (int t = 0; t < train_trials; ++t) {
    LinkAttackConfig link;
    link.kind = LinkAttackKind::ClassicRelay;
    link.suite = DefenseSuite::None;
    link.seed = TrialRunner::trial_seed(7, static_cast<std::size_t>(t));
    link.attack_enabled = false;
    link.check_invariants = false;
    link.profile = profile;
    link.anomaly_trainer = &trainer;
    (void)scenario::run_link_attack(link);

    HijackConfig hijack;
    hijack.suite = DefenseSuite::None;
    hijack.seed = TrialRunner::trial_seed(8, static_cast<std::size_t>(t));
    hijack.attack_enabled = false;
    hijack.check_invariants = false;
    hijack.profile = profile;
    hijack.anomaly_trainer = &trainer;
    (void)scenario::run_hijack(hijack);
  }
  return trainer.finalize();
}

// ---------------- featurization contract ----------------

// The load-bearing equivalence: one clean run feeding BOTH the
// in-process trainer and a TraceLog export must yield byte-identical
// profiles when the export is replayed offline. This pins the online
// featurization (pipeline hooks) to the offline one (trace "ctrl"
// instants + matched lldp/rtt spans) — the contract tools/train_profile
// relies on.
TEST(AnomalyFeaturization, TraceReplayMatchesLiveTraining) {
  ids::ProfileTrainer live;
  obs::Observability obs;

  LinkAttackConfig link;
  link.kind = LinkAttackKind::ClassicRelay;
  link.suite = DefenseSuite::None;
  link.seed = 42;
  link.attack_enabled = false;
  link.check_invariants = false;
  link.anomaly_trainer = &live;
  link.obs = &obs;
  (void)scenario::run_link_attack(link);

  ids::ProfileTrainer offline;
  std::string error;
  ASSERT_TRUE(offline.add_trace_jsonl(obs.trace().to_jsonl(), &error))
      << error;

  EXPECT_GT(live.events(), 0u);
  EXPECT_EQ(live.events(), offline.events());
  EXPECT_EQ(live.finalize().to_json(), offline.finalize().to_json());
}

// Same equivalence over the hijack timeline (port flaps, host events).
TEST(AnomalyFeaturization, HijackTraceReplayMatchesLiveTraining) {
  ids::ProfileTrainer live;
  obs::Observability obs;

  HijackConfig hijack;
  hijack.suite = DefenseSuite::None;
  hijack.seed = 42;
  hijack.attack_enabled = false;
  hijack.check_invariants = false;
  hijack.anomaly_trainer = &live;
  hijack.obs = &obs;
  (void)scenario::run_hijack(hijack);

  ids::ProfileTrainer offline;
  std::string error;
  ASSERT_TRUE(offline.add_trace_jsonl(obs.trace().to_jsonl(), &error))
      << error;

  EXPECT_GT(live.events(), 0u);
  EXPECT_EQ(live.events(), offline.events());
  EXPECT_EQ(live.finalize().to_json(), offline.finalize().to_json());
}

TEST(AnomalyFeaturization, MalformedTraceRejected) {
  ids::ProfileTrainer trainer;
  std::string error;
  EXPECT_FALSE(trainer.add_trace_jsonl("{not json\n", &error));
  EXPECT_FALSE(error.empty());
}

// Controller-consumed Packet-Ins never reach the anomaly slot, so the
// offline featurizer must filter them too (behavior_profile.hpp).
TEST(AnomalyFeaturization, ControllerConsumedPacketInsFiltered) {
  // ARP who-has for the controller's identity IP: consumed at slot 0.
  EXPECT_FALSE(ids::featurize_ctrl_instant(
                   "PACKET_IN",
                   "ARP who-has 10.0.0.1(02:00:00:00:00:01) -> 10.255.255.254",
                   "0x1:2")
                   .has_value());
  // Probe replies addressed to the controller: consumed at slot 0.
  EXPECT_FALSE(
      ids::featurize_ctrl_instant(
          "PACKET_IN", "ICMP echo-rep id=7 seq=3 10.0.0.1 -> 10.255.255.254",
          "0x1:2")
          .has_value());
  // A normal host-bound ARP is featurized.
  const auto arp = ids::featurize_ctrl_instant(
      "PACKET_IN", "ARP who-has 10.0.0.1(02:00:00:00:00:01) -> 10.0.0.2",
      "0x1:2");
  ASSERT_TRUE(arp.has_value());
  EXPECT_EQ(arp->symbol, ids::Symbol::PktArp);
  ASSERT_EQ(arp->port_count, 1u);
  EXPECT_EQ(ids::port_key_to_string(arp->ports[0]), "0x1:2");
}

TEST(AnomalyFeaturization, LinkRemovedAttributedToBothEndpoints) {
  const auto fi = ids::featurize_ctrl_instant("LINK_REMOVED",
                                              "0x1:10<->0x2:11", "0x1:10");
  ASSERT_TRUE(fi.has_value());
  EXPECT_EQ(fi->symbol, ids::Symbol::LinkRemoved);
  ASSERT_EQ(fi->port_count, 2u);
  EXPECT_EQ(ids::port_key_to_string(fi->ports[0]), "0x1:10");
  EXPECT_EQ(ids::port_key_to_string(fi->ports[1]), "0x2:11");
}

// ---------------- profile serialization ----------------

TEST(AnomalyProfile, JsonRoundTripIsByteIdentical) {
  const ids::BehaviorProfile trained =
      train_baseline(ctrl::floodlight_profile(), 1);
  ASSERT_GT(trained.events, 0u);
  ASSERT_FALSE(trained.ports.empty());

  const std::string first = trained.to_json();
  std::string error;
  const auto reparsed = ids::BehaviorProfile::from_json(first, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->to_json(), first);
  EXPECT_EQ(reparsed->trials, trained.trials);
  EXPECT_EQ(reparsed->events, trained.events);
  EXPECT_EQ(reparsed->ports.size(), trained.ports.size());
  EXPECT_EQ(reparsed->durations.size(), trained.durations.size());
}

TEST(AnomalyProfile, FromJsonRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(ids::BehaviorProfile::from_json("[]", &error).has_value());
  EXPECT_FALSE(
      ids::BehaviorProfile::from_json("{\"format\":\"nope\"}", &error)
          .has_value());
}

// Training is deterministic: the same trials in the same order yield a
// byte-identical serialization (the tools/train_profile guarantee).
TEST(AnomalyProfile, TrainingIsDeterministic) {
  const auto a = train_baseline(ctrl::floodlight_profile(), 1);
  const auto b = train_baseline(ctrl::floodlight_profile(), 1);
  EXPECT_EQ(a.to_json(), b.to_json());
}

// ---------------- scoring: clean runs stay silent ----------------

// Zero false alerts on clean re-runs under every controller profile
// (the Table IV acceptance row for the learned detector).
TEST(AnomalyScoring, CleanRunsRaiseNoAlerts) {
  for (const auto& profile : ctrl::all_profiles()) {
    const ids::BehaviorProfile baseline = train_baseline(profile, 2);
    ASSERT_GT(baseline.events, 0u) << profile.name;

    LinkAttackConfig link;
    link.kind = LinkAttackKind::ClassicRelay;
    link.suite = DefenseSuite::None;
    link.seed = TrialRunner::trial_seed(42, 0);
    link.attack_enabled = false;
    link.check_invariants = false;
    link.profile = profile;
    link.anomaly_profile = &baseline;
    const auto clean_link = scenario::run_link_attack(link);
    EXPECT_EQ(clean_link.alerts_anomaly, 0u) << profile.name;
    EXPECT_GT(clean_link.anomaly.scored, 0u) << profile.name;

    HijackConfig hijack;
    hijack.suite = DefenseSuite::None;
    hijack.seed = TrialRunner::trial_seed(42, 0);
    hijack.attack_enabled = false;
    hijack.check_invariants = false;
    hijack.profile = profile;
    hijack.anomaly_profile = &baseline;
    const auto clean_hijack = scenario::run_hijack(hijack);
    EXPECT_EQ(clean_hijack.alerts_anomaly, 0u) << profile.name;
    EXPECT_GT(clean_hijack.anomaly.scored, 0u) << profile.name;
  }
}

// Unseen training seeds must not trip the detector either (the profile
// generalizes across seeds, not just replays).
TEST(AnomalyScoring, UnseenSeedStaysSilent) {
  const ids::BehaviorProfile baseline =
      train_baseline(ctrl::floodlight_profile(), 2);
  LinkAttackConfig link;
  link.kind = LinkAttackKind::ClassicRelay;
  link.suite = DefenseSuite::None;
  link.seed = 0xdecafbad;
  link.attack_enabled = false;
  link.check_invariants = false;
  link.anomaly_profile = &baseline;
  const auto out = scenario::run_link_attack(link);
  EXPECT_EQ(out.alerts_anomaly, 0u);
}

// ---------------- scoring: attacks deviate ----------------

// Port Amnesia (paper Sec. IV-C): the hand-written defenses' blind spot
// rows. The learned detector must flag the out-of-band variant.
TEST(AnomalyScoring, OobAmnesiaDetected) {
  const ids::BehaviorProfile baseline =
      train_baseline(ctrl::floodlight_profile(), 2);
  LinkAttackConfig link;
  link.kind = LinkAttackKind::OobAmnesia;
  link.suite = DefenseSuite::None;
  link.seed = TrialRunner::trial_seed(42, 0);
  link.check_invariants = false;
  link.anomaly_profile = &baseline;
  const auto out = scenario::run_link_attack(link);
  EXPECT_GT(out.alerts_anomaly, 0u);
  EXPECT_GT(out.anomaly.deviations(), 0u);
}

// Flow-rule relay (paper Sec. VI): invisible to TopoGuard — the relay
// bridges genuine LLDP, so the learned LLDP-source sets are the signal.
TEST(AnomalyScoring, FlowRuleRelayDetected) {
  const ids::BehaviorProfile baseline =
      train_baseline(ctrl::floodlight_profile(), 2);
  LinkAttackConfig link;
  link.kind = LinkAttackKind::FlowRuleRelay;
  link.suite = DefenseSuite::None;
  link.seed = TrialRunner::trial_seed(42, 0);
  link.check_invariants = false;
  link.anomaly_profile = &baseline;
  const auto out = scenario::run_link_attack(link);
  EXPECT_GT(out.alerts_anomaly, 0u);
  EXPECT_GT(out.anomaly.lldp_src_violation, 0u);
}

TEST(AnomalyScoring, HostHijackDeviates) {
  const ids::BehaviorProfile baseline =
      train_baseline(ctrl::floodlight_profile(), 2);
  HijackConfig hijack;
  hijack.suite = DefenseSuite::None;
  hijack.seed = TrialRunner::trial_seed(42, 0);
  hijack.check_invariants = false;
  hijack.anomaly_profile = &baseline;
  const auto out = scenario::run_hijack(hijack);
  EXPECT_GT(out.alerts_anomaly, 0u);
  EXPECT_GT(out.anomaly.deviations(), 0u);
}

// ---------------- observability wiring ----------------

// With obs attached, scoring emits ids.anomaly.* metrics and ANOMALY_*
// instants; scoring results are identical with and without obs.
TEST(AnomalyScoring, ObservabilityMirrorsCounters) {
  const ids::BehaviorProfile baseline =
      train_baseline(ctrl::floodlight_profile(), 2);

  LinkAttackConfig link;
  link.kind = LinkAttackKind::OobAmnesia;
  link.suite = DefenseSuite::None;
  link.seed = TrialRunner::trial_seed(42, 0);
  link.check_invariants = false;
  link.anomaly_profile = &baseline;
  const auto unobserved = scenario::run_link_attack(link);

  obs::Observability obs;
  link.obs = &obs;
  const auto observed = scenario::run_link_attack(link);

  EXPECT_EQ(observed.alerts_anomaly, unobserved.alerts_anomaly);
  EXPECT_EQ(observed.anomaly.scored, unobserved.anomaly.scored);
  EXPECT_EQ(observed.anomaly.deviations(), unobserved.anomaly.deviations());

  const std::string metrics = obs.metrics_json(obs.final_time());
  EXPECT_NE(metrics.find("ids.anomaly.scored"), std::string::npos);
  EXPECT_NE(metrics.find("ids.anomaly.alerts"), std::string::npos);

  const std::string trace = obs.trace().to_jsonl();
  EXPECT_NE(trace.find("\"cat\":\"ids\""), std::string::npos);
  EXPECT_NE(trace.find("ANOMALY_"), std::string::npos);
}

}  // namespace
}  // namespace tmg
