// Tests for the SPHINX surrogate: identifier-binding conflicts, flow
// graphs from trusted Flow-Mods, counter-consistency, waypoint checks.
#include <gtest/gtest.h>

#include "ctrl/host_tracker.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/testbed.hpp"

namespace tmg::defense {
namespace {

using namespace tmg::sim::literals;
using ctrl::AlertType;
using scenario::Testbed;
using scenario::TestbedOptions;

struct SphinxNet {
  Testbed tb;
  attack::Host* h1;
  attack::Host* h2;
  of::DataLink* wire;
  Sphinx* sphinx;

  explicit SphinxNet(SphinxConfig cfg = {}) : tb{TestbedOptions{}} {
    tb.add_switch(0x1);
    tb.add_switch(0x2);
    wire = &tb.connect_switches(0x1, 10, 0x2, 10);
    attack::HostConfig c1;
    c1.mac = net::MacAddress::host(1);
    c1.ip = net::Ipv4Address::host(1);
    h1 = &tb.add_host(0x1, 1, c1);
    attack::HostConfig c2;
    c2.mac = net::MacAddress::host(2);
    c2.ip = net::Ipv4Address::host(2);
    h2 = &tb.add_host(0x2, 1, c2);
    sphinx = &install_sphinx(tb.controller(), cfg);
  }
};

// ---------------- Identifier binding ----------------

TEST(SphinxBinding, ConflictWhenBothLocationsLive) {
  SphinxNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  // h2 spoofs h1's MAC while h1's binding is fresh (< conflict window).
  net.h1->send_arp_request(net.h2->ip());  // refresh h1's liveness
  net.h2->send(net::make_raw(net.h1->mac(), net.h1->ip(), net.h2->mac(),
                             net.h2->ip(), "spoof", 64));
  net.tb.run_for(200_ms);
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::SphinxIdentifierConflict));
  EXPECT_GE(net.sphinx->conflicts_detected(), 1u);
}

TEST(SphinxBinding, QuiescentMoveRaisesNothing) {
  // The race the Port Probing attack wins: the old location has been
  // silent longer than the conflict window, so the re-binding looks
  // like an ordinary move.
  SphinxNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  net.h1->set_interface(false);  // victim silent/offline
  net.tb.run_for(2_s);           // > conflict window (1s)
  const auto before = net.tb.controller().alerts().count();
  net.h2->send(net::make_raw(net.h1->mac(), net.h1->ip(), net.h2->mac(),
                             net.h2->ip(), "hijack", 64));
  net.tb.run_for(200_ms);
  EXPECT_EQ(net.tb.controller().alerts().count(), before);
}

TEST(SphinxBinding, OscillationAfterVictimRejoins) {
  SphinxNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(100_ms);
  net.h1->set_interface(false);
  net.tb.run_for(2_s);
  // Attacker claims the identity and keeps it fresh.
  net.h2->send(net::make_raw(net.h1->mac(), net.h1->ip(), net.h2->mac(),
                             net.h2->ip(), "hijack", 64));
  net.tb.run_for(200_ms);
  // Victim comes back and talks: two live locations for one MAC.
  net.h1->set_interface(true);
  net.h2->send(net::make_raw(net.h1->mac(), net.h1->ip(), net.h2->mac(),
                             net.h2->ip(), "persist", 64));
  net.tb.run_for(50_ms);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(200_ms);
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::SphinxIdentifierConflict));
}

TEST(SphinxBinding, BlockModeVetoes) {
  SphinxConfig cfg;
  cfg.block = true;
  SphinxNet net{cfg};
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(50_ms);
  net.h1->send_arp_request(net.h2->ip());  // keep binding hot
  net.h2->send(net::make_raw(net.h1->mac(), net.h1->ip(), net.h2->mac(),
                             net.h2->ip(), "spoof", 64));
  net.tb.run_for(200_ms);
  const auto rec = net.tb.controller().host_tracker().find(net.h1->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x1, 1}));
}

// ---------------- Flow graphs & counters (direct hook feeding) ----------

struct SphinxHarness {
  Testbed tb{TestbedOptions{}};
  Sphinx sphinx{tb.controller(), SphinxConfig{}};

  SphinxHarness() { tb.add_switch(0x1); }

  static of::FlowMod output_mod(net::MacAddress dst, of::PortNo port) {
    of::FlowMod fm;
    fm.match.dst_mac = dst;
    fm.action = of::FlowAction::output(port);
    return fm;
  }

  static of::FlowStatsReply stats(of::Dpid dpid, net::MacAddress dst,
                                  std::uint64_t bytes) {
    of::FlowStatsReply r;
    r.dpid = dpid;
    of::FlowStatsEntry e;
    e.match.dst_mac = dst;
    e.byte_count = bytes;
    r.entries.push_back(e);
    return r;
  }
};

TEST(SphinxCounters, ConsistentCountersRaiseNothing) {
  SphinxHarness h;
  const auto dst = net::MacAddress::host(9);
  h.sphinx.on_flow_mod(0x1, SphinxHarness::output_mod(dst, 2));
  h.sphinx.on_flow_mod(0x2, SphinxHarness::output_mod(dst, 3));
  h.sphinx.on_flow_stats(SphinxHarness::stats(0x1, dst, 100'000));
  h.sphinx.on_flow_stats(SphinxHarness::stats(0x2, dst, 98'000));
  EXPECT_FALSE(
      h.tb.controller().alerts().any(AlertType::SphinxFlowInconsistency));
}

TEST(SphinxCounters, BlackholeDivergenceAlerts) {
  SphinxHarness h;
  const auto dst = net::MacAddress::host(9);
  h.sphinx.on_flow_mod(0x1, SphinxHarness::output_mod(dst, 2));
  h.sphinx.on_flow_mod(0x2, SphinxHarness::output_mod(dst, 3));
  h.sphinx.on_flow_stats(SphinxHarness::stats(0x1, dst, 500'000));
  h.sphinx.on_flow_stats(SphinxHarness::stats(0x2, dst, 10'000));
  EXPECT_TRUE(
      h.tb.controller().alerts().any(AlertType::SphinxFlowInconsistency));
}

TEST(SphinxCounters, SmallFlowsWithinSlackIgnored) {
  SphinxHarness h;
  const auto dst = net::MacAddress::host(9);
  h.sphinx.on_flow_mod(0x1, SphinxHarness::output_mod(dst, 2));
  h.sphinx.on_flow_mod(0x2, SphinxHarness::output_mod(dst, 3));
  // A couple of in-flight MTUs of skew on a tiny flow: not anomalous.
  h.sphinx.on_flow_stats(SphinxHarness::stats(0x1, dst, 4'000));
  h.sphinx.on_flow_stats(SphinxHarness::stats(0x2, dst, 0));
  EXPECT_FALSE(
      h.tb.controller().alerts().any(AlertType::SphinxFlowInconsistency));
}

TEST(SphinxCounters, SingleWaypointNeverChecked) {
  SphinxHarness h;
  const auto dst = net::MacAddress::host(9);
  h.sphinx.on_flow_mod(0x1, SphinxHarness::output_mod(dst, 2));
  h.sphinx.on_flow_stats(SphinxHarness::stats(0x1, dst, 1'000'000));
  EXPECT_FALSE(
      h.tb.controller().alerts().any(AlertType::SphinxFlowInconsistency));
}

TEST(SphinxCounters, DeleteClearsFlowGraph) {
  SphinxHarness h;
  const auto dst = net::MacAddress::host(9);
  h.sphinx.on_flow_mod(0x1, SphinxHarness::output_mod(dst, 2));
  h.sphinx.on_flow_mod(0x2, SphinxHarness::output_mod(dst, 3));
  of::FlowMod del;
  del.command = of::FlowMod::Command::DeleteMatching;
  del.match.dst_mac = dst;
  h.sphinx.on_flow_mod(0x1, del);
  h.sphinx.on_flow_stats(SphinxHarness::stats(0x1, dst, 500'000));
  h.sphinx.on_flow_stats(SphinxHarness::stats(0x2, dst, 0));
  EXPECT_FALSE(
      h.tb.controller().alerts().any(AlertType::SphinxFlowInconsistency));
}

TEST(SphinxCounters, FlowModsWithoutDstMacIgnored) {
  SphinxHarness h;
  of::FlowMod fm;  // wildcard match
  fm.action = of::FlowAction::output(1);
  h.sphinx.on_flow_mod(0x1, fm);  // must not crash or create graphs
  of::FlowStatsReply r;
  r.dpid = 0x1;
  h.sphinx.on_flow_stats(r);
  EXPECT_EQ(h.tb.controller().alerts().count(), 0u);
}

// ---------------- Waypoint deviation ----------------

TEST(SphinxWaypoints, OffPathTransitPacketAlerts) {
  SphinxNet net;
  net.tb.start(1_s);  // discovers the inter-switch link
  const auto dst = net.h2->mac();
  // Declared path: only switch 0x1 forwards to dst.
  net.sphinx->on_flow_mod(0x1, SphinxHarness::output_mod(dst, 10));
  // A packet for dst surfaces at switch 0x2's *switch-internal* port,
  // which is not a declared waypoint.
  of::PacketIn pi;
  pi.dpid = 0x2;
  pi.in_port = 10;
  pi.packet = net::make_raw(net.h1->mac(), net.h1->ip(), dst, net.h2->ip(),
                            "transit", 64);
  (void)net.sphinx->on_packet_in(pi);
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::SphinxWaypointChange));
}

TEST(SphinxWaypoints, OnPathPacketSilent) {
  SphinxNet net;
  net.tb.start(1_s);
  const auto dst = net.h2->mac();
  net.sphinx->on_flow_mod(0x2, SphinxHarness::output_mod(dst, 1));
  of::PacketIn pi;
  pi.dpid = 0x2;
  pi.in_port = 10;
  pi.packet = net::make_raw(net.h1->mac(), net.h1->ip(), dst, net.h2->ip(),
                            "transit", 64);
  (void)net.sphinx->on_packet_in(pi);
  EXPECT_FALSE(
      net.tb.controller().alerts().any(AlertType::SphinxWaypointChange));
}

// ---------------- Link symmetry (port-counter extension) ----------------

TEST(SphinxSymmetry, HealthyLinkStaysQuiet) {
  SphinxConfig cfg;
  cfg.check_link_symmetry = true;
  SphinxNet net{cfg};
  net.tb.start(2_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  // Sustained bulk traffic across the (lossless) inter-switch link.
  for (int i = 0; i < 40; ++i) {
    net.h1->send_raw(net.h2->mac(), net.h2->ip(), "bulk", 1400);
    net.tb.run_for(250_ms);
  }
  EXPECT_FALSE(
      net.tb.controller().alerts().any(AlertType::SphinxLinkAsymmetry));
}

TEST(SphinxSymmetry, LossyLinkDetected) {
  SphinxConfig cfg;
  cfg.check_link_symmetry = true;
  SphinxNet net{cfg};
  net.tb.start(2_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  net.tb.run_for(500_ms);
  // Inject silent in-transit loss of bulk payloads on the inter-switch
  // wire (LLDP still passes, so the link stays "up").
  net.wire->set_drop_filter([](const net::Packet& pkt) {
    const auto* raw = pkt.raw();
    return raw != nullptr && raw->label == "bulk";
  });
  for (int i = 0; i < 40; ++i) {
    net.h1->send_raw(net.h2->mac(), net.h2->ip(), "bulk", 1400);
    net.tb.run_for(250_ms);
  }
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::SphinxLinkAsymmetry));
}

TEST(SphinxSymmetry, DisabledByDefault) {
  SphinxConfig cfg;
  EXPECT_FALSE(cfg.check_link_symmetry);
}

TEST(SphinxTrust, NewLinksAreTrusted) {
  // SPHINX raises nothing for a brand-new (even fabricated) link — the
  // property the paper's Sec. V-A observes.
  SphinxNet net;
  net.tb.start(1_s);
  const auto before = net.tb.controller().alerts().count();
  net.h1->send(net::make_lldp_frame(net::MacAddress::lldp_multicast(),
                                    net::LldpPacket{0x2, 1}));
  net.tb.run_for(200_ms);
  EXPECT_TRUE(net.tb.controller().topology().has_link(
      of::Location{0x2, 1}, of::Location{0x1, 1}));
  EXPECT_EQ(net.tb.controller().alerts().count(), before);
}

}  // namespace
}  // namespace tmg::defense
