// Unit tests for the crypto substrate: SHA-256, HMAC-SHA256, XTEA-CTR.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/xtea.hpp"

namespace tmg::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// ---------------- SHA-256 (FIPS 180-4 vectors) ----------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(Sha256::hash(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  Sha256 ctx;
  for (std::size_t i = 0; i < data.size(); ++i) {
    ctx.update({data.data() + i, 1});
  }
  EXPECT_EQ(ctx.finish(), Sha256::hash(data));
}

TEST(Sha256, IncrementalOddChunks) {
  std::vector<std::uint8_t> data(517);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  Sha256 ctx;
  std::size_t off = 0;
  const std::size_t chunks[] = {1, 63, 64, 65, 100, 224};
  for (std::size_t c : chunks) {
    ctx.update({data.data() + off, c});
    off += c;
  }
  ASSERT_EQ(off, data.size());
  EXPECT_EQ(ctx.finish(), Sha256::hash(data));
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 ctx;
  ctx.update(bytes_of("junk"));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(bytes_of("abc"));
  EXPECT_EQ(to_hex(ctx.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, ExactBlockBoundary) {
  const std::vector<std::uint8_t> block(64, 0x5a);
  // 64-byte input exercises the padding-into-second-block path.
  Sha256 a;
  a.update(block);
  EXPECT_EQ(a.finish(), Sha256::hash(block));
}

// ---------------- HMAC-SHA256 (RFC 4231 vectors) ----------------

TEST(Hmac, Rfc4231Case1) {
  Key key{std::vector<std::uint8_t>(20, 0x0b)};
  const auto mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  Key key{bytes_of("Jefe")};
  const auto mac = hmac_sha256(key, bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3LongKeyData) {
  Key key{std::vector<std::uint8_t>(20, 0xaa)};
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, KeyLongerThanBlockIsHashed) {
  Key key{std::vector<std::uint8_t>(131, 0xaa)};
  const auto mac = hmac_sha256(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDisagree) {
  const auto data = bytes_of("payload");
  const auto a = hmac_sha256(Key::derive(bytes_of("k1")), data);
  const auto b = hmac_sha256(Key::derive(bytes_of("k2")), data);
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Hmac, DigestEqualDetectsSingleBitFlip) {
  auto a = hmac_sha256(Key::derive(bytes_of("k")), bytes_of("m"));
  auto b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 0x01;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Hmac, TruncatedMacIsPrefix) {
  const Key key = Key::derive(bytes_of("k"));
  const auto data = bytes_of("m");
  const auto full = hmac_sha256(key, data);
  const auto trunc = truncated_mac(key, data, 16);
  ASSERT_EQ(trunc.size(), 16u);
  EXPECT_TRUE(std::equal(trunc.begin(), trunc.end(), full.begin()));
}

TEST(Hmac, KeyDeriveDeterministic) {
  EXPECT_EQ(Key::derive(bytes_of("seed")).bytes,
            Key::derive(bytes_of("seed")).bytes);
  EXPECT_NE(Key::derive(bytes_of("seed")).bytes,
            Key::derive(bytes_of("seeds")).bytes);
}

// ---------------- XTEA ----------------

TEST(Xtea, BlockRoundTrip) {
  const XteaKey key = XteaKey::derive(bytes_of("xtea-key"));
  const std::uint64_t pt = 0x0123456789abcdefULL;
  const std::uint64_t ct = xtea_encrypt_block(key, pt);
  EXPECT_NE(ct, pt);
  EXPECT_EQ(xtea_decrypt_block(key, ct), pt);
}

TEST(Xtea, KnownVector) {
  // Published XTEA test vector: key = 000102...0f, pt = 4142434445464748.
  XteaKey key;
  key.words = {0x00010203, 0x04050607, 0x08090a0b, 0x0c0d0e0f};
  EXPECT_EQ(xtea_encrypt_block(key, 0x4142434445464748ULL),
            0x497df3d072612cb5ULL);
}

TEST(Xtea, KnownVectorZeroKey) {
  XteaKey key;
  key.words = {0, 0, 0, 0};
  EXPECT_EQ(xtea_encrypt_block(key, 0x4142434445464748ULL),
            0xa0390589f8b8efa5ULL);
}

TEST(Xtea, CtrRoundTrip) {
  const XteaKey key = XteaKey::derive(bytes_of("ctr"));
  std::vector<std::uint8_t> data = bytes_of("hello, link latency inspector!");
  const auto original = data;
  xtea_ctr_apply(key, 42, data);
  EXPECT_NE(data, original);
  xtea_ctr_apply(key, 42, data);
  EXPECT_EQ(data, original);
}

TEST(Xtea, CtrDifferentNoncesDiffer) {
  const XteaKey key = XteaKey::derive(bytes_of("ctr"));
  std::vector<std::uint8_t> a = bytes_of("same plaintext bytes");
  std::vector<std::uint8_t> b = a;
  xtea_ctr_apply(key, 1, a);
  xtea_ctr_apply(key, 2, b);
  EXPECT_NE(a, b);
}

TEST(Xtea, SealOpenRoundTrip) {
  const XteaKey key = XteaKey::derive(bytes_of("ts"));
  const std::uint64_t value = 1234567890123456789ULL;
  const auto sealed = seal_u64(key, 99, value);
  ASSERT_EQ(sealed.size(), 8u);
  std::uint64_t out = 0;
  ASSERT_TRUE(open_u64(key, 99, sealed, out));
  EXPECT_EQ(out, value);
}

TEST(Xtea, OpenWrongNonceGarbles) {
  const XteaKey key = XteaKey::derive(bytes_of("ts"));
  const auto sealed = seal_u64(key, 1, 42);
  std::uint64_t out = 0;
  ASSERT_TRUE(open_u64(key, 2, sealed, out));
  EXPECT_NE(out, 42u);
}

TEST(Xtea, OpenWrongSizeFails) {
  const XteaKey key = XteaKey::derive(bytes_of("ts"));
  std::uint64_t out = 0;
  const std::vector<std::uint8_t> short_buf(7, 0);
  EXPECT_FALSE(open_u64(key, 1, short_buf, out));
}

TEST(Xtea, DeriveDeterministic) {
  EXPECT_EQ(XteaKey::derive(bytes_of("a")).words,
            XteaKey::derive(bytes_of("a")).words);
  EXPECT_NE(XteaKey::derive(bytes_of("a")).words,
            XteaKey::derive(bytes_of("b")).words);
}

}  // namespace
}  // namespace tmg::crypto
