// Tests for the secure identifier binding defense (paper Sec. VI-A):
// 802.1x-style credentials cryptographically bound to MAC/IP, the
// prescribed countermeasure against Port Probing.
#include <gtest/gtest.h>

#include "ctrl/host_tracker.hpp"
#include "defense/secure_binding.hpp"
#include "scenario/experiments.hpp"
#include "scenario/testbed.hpp"

namespace tmg::defense {
namespace {

using namespace tmg::sim::literals;
using ctrl::AlertType;
using scenario::Testbed;
using scenario::TestbedOptions;

struct SbNet {
  Testbed tb{TestbedOptions{}};
  attack::Host* alice;     // enrolled, token 0xA
  attack::Host* mallory;   // enrolled as itself, token 0xB
  attack::Host* ghost;     // NOT enrolled (no credential)
  of::DataLink* spare;     // empty access port (0x1, 4)
  SecureBinding* sb;

  SbNet() {
    tb.add_switch(0x1);
    attack::HostConfig a;
    a.mac = net::MacAddress::host(1);
    a.ip = net::Ipv4Address::host(1);
    a.auth_token = 0xA;
    alice = &tb.add_host(0x1, 1, a);
    attack::HostConfig m;
    m.mac = net::MacAddress::host(2);
    m.ip = net::Ipv4Address::host(2);
    m.auth_token = 0xB;
    mallory = &tb.add_host(0x1, 2, m);
    attack::HostConfig g;
    g.mac = net::MacAddress::host(3);
    g.ip = net::Ipv4Address::host(3);
    g.auth_token = 0;  // supplicant disabled
    ghost = &tb.add_host(0x1, 3, g);
    spare = &tb.add_access_link(0x1, 4);

    SecureBindingConfig cfg;
    cfg.registry[0xA] = Enrollment{"alice", a.mac, a.ip};
    cfg.registry[0xB] = Enrollment{"mallory", m.mac, m.ip};
    sb = &install_secure_binding(tb.controller(), cfg);
  }

  [[nodiscard]] std::optional<of::Location> loc_of(net::MacAddress mac) {
    const auto rec = tb.controller().host_tracker().find(mac);
    if (!rec) return std::nullopt;
    return rec->loc;
  }
};

TEST(SecureBinding, EnrolledHostBindsNormally) {
  SbNet net;
  net.tb.start(1_s);
  net.alice->send_arp_request(net.mallory->ip());
  net.tb.run_for(200_ms);
  EXPECT_EQ(net.loc_of(net.alice->mac()), (of::Location{0x1, 1}));
  EXPECT_GE(net.sb->auth_successes(), 2u);  // alice + mallory supplicants
  EXPECT_EQ(net.sb->bindings_blocked(), 0u);
}

TEST(SecureBinding, AuthenticatedDeviceLookup) {
  SbNet net;
  net.tb.start(1_s);
  const Enrollment* dev = net.sb->authenticated_device(of::Location{0x1, 1});
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(dev->device_name, "alice");
  EXPECT_EQ(net.sb->authenticated_device(of::Location{0x1, 4}), nullptr);
}

TEST(SecureBinding, UnenrolledHostCannotBind) {
  SbNet net;
  net.tb.start(1_s);
  net.ghost->send_arp_request(net.alice->ip());
  net.tb.run_for(200_ms);
  EXPECT_FALSE(net.loc_of(net.ghost->mac()).has_value());
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::SecureBindingViolation));
  EXPECT_GE(net.sb->bindings_blocked(), 1u);
}

TEST(SecureBinding, SpoofedIdentifiersBlocked) {
  // Mallory is authenticated — as mallory. Claiming alice's identifiers
  // fails even from an authenticated port.
  SbNet net;
  net.tb.start(1_s);
  net.alice->send_arp_request(net.mallory->ip());
  net.tb.run_for(200_ms);
  net.mallory->send(
      net::make_arp_request(net.alice->mac(), net.alice->ip(),
                            net.alice->ip()));
  net.tb.run_for(200_ms);
  EXPECT_EQ(net.loc_of(net.alice->mac()), (of::Location{0x1, 1}));
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::SecureBindingViolation));
}

TEST(SecureBinding, HijackDuringMigrationBlocked) {
  // The Port Probing race: alice unplugs, mallory immediately claims her
  // identity. The race is won — and the binding still rejected, because
  // mallory's credential doesn't carry alice's identifiers.
  SbNet net;
  net.tb.start(1_s);
  net.alice->send_arp_request(net.mallory->ip());
  net.tb.run_for(200_ms);
  net.alice->detach_link();
  net.tb.run_for(100_ms);
  net.mallory->send(net::make_arp_request(net.alice->mac(), net.alice->ip(),
                                          net.alice->ip()));
  net.tb.run_for(200_ms);
  EXPECT_EQ(net.loc_of(net.alice->mac()), (of::Location{0x1, 1}));
  EXPECT_GE(net.sb->bindings_blocked(), 1u);
}

TEST(SecureBinding, LegitimateMigrationAllowed) {
  // Alice moves to the spare port; her supplicant re-authenticates on
  // link-up and the re-binding is accepted.
  SbNet net;
  net.tb.start(1_s);
  net.alice->send_arp_request(net.mallory->ip());
  net.tb.run_for(200_ms);
  scenario::migrate_host(net.tb, *net.alice, *net.spare, 500_ms);
  net.tb.run_for(600_ms);
  net.alice->send_arp_request(net.mallory->ip());
  net.tb.run_for(200_ms);
  EXPECT_EQ(net.loc_of(net.alice->mac()), (of::Location{0x1, 4}));
  EXPECT_EQ(net.sb->bindings_blocked(), 0u);
}

TEST(SecureBinding, PortDownEndsAuthSession) {
  SbNet net;
  net.tb.start(1_s);
  ASSERT_NE(net.sb->authenticated_device(of::Location{0x1, 1}), nullptr);
  net.alice->detach_link();
  net.tb.run_for(100_ms);  // Port-Down detected
  EXPECT_EQ(net.sb->authenticated_device(of::Location{0x1, 1}), nullptr);
}

TEST(SecureBinding, UnknownCredentialAlerts) {
  SbNet net;
  net.tb.start(1_s);
  // A forged auth frame with a made-up token.
  net.ghost->send(net::make_auth_frame(net.ghost->mac(), net.ghost->ip(),
                                       0xDEADBEEF));
  net.tb.run_for(100_ms);
  EXPECT_GE(net.sb->auth_failures(), 1u);
  EXPECT_TRUE(
      net.tb.controller().alerts().any(AlertType::SecureBindingViolation));
}

TEST(SecureBinding, MonitorOnlyModeAlertsWithoutBlocking) {
  Testbed tb{TestbedOptions{}};
  tb.add_switch(0x1);
  attack::HostConfig g;
  g.mac = net::MacAddress::host(9);
  g.ip = net::Ipv4Address::host(9);
  attack::Host& ghost = tb.add_host(0x1, 1, g);
  SecureBindingConfig cfg;
  cfg.block = false;
  install_secure_binding(tb.controller(), cfg);
  tb.start(1_s);
  ghost.send_arp_request(net::Ipv4Address::host(8));
  tb.run_for(200_ms);
  // Alert raised but the (unenrolled) binding went through.
  EXPECT_TRUE(
      tb.controller().alerts().any(AlertType::SecureBindingViolation));
  EXPECT_TRUE(tb.controller().host_tracker().find(g.mac).has_value());
}

TEST(SecureBinding, AuthFramesAreLinkLocal) {
  // EAPOL must never be forwarded to other hosts.
  SbNet net;
  net.tb.start(1_s);
  for (const auto& pkt : net.mallory->received()) {
    EXPECT_FALSE(pkt.raw() && pkt.raw()->label == net::auth_frame_label());
  }
}

TEST(SecureBinding, FullPortProbingAttackDefeated) {
  // End-to-end: the paper's port probing attack vs. the Sec. VI-A
  // defense, on the Fig. 2 testbed through the standard driver.
  scenario::HijackConfig cfg;
  cfg.suite = scenario::DefenseSuite::SecureBinding;
  cfg.seed = 7;
  const auto out = scenario::run_hijack(cfg);
  EXPECT_FALSE(out.hijack_succeeded);
  EXPECT_FALSE(out.traffic_redirected);
  // The attempt is not silent: the violation is attributable to the
  // attacker's port (unlike the TopoGuard/SPHINX alert ambiguity).
  std::size_t violations = 0;
  for (const auto& a : out.alerts) {
    if (a.type == AlertType::SecureBindingViolation) ++violations;
  }
  EXPECT_GE(violations, 1u);
}

TEST(SecureBinding, HijackStillSucceedsWithoutIt) {
  // Control: same seed, defenses without identifier binding lose.
  scenario::HijackConfig cfg;
  cfg.suite = scenario::DefenseSuite::TopoGuardAndSphinx;
  cfg.seed = 7;
  const auto out = scenario::run_hijack(cfg);
  EXPECT_TRUE(out.hijack_succeeded);
}

}  // namespace
}  // namespace tmg::defense
