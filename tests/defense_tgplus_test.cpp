// Tests for the TOPOGUARD+ modules: Control Message Monitor and Link
// Latency Inspector.
#include <gtest/gtest.h>

#include "defense/topoguard_plus.hpp"
#include "scenario/testbed.hpp"

namespace tmg::defense {
namespace {

using namespace tmg::sim::literals;
using ctrl::AlertType;
using ctrl::LldpObservation;
using ctrl::Verdict;
using scenario::Testbed;
using scenario::TestbedOptions;
using sim::SimTime;

struct Harness {
  Testbed tb{TestbedOptions{}};
  Harness() { tb.add_switch(0x1); }

  static LldpObservation obs(SimTime emitted, SimTime received,
                             double latency_ms = 5.0) {
    LldpObservation o;
    o.src = of::Location{0x1, 1};
    o.dst = of::Location{0x2, 1};
    o.emitted_at = emitted;
    o.received_at = received;
    o.timestamp_present = true;
    o.link_latency = sim::Duration::from_millis_f(latency_ms);
    return o;
  }

  static of::PortStatus down(of::Dpid dpid, of::PortNo port) {
    return of::PortStatus{dpid, port, of::PortStatus::Reason::Down};
  }
  static of::PortStatus up(of::Dpid dpid, of::PortNo port) {
    return of::PortStatus{dpid, port, of::PortStatus::Reason::Up};
  }

  static SimTime t(std::int64_t ms) {
    return SimTime::from_nanos(ms * 1'000'000);
  }
};

// ---------------- CMM ----------------

TEST(Cmm, CleanPropagationAllowed) {
  Harness h;
  Cmm cmm{h.tb.controller()};
  EXPECT_EQ(cmm.on_lldp_observation(Harness::obs(h.t(0), h.t(20))),
            Verdict::Allow);
  EXPECT_EQ(cmm.detections(), 0u);
}

TEST(Cmm, PortDownOnReceiverInWindowBlocks) {
  Harness h;
  Cmm cmm{h.tb.controller()};
  cmm.on_port_status(Harness::down(0x2, 1));  // at t=0
  EXPECT_EQ(cmm.on_lldp_observation(Harness::obs(h.t(0), h.t(20))),
            Verdict::Block);
  EXPECT_EQ(cmm.detections(), 1u);
  EXPECT_TRUE(h.tb.controller().alerts().any(AlertType::CmmControlMessage));
}

TEST(Cmm, PortUpOnSenderInWindowBlocks) {
  Harness h;
  Cmm cmm{h.tb.controller()};
  cmm.on_port_status(Harness::up(0x1, 1));
  EXPECT_EQ(cmm.on_lldp_observation(Harness::obs(h.t(0), h.t(20))),
            Verdict::Block);
}

TEST(Cmm, EventOnUninvolvedPortIgnored) {
  Harness h;
  Cmm cmm{h.tb.controller()};
  cmm.on_port_status(Harness::down(0x3, 7));
  EXPECT_EQ(cmm.on_lldp_observation(Harness::obs(h.t(0), h.t(20))),
            Verdict::Allow);
}

TEST(Cmm, EventBeforeWindowIgnored) {
  // The CMM-evasive out-of-band variant: the flap is prepositioned
  // *between* LLDP rounds, outside every propagation window.
  Harness h;
  Cmm cmm{h.tb.controller()};
  cmm.on_port_status(Harness::down(0x2, 1));
  cmm.on_port_status(Harness::up(0x2, 1));
  // Both events are at t=0; the probe window starts later.
  EXPECT_EQ(cmm.on_lldp_observation(Harness::obs(h.t(100), h.t(140))),
            Verdict::Allow);
  EXPECT_EQ(cmm.detections(), 0u);
}

TEST(Cmm, RetroactiveCheckCoversWholeWindow) {
  // Event strictly inside (not at the edges of) the window.
  Harness h;
  Cmm cmm{h.tb.controller()};
  h.tb.run_for(10_ms);  // controller clock at 10 ms
  cmm.on_port_status(Harness::down(0x2, 1));  // logged at t=10ms
  EXPECT_EQ(cmm.on_lldp_observation(Harness::obs(h.t(5), h.t(25))),
            Verdict::Block);
}

TEST(Cmm, NonBlockingModeAlertsOnly) {
  Harness h;
  CmmConfig cfg;
  cfg.block = false;
  Cmm cmm{h.tb.controller(), cfg};
  cmm.on_port_status(Harness::down(0x2, 1));
  EXPECT_EQ(cmm.on_lldp_observation(Harness::obs(h.t(0), h.t(20))),
            Verdict::Allow);
  EXPECT_EQ(cmm.detections(), 1u);
}

TEST(Cmm, HistoryPruned) {
  Harness h;
  CmmConfig cfg;
  cfg.history = 1_s;
  Cmm cmm{h.tb.controller(), cfg};
  cmm.on_port_status(Harness::down(0x2, 1));  // at t=0
  h.tb.run_for(5_s);
  cmm.on_port_status(Harness::down(0x9, 9));  // triggers pruning
  // The old event is gone; a window that would have covered it at t=0
  // finds nothing. (Windows are never this stale in practice; this
  // guards unbounded memory.)
  EXPECT_EQ(cmm.on_lldp_observation(Harness::obs(h.t(0), h.t(20))),
            Verdict::Allow);
}

// ---------------- LLI ----------------

LliConfig quick_lli() {
  LliConfig cfg;
  cfg.min_samples = 5;
  return cfg;
}

TEST(Lli, WarmupAcceptsEverything) {
  Harness h;
  Lli lli{h.tb.controller(), quick_lli()};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(lli.on_lldp_observation(Harness::obs(h.t(i), h.t(i + 1), 5.0)),
              Verdict::Allow);
  }
  EXPECT_FALSE(lli.threshold_ms().has_value());
}

TEST(Lli, OutlierBlockedAfterWarmup) {
  Harness h;
  Lli lli{h.tb.controller(), quick_lli()};
  for (int i = 0; i < 20; ++i) {
    lli.on_lldp_observation(Harness::obs(h.t(i), h.t(i + 1), 5.0 + 0.01 * i));
  }
  ASSERT_TRUE(lli.threshold_ms().has_value());
  // A relayed link: ~5ms wire + ~11ms wireless hop.
  EXPECT_EQ(lli.on_lldp_observation(Harness::obs(h.t(99), h.t(120), 16.0)),
            Verdict::Block);
  EXPECT_EQ(lli.detections(), 1u);
  EXPECT_TRUE(h.tb.controller().alerts().any(AlertType::LliAbnormalLatency));
}

TEST(Lli, OutlierNotAddedToCalibration) {
  Harness h;
  Lli lli{h.tb.controller(), quick_lli()};
  for (int i = 0; i < 20; ++i) {
    lli.on_lldp_observation(Harness::obs(h.t(i), h.t(i + 1), 5.0 + 0.01 * i));
  }
  const double threshold_before = *lli.threshold_ms();
  lli.on_lldp_observation(Harness::obs(h.t(99), h.t(120), 16.0));
  EXPECT_DOUBLE_EQ(*lli.threshold_ms(), threshold_before);
}

TEST(Lli, NormalSampleAccepted) {
  Harness h;
  Lli lli{h.tb.controller(), quick_lli()};
  for (int i = 0; i < 20; ++i) {
    lli.on_lldp_observation(Harness::obs(h.t(i), h.t(i + 1), 5.0 + 0.01 * i));
  }
  EXPECT_EQ(lli.on_lldp_observation(Harness::obs(h.t(99), h.t(104), 5.1)),
            Verdict::Allow);
  EXPECT_EQ(lli.detections(), 0u);
}

TEST(Lli, MissingTimestampBlocked) {
  Harness h;
  Lli lli{h.tb.controller(), quick_lli()};
  LldpObservation o = Harness::obs(h.t(0), h.t(5));
  o.timestamp_present = false;
  o.link_latency.reset();
  EXPECT_EQ(lli.on_lldp_observation(o), Verdict::Block);
  EXPECT_TRUE(h.tb.controller().alerts().any(AlertType::LliMissingTimestamp));
}

TEST(Lli, MissingTimestampToleratedWhenConfigured) {
  Harness h;
  LliConfig cfg = quick_lli();
  cfg.require_timestamp = false;
  Lli lli{h.tb.controller(), cfg};
  LldpObservation o = Harness::obs(h.t(0), h.t(5));
  o.timestamp_present = false;
  o.link_latency.reset();
  EXPECT_EQ(lli.on_lldp_observation(o), Verdict::Allow);
}

TEST(Lli, MeasurementLogRecordsEverything) {
  Harness h;
  Lli lli{h.tb.controller(), quick_lli()};
  for (int i = 0; i < 10; ++i) {
    lli.on_lldp_observation(Harness::obs(h.t(i), h.t(i + 1), 5.0));
  }
  lli.on_lldp_observation(Harness::obs(h.t(99), h.t(120), 20.0));
  ASSERT_EQ(lli.measurements().size(), 11u);
  EXPECT_FALSE(lli.measurements()[0].flagged);
  EXPECT_TRUE(lli.measurements()[10].flagged);
  EXPECT_DOUBLE_EQ(lli.measurements()[10].latency_ms, 20.0);
  EXPECT_TRUE(lli.measurements()[10].threshold_ms.has_value());
}

TEST(Lli, ThresholdConvergesDespiteEarlyBursts) {
  // Fig. 11's bootstrap shape: startup bursts inflate the threshold,
  // then it converges as the window fills with steady-state samples.
  Harness h;
  LliConfig cfg = quick_lli();
  cfg.window_capacity = 50;
  Lli lli{h.tb.controller(), cfg};
  // Bootstrap: a handful of inflated measurements.
  for (int i = 0; i < 8; ++i) {
    lli.on_lldp_observation(Harness::obs(h.t(i), h.t(i + 30), 25.0 + i));
  }
  const double burst_threshold = lli.threshold_ms().value();
  // Steady state: many 5ms samples displace the bursts.
  for (int i = 0; i < 60; ++i) {
    lli.on_lldp_observation(
        Harness::obs(h.t(100 + i), h.t(105 + i), 5.0 + 0.02 * (i % 7)));
  }
  const double converged = lli.threshold_ms().value();
  EXPECT_LT(converged, burst_threshold);
  EXPECT_LT(converged, 10.0);
}

TEST(Lli, NonBlockingModeAlertsOnly) {
  Harness h;
  LliConfig cfg = quick_lli();
  cfg.block = false;
  Lli lli{h.tb.controller(), cfg};
  for (int i = 0; i < 10; ++i) {
    lli.on_lldp_observation(Harness::obs(h.t(i), h.t(i + 1), 5.0));
  }
  EXPECT_EQ(lli.on_lldp_observation(Harness::obs(h.t(99), h.t(120), 20.0)),
            Verdict::Allow);
  EXPECT_EQ(lli.detections(), 1u);
}

// ---------------- Installer ----------------

TEST(TopoGuardPlusInstaller, WiresAllThreeModules) {
  Testbed tb{[] {
    TestbedOptions o;
    o.controller.authenticate_lldp = true;
    o.controller.lldp_timestamps = true;
    return o;
  }()};
  tb.add_switch(0x1);
  const TopoGuardPlus plus = install_topoguard_plus(tb.controller());
  EXPECT_NE(plus.topoguard, nullptr);
  EXPECT_NE(plus.cmm, nullptr);
  EXPECT_NE(plus.lli, nullptr);
  EXPECT_EQ(plus.topoguard->name(), "TopoGuard");
  EXPECT_EQ(plus.cmm->name(), "CMM");
  EXPECT_EQ(plus.lli->name(), "LLI");
}

}  // namespace
}  // namespace tmg::defense
