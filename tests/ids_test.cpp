// Tests for the Snort-surrogate IDS: the scan-detection landscape of
// paper Table I ("Stealth") and Sec. V-B2.
#include <gtest/gtest.h>

#include "ids/ids.hpp"
#include "sim/event_loop.hpp"

namespace tmg::ids {
namespace {

using namespace tmg::sim::literals;
using sim::Duration;
using sim::EventLoop;

struct Fixture {
  EventLoop loop;
  Ids ids{loop};

  Fixture() { ids.install_default_rules(); }

  void advance(Duration d) { loop.run_until(loop.now() + d); }

  net::Packet syn(std::uint32_t src, std::uint16_t sport,
                  std::size_t data = 0) {
    return net::make_tcp(net::MacAddress::host(src),
                         net::Ipv4Address::host(src),
                         net::MacAddress::host(99), net::Ipv4Address::host(99),
                         sport, 80, net::TcpFlags{.syn = true}, data);
  }

  net::Packet icmp(std::uint32_t src, std::uint16_t seq) {
    return net::make_icmp_echo(net::MacAddress::host(src),
                               net::Ipv4Address::host(src),
                               net::MacAddress::host(99),
                               net::Ipv4Address::host(99), 1, seq);
  }

  net::Packet arp(std::uint32_t src, std::uint32_t target) {
    return net::make_arp_request(net::MacAddress::host(src),
                                 net::Ipv4Address::host(src),
                                 net::Ipv4Address::host(target));
  }
};

// ---------------- TCP SYN scans ----------------

TEST(IdsSyn, SlowScanUndetected) {
  Fixture f;
  // 2 per second is exactly the ET threshold: not "above".
  for (int i = 0; i < 20; ++i) {
    f.ids.observe(f.syn(1, static_cast<std::uint16_t>(1000 + i)));
    f.advance(500_ms);
  }
  EXPECT_EQ(f.ids.alert_count("ET_SCAN_SYN"), 0u);
}

TEST(IdsSyn, FastScanDetected) {
  Fixture f;
  // 5 per second: above the 2/s Proofpoint threshold (Sec. V-B2).
  for (int i = 0; i < 10; ++i) {
    f.ids.observe(f.syn(1, static_cast<std::uint16_t>(1000 + i)));
    f.advance(200_ms);
  }
  EXPECT_GE(f.ids.alert_count("ET_SCAN_SYN"), 1u);
}

TEST(IdsSyn, DecoyDataEvades) {
  // nmap's evasion: SYNs carrying decoy data don't look like zero-data
  // scan flows (paper Sec. IV-B1).
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    f.ids.observe(f.syn(1, static_cast<std::uint16_t>(1000 + i), 32));
    f.advance(100_ms);
  }
  EXPECT_EQ(f.ids.alert_count("ET_SCAN_SYN"), 0u);
}

TEST(IdsSyn, PerSourceTracking) {
  Fixture f;
  // Two sources each below threshold: no alert even though the combined
  // rate exceeds it.
  for (int i = 0; i < 10; ++i) {
    f.ids.observe(f.syn(i % 2 == 0 ? 1 : 2,
                        static_cast<std::uint16_t>(1000 + i)));
    f.advance(300_ms);
  }
  EXPECT_EQ(f.ids.alert_count("ET_SCAN_SYN"), 0u);
}

TEST(IdsSyn, SynAckNotCounted) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    net::Packet p = f.syn(1, static_cast<std::uint16_t>(1000 + i));
    std::get<net::TcpPayload>(p.payload).flags.ack = true;  // handshake reply
    f.ids.observe(p);
    f.advance(100_ms);
  }
  EXPECT_EQ(f.ids.alert_count("ET_SCAN_SYN"), 0u);
}

// ---------------- ICMP sweeps ----------------

TEST(IdsIcmp, FrequentPingsDetected) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    f.ids.observe(f.icmp(1, static_cast<std::uint16_t>(i)));
    f.advance(100_ms);
  }
  EXPECT_GE(f.ids.alert_count("ICMP_SWEEP"), 1u);
}

TEST(IdsIcmp, OccasionalPingsFine) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    f.ids.observe(f.icmp(1, static_cast<std::uint16_t>(i)));
    f.advance(1_s);
  }
  EXPECT_EQ(f.ids.alert_count("ICMP_SWEEP"), 0u);
}

TEST(IdsIcmp, EchoRepliesNotCounted) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    f.ids.observe(net::make_icmp_echo(
        net::MacAddress::host(1), net::Ipv4Address::host(1),
        net::MacAddress::host(99), net::Ipv4Address::host(99), 1,
        static_cast<std::uint16_t>(i), /*reply=*/true));
    f.advance(50_ms);
  }
  EXPECT_EQ(f.ids.alert_count("ICMP_SWEEP"), 0u);
}

// ---------------- ARP ----------------

TEST(IdsArp, TargetedLivenessProbeNeverDetected) {
  // The paper's key finding: ARP pings at the attack rate (20/s, one
  // repeated target) trigger nothing — neither Snort nor Bro has a rule
  // for it.
  Fixture f;
  for (int i = 0; i < 200; ++i) {
    f.ids.observe(f.arp(1, 42));
    f.advance(50_ms);  // paper: 1 probe every 50 ms
  }
  EXPECT_EQ(f.ids.alert_count(), 0u);
}

TEST(IdsArp, DiscoveryFloodDetected) {
  Fixture f;
  for (std::uint32_t t = 0; t < 30; ++t) {
    f.ids.observe(f.arp(1, 100 + t));  // distinct targets: subnet sweep
    f.advance(50_ms);
  }
  EXPECT_GE(f.ids.alert_count("ARP_DISCOVERY"), 1u);
}

TEST(IdsArp, SlowDiscoveryUndetected) {
  Fixture f;
  for (std::uint32_t t = 0; t < 30; ++t) {
    f.ids.observe(f.arp(1, 100 + t));
    f.advance(2_s);  // spread beyond the window
  }
  EXPECT_EQ(f.ids.alert_count("ARP_DISCOVERY"), 0u);
}

TEST(IdsArp, RepliesNotCounted) {
  Fixture f;
  for (int i = 0; i < 50; ++i) {
    f.ids.observe(net::make_arp_reply(
        net::MacAddress::host(1), net::Ipv4Address::host(1),
        net::MacAddress::host(2), net::Ipv4Address::host(2)));
    f.advance(10_ms);
  }
  EXPECT_EQ(f.ids.alert_count(), 0u);
}

// ---------------- Plumbing ----------------

TEST(Ids, CountsInspectedPackets) {
  Fixture f;
  f.ids.observe(f.icmp(1, 1));
  f.ids.observe(f.arp(1, 2));
  EXPECT_EQ(f.ids.packets_inspected(), 2u);
}

TEST(Ids, AlertCountByRule) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    f.ids.observe(f.icmp(1, static_cast<std::uint16_t>(i)));
    f.advance(100_ms);
  }
  EXPECT_EQ(f.ids.alert_count("ET_SCAN_SYN"), 0u);
  EXPECT_EQ(f.ids.alert_count(), f.ids.alert_count("ICMP_SWEEP"));
  f.ids.clear_alerts();
  EXPECT_EQ(f.ids.alert_count(), 0u);
}

TEST(Ids, MonitorTapsLink) {
  EventLoop loop;
  Ids ids{loop};
  ids.install_default_rules();
  of::DataLink link{loop, sim::Rng{1}, sim::make_fixed(1_ms)};
  link.attach(of::Side::A, {{}, {}});
  link.attach(of::Side::B, {[](const net::Packet&) {}, {}});
  ids.monitor(link);
  link.send(of::Side::A,
            net::make_arp_request(net::MacAddress::host(1),
                                  net::Ipv4Address::host(1),
                                  net::Ipv4Address::host(2)));
  loop.run();
  EXPECT_EQ(ids.packets_inspected(), 1u);
}

TEST(Ids, AlertCarriesOffenderAndTime) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    f.ids.observe(f.syn(7, static_cast<std::uint16_t>(i)));
    f.advance(100_ms);
  }
  ASSERT_GE(f.ids.alert_count(), 1u);
  const IdsAlert& a = f.ids.alerts().front();
  EXPECT_EQ(a.offender, net::Ipv4Address::host(7));
  EXPECT_EQ(a.rule, "ET_SCAN_SYN");
  EXPECT_GT(a.time.count_nanos(), 0);
}

}  // namespace
}  // namespace tmg::ids
