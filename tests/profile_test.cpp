// Per-controller pipeline profiles: name resolution, layout plumbing,
// and the behavioral splits the profiles encode — ONOS's
// probe-before-move host migration, OpenDaylight's gate-less
// broadcast-observe dispatch — plus per-profile determinism of the
// experiment drivers (same outcome for any --jobs value and across
// repeated runs).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "../examples/example_util.hpp"
#include "ctrl/host_tracker.hpp"
#include "ctrl/profiles.hpp"
#include "scenario/experiments.hpp"
#include "scenario/testbed.hpp"
#include "scenario/trial_runner.hpp"

namespace tmg::ctrl {
namespace {

using namespace tmg::sim::literals;
using scenario::Testbed;
using scenario::TestbedOptions;

// ---------------- Name resolution ----------------

TEST(ProfileNames, ByNameResolvesEveryCliKey) {
  const auto fl = profile_by_name("floodlight");
  ASSERT_TRUE(fl.has_value());
  EXPECT_EQ(fl->name, "Floodlight");
  const auto pox = profile_by_name("pox");
  ASSERT_TRUE(pox.has_value());
  EXPECT_EQ(pox->name, "POX");
  const auto odl = profile_by_name("opendaylight");
  ASSERT_TRUE(odl.has_value());
  EXPECT_EQ(odl->name, "OpenDaylight");
  const auto onos = profile_by_name("onos");
  ASSERT_TRUE(onos.has_value());
  EXPECT_EQ(onos->name, "ONOS");
}

TEST(ProfileNames, ByNameIsStrict) {
  // Strict matching: no silent default, no fuzzy acceptance. The CLI
  // wrappers turn nullopt into exit 2.
  EXPECT_FALSE(profile_by_name("").has_value());
  EXPECT_FALSE(profile_by_name("Floodlight").has_value());  // case-exact
  EXPECT_FALSE(profile_by_name("odl").has_value());
  EXPECT_FALSE(profile_by_name("flodlight").has_value());
  EXPECT_FALSE(profile_by_name("floodlight ").has_value());
}

TEST(ProfileNames, CliNamesMatchAllProfilesOrder) {
  const auto names = profile_cli_names();
  const auto profiles = all_profiles();
  ASSERT_EQ(names.size(), profiles.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto p = profile_by_name(names[i]);
    ASSERT_TRUE(p.has_value()) << names[i];
    EXPECT_EQ(p->name, profiles[i].name) << names[i];
  }
}

TEST(ProfileNames, ExampleParseProfileValue) {
  // The examples' testable half of --profile=NAME parsing (the _or_die
  // wrapper adds exit 2, same convention as the bench harness).
  const auto ok = examples::parse_profile_value("onos");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->name, "ONOS");
  EXPECT_FALSE(examples::parse_profile_value("neutron").has_value());
  EXPECT_FALSE(examples::parse_profile_value("").has_value());
}

// ---------------- Layout plumbing ----------------

TEST(ProfileLayout, FloodlightLayoutIsTheLegacyChain) {
  // The refactor's byte-identity anchor: the default profile's slot
  // table must equal the constants the pre-profile controller
  // hard-coded (0/100+10N/900/1000/1100/1200).
  const PipelineLayout l = floodlight_profile().layout;
  EXPECT_EQ(l.core, 0);
  EXPECT_EQ(l.defense_base, 100);
  EXPECT_EQ(l.defense_step, 10);
  EXPECT_EQ(l.verdict_gate, 900);
  EXPECT_EQ(l.link_discovery, 1000);
  EXPECT_EQ(l.host_tracking, 1100);
  EXPECT_EQ(l.routing, 1200);
}

TEST(ProfileLayout, OpendaylightCompilesTheGateOut) {
  EXPECT_LT(opendaylight_profile().layout.verdict_gate, 0);
  EXPECT_EQ(opendaylight_profile().discipline,
            DispatchDiscipline::BroadcastObserve);
  // Everyone else keeps the ordered-stop chain with the gate present.
  for (const auto& p :
       {floodlight_profile(), pox_profile(), onos_profile()}) {
    EXPECT_GE(p.layout.verdict_gate, 0) << p.name;
    EXPECT_EQ(p.discipline, DispatchDiscipline::OrderedStop) << p.name;
  }
}

TEST(ProfileLayout, ControllerChainFollowsTheProfile) {
  for (const auto& key : profile_cli_names()) {
    TestbedOptions opts;
    opts.controller.profile = *profile_by_name(key);
    Testbed tb{opts};
    tb.add_switch(0x1);
    bool saw_gate = false;
    for (const auto& s : tb.controller().pipeline_stats()) {
      if (s.name == "verdict-gate") saw_gate = true;
    }
    EXPECT_EQ(saw_gate, key != "opendaylight") << key;
  }
}

// ---------------- Host-migration policy ----------------

struct MigrationNet {
  Testbed tb;
  attack::Host* victim;
  attack::Host* spoofer;

  explicit MigrationNet(TestbedOptions opts = {}) : tb{std::move(opts)} {
    tb.add_switch(0x1);
    tb.add_switch(0x2);
    tb.connect_switches(0x1, 10, 0x2, 10);
    attack::HostConfig c1;
    c1.mac = net::MacAddress::host(1);
    c1.ip = net::Ipv4Address::host(1);
    victim = &tb.add_host(0x1, 1, c1);
    attack::HostConfig c2;
    c2.mac = net::MacAddress::host(2);
    c2.ip = net::Ipv4Address::host(2);
    spoofer = &tb.add_host(0x2, 1, c2);
  }

  /// Claim the victim's identity from the spoofer's port while the
  /// victim is still plugged in — the naive hijack variant ONOS's
  /// probe-before-move is built to reject.
  void spoof() {
    spoofer->send(net::make_raw(victim->mac(), victim->ip(), spoofer->mac(),
                                spoofer->ip(), "spoof", 64));
    // Covers the ONOS 300 ms probe round-trip with margin.
    tb.run_for(1_s);
  }

  /// Learn the victim at (0x1, 1), then spoof.
  void learn_then_spoof() {
    tb.start(1_s);
    victim->send_arp_request(spoofer->ip());
    tb.run_for(200_ms);
    spoof();
  }
};

TEST(MigrationPolicy, FloodlightRebindsOnFirstSighting) {
  MigrationNet net;  // default profile: MigrationPolicy::Immediate
  net.learn_then_spoof();
  const auto rec = net.tb.controller().host_tracker().find(net.victim->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x2, 1}));  // hijacked
  EXPECT_EQ(net.tb.controller().host_tracker().migrations(), 1u);
  EXPECT_EQ(net.tb.controller().host_tracker().moves_rejected(), 0u);
}

TEST(MigrationPolicy, OnosProbeBeforeMoveRejectsLiveVictimHijack) {
  TestbedOptions opts;
  opts.controller.profile = onos_profile();
  MigrationNet net{opts};
  net.learn_then_spoof();
  // The probe to (0x1, 1) was answered by the still-alive victim, so
  // the move was rejected: the binding never changed.
  const auto rec = net.tb.controller().host_tracker().find(net.victim->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x1, 1}));
  EXPECT_EQ(net.tb.controller().host_tracker().migrations(), 0u);
  EXPECT_GE(net.tb.controller().host_tracker().moves_rejected(), 1u);
  EXPECT_EQ(net.tb.controller().host_tracker().pending_moves(), 0u);
}

TEST(MigrationPolicy, OnosCommitsLegitimateMigrationAfterProbeTimeout) {
  TestbedOptions opts;
  opts.controller.profile = onos_profile();
  MigrationNet net{opts};
  of::DataLink& target = net.tb.add_access_link(0x2, 4);
  net.tb.start(1_s);
  net.victim->send_arp_request(net.spoofer->ip());
  net.tb.run_for(200_ms);
  // A real migration: the victim unplugs, so the old attachment point
  // stays silent and the probe times out (300 ms) before committing.
  scenario::migrate_host(net.tb, *net.victim, target, 500_ms);
  net.tb.run_for(600_ms);
  net.victim->send_arp_request(net.spoofer->ip());
  net.tb.run_for(1_s);
  const auto rec = net.tb.controller().host_tracker().find(net.victim->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x2, 4}));
  EXPECT_EQ(net.tb.controller().host_tracker().migrations(), 1u);
  EXPECT_EQ(net.tb.controller().host_tracker().pending_moves(), 0u);
}

// ---------------- Dispatch discipline ----------------

/// Defense that, once armed, blocks every host event (the strongest
/// veto a module can cast). Unarmed while the testbed learns the
/// benign bindings.
class HostVeto final : public DefenseModule {
 public:
  [[nodiscard]] std::string name() const override { return "host-veto"; }
  Verdict on_host_event(const HostEvent&) override {
    return armed ? Verdict::Block : Verdict::Allow;
  }
  bool armed = false;
};

TEST(DispatchDiscipline, OrderedStopHonorsTheBlockVerdict) {
  MigrationNet net;
  auto veto = std::make_unique<HostVeto>();
  HostVeto* veto_ptr = veto.get();
  net.tb.controller().add_defense(std::move(veto));
  net.tb.start(1_s);
  net.victim->send_arp_request(net.spoofer->ip());
  net.tb.run_for(200_ms);
  veto_ptr->armed = true;
  net.spoof();
  // Floodlight's ordered chain lets the Block verdict veto the rebind.
  const auto rec = net.tb.controller().host_tracker().find(net.victim->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x1, 1}));
  EXPECT_GE(net.tb.controller().host_tracker().blocked_events(), 1u);
}

TEST(DispatchDiscipline, BroadcastObserveTreatsVerdictsAsAdvisory) {
  TestbedOptions opts;
  opts.controller.profile = opendaylight_profile();
  MigrationNet net{opts};
  auto veto = std::make_unique<HostVeto>();
  HostVeto* veto_ptr = veto.get();
  net.tb.controller().add_defense(std::move(veto));
  net.tb.start(1_s);
  net.victim->send_arp_request(net.spoofer->ip());
  net.tb.run_for(200_ms);
  veto_ptr->armed = true;
  net.spoof();
  // OpenDaylight's notification bus never suppresses the commit: the
  // module observed (and could alert on) the event, but the rebind
  // happened anyway.
  const auto rec = net.tb.controller().host_tracker().find(net.victim->mac());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->loc, (of::Location{0x2, 1}));
  EXPECT_EQ(net.tb.controller().host_tracker().migrations(), 1u);
}

// ---------------- Experiment drivers under profiles ----------------

TEST(ProfileExperiments, OnosShiftsHijackOutcomeVsFloodlight) {
  scenario::HijackConfig fl;
  fl.suite = scenario::DefenseSuite::None;
  const auto fl_out = scenario::run_hijack(fl);

  scenario::HijackConfig onos = fl;
  onos.profile = onos_profile();
  const auto onos_out = scenario::run_hijack(onos);

  // The hijack targets a *down* victim, so ONOS's probe goes
  // unanswered and the rebind still lands — but only after the 300 ms
  // probe window, on a 3 s discovery cadence; the run must not be
  // byte-equal to Floodlight's.
  EXPECT_TRUE(fl_out.hijack_succeeded);
  const auto digest = [](const scenario::HijackOutcome& o) {
    return std::make_tuple(o.hijack_succeeded, o.traffic_redirected,
                           o.down_to_final_probe_start_ms,
                           o.down_to_declared_down_ms, o.down_to_iface_up_ms,
                           o.down_to_confirmed_ms, o.ident_change_ms,
                           o.events_executed);
  };
  EXPECT_NE(digest(fl_out), digest(onos_out));
}

TEST(ProfileExperiments, EveryProfileIsTwoRunDeterministic) {
  for (const auto& key : profile_cli_names()) {
    scenario::LinkAttackConfig cfg;
    cfg.kind = scenario::LinkAttackKind::OobAmnesia;
    cfg.suite = scenario::DefenseSuite::TopoGuardPlus;
    cfg.profile = *profile_by_name(key);
    const auto a = scenario::run_link_attack(cfg);
    const auto b = scenario::run_link_attack(cfg);
    EXPECT_EQ(a.link_registered, b.link_registered) << key;
    EXPECT_EQ(a.mitm_traffic, b.mitm_traffic) << key;
    EXPECT_EQ(a.alerts_total, b.alerts_total) << key;
    EXPECT_EQ(a.flaps, b.flaps) << key;
    EXPECT_EQ(a.events_executed, b.events_executed) << key;
    EXPECT_EQ(a.invariant_violations, 0u) << key;
    EXPECT_EQ(b.invariant_violations, 0u) << key;
  }
}

TEST(ProfileExperiments, EveryProfileIsJobsInvariant) {
  // The acceptance bar for the profile layer: all profiles produce
  // byte-identical trial vectors at --jobs 1 vs 8 (chunked scheduling,
  // ordered merge — DESIGN.md §7).
  for (const auto& key : profile_cli_names()) {
    const auto run = [&](std::size_t jobs) {
      scenario::TrialRunnerOptions ro;
      ro.jobs = jobs;
      scenario::TrialRunner runner{ro};
      return runner.map(6, [&](std::size_t i) {
        scenario::HijackConfig cfg;
        cfg.suite = scenario::DefenseSuite::TopoGuard;
        cfg.profile = *profile_by_name(key);
        cfg.seed = scenario::TrialRunner::trial_seed(42, i);
        const auto out = scenario::run_hijack(cfg);
        return std::make_tuple(out.hijack_succeeded, out.traffic_redirected,
                               out.down_to_confirmed_ms, out.ident_change_ms,
                               out.alerts_after_rejoin, out.events_executed,
                               out.invariant_violations);
      });
    };
    EXPECT_EQ(run(1), run(8)) << key;
  }
}

TEST(ProfileExperiments, InvariantCheckerCleanUnderEveryProfile) {
  for (const auto& key : profile_cli_names()) {
    TestbedOptions opts;
    opts.controller.profile = *profile_by_name(key);
    opts.check_invariants = true;
    MigrationNet net{opts};
    net.learn_then_spoof();
    check::InvariantChecker* checker = net.tb.invariant_checker();
    ASSERT_NE(checker, nullptr) << key;
    checker->final_check();
    EXPECT_GT(checker->checks_run(), 0u) << key;
    EXPECT_EQ(checker->violation_count(), 0u) << key;
  }
}

}  // namespace
}  // namespace tmg::ctrl
