// Focused tests for the port-amnesia attack engine on the paper's
// Fig. 1 topology (two switches, colluding hosts A/B, wireless side
// channel).
#include <gtest/gtest.h>

#include "attack/link_fabrication.hpp"
#include "attack/port_amnesia.hpp"
#include "ctrl/host_tracker.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/fig1_testbed.hpp"

namespace tmg::attack {
namespace {

using namespace tmg::sim::literals;
using scenario::Fig1Testbed;
using scenario::make_fig1_testbed;

scenario::TestbedOptions checked_options() {
  scenario::TestbedOptions opts;
  opts.check_invariants = true;  // runtime invariant checker (src/check)
  return opts;
}

scenario::TestbedOptions tg_options() {
  scenario::TestbedOptions opts = checked_options();
  opts.controller.authenticate_lldp = true;
  return opts;
}

/// Run until shortly after the next LLDP round relays.
void run_one_round(Fig1Testbed& f) { f.tb->run_for(16_s); }

TEST(Fig1Testbed, ConstructionAndDiscovery) {
  Fig1Testbed f = make_fig1_testbed(checked_options());
  f.tb->start(1_s);
  EXPECT_TRUE(f.tb->controller().topology().has_link(f.real_a, f.real_b));
  EXPECT_FALSE(f.fabricated_link_present());
  EXPECT_EQ(f.fabricated_link(), (topo::Link{f.a_loc, f.b_loc}));
}

TEST(PortAmnesia, FabricatesFig1LinkOnBareController) {
  Fig1Testbed f = make_fig1_testbed(checked_options());
  f.tb->start(1_s);
  scenario::fig1_warm_hosts(f);
  PortAmnesiaAttack::Config cfg;
  PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a, *f.attacker_b,
                           f.oob, cfg};
  attack.start();
  run_one_round(f);
  EXPECT_TRUE(f.fabricated_link_present());
  EXPECT_GE(attack.lldp_relayed(), 1u);
}

TEST(PortAmnesia, BypassesTopoGuardOnFig1) {
  // The paper's Fig. 1 walkthrough, end to end.
  Fig1Testbed f = make_fig1_testbed(tg_options());
  defense::install_topoguard(f.tb->controller());
  f.tb->start(1_s);
  scenario::fig1_warm_hosts(f);
  const auto alerts_before = f.tb->controller().alerts().count();

  PortAmnesiaAttack::Config cfg;
  cfg.preposition_flap = true;
  PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a, *f.attacker_b,
                           f.oob, cfg};
  attack.start();
  run_one_round(f);
  EXPECT_TRUE(f.fabricated_link_present());
  EXPECT_EQ(f.tb->controller().alerts().count(), alerts_before);
  EXPECT_EQ(attack.flaps(), 2u);  // one reset per colluding port
}

TEST(PortAmnesia, WithoutAmnesiaTopoGuardCatchesRelay) {
  // Control for the above: the identical relay without the flaps.
  Fig1Testbed f = make_fig1_testbed(tg_options());
  defense::install_topoguard(f.tb->controller());
  f.tb->start(1_s);
  scenario::fig1_warm_hosts(f);
  ClassicLinkFabrication classic{f.tb->loop(), *f.attacker_a, *f.attacker_b,
                                 *f.oob};
  classic.start();
  run_one_round(f);
  EXPECT_FALSE(f.fabricated_link_present());
  EXPECT_TRUE(f.tb->controller().alerts().any(
      ctrl::AlertType::LldpFromHostPort));
}

TEST(PortAmnesia, MitmBridgesTransitFaithfully) {
  Fig1Testbed f = make_fig1_testbed(checked_options());
  f.tb->start(1_s);
  scenario::fig1_warm_hosts(f);
  PortAmnesiaAttack::Config cfg;
  PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a, *f.attacker_b,
                           f.oob, cfg};
  attack.start();
  run_one_round(f);
  ASSERT_TRUE(f.fabricated_link_present());

  // Fresh flow h1 -> h2: with the fabricated 0x1:1<->0x2:1 edge, the
  // 2-hop real path and the fabricated path tie at 1 inter-switch hop;
  // force the poisoned choice by removing the real link from play: just
  // verify transit crosses the attackers when the controller picks the
  // fake edge — h1 pings h2 repeatedly and we check bridging occurred
  // whenever the fake path was chosen.
  f.h1->clear_inbox();
  for (int i = 0; i < 5; ++i) {
    f.h1->send_ping(f.h2->mac(), f.h2->ip(), 0x42,
                    static_cast<std::uint16_t>(i));
    f.tb->run_for(500_ms);
  }
  bool replied = false;
  for (const auto& p : f.h1->received()) {
    if (p.icmp() && p.icmp()->type == net::IcmpPayload::Type::EchoReply) {
      replied = true;
    }
  }
  EXPECT_TRUE(replied);  // connectivity intact either way (faithful MITM)
}

TEST(PortAmnesia, BlackholeDropsTransit) {
  Fig1Testbed f = make_fig1_testbed(checked_options());
  f.tb->start(1_s);
  scenario::fig1_warm_hosts(f);
  PortAmnesiaAttack::Config cfg;
  cfg.blackhole_transit = true;
  cfg.bridge_transit = false;
  PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a, *f.attacker_b,
                           f.oob, cfg};
  attack.start();
  run_one_round(f);
  ASSERT_TRUE(f.fabricated_link_present());
  f.tb->run_for(6_s);  // old rules idle out
  for (int i = 0; i < 10; ++i) {
    f.h1->send_ping(f.h2->mac(), f.h2->ip(), 0x43,
                    static_cast<std::uint16_t>(i));
    f.tb->run_for(300_ms);
  }
  // On the Fig. 1 tie-break topology the controller may route via either
  // edge; if it picked the fake one, packets vanished.
  if (attack.transit_dropped() > 0) {
    EXPECT_EQ(attack.transit_bridged(), 0u);
  }
}

TEST(PortAmnesia, OneWayRelayStillFabricates) {
  Fig1Testbed f = make_fig1_testbed(checked_options());
  f.tb->start(1_s);
  scenario::fig1_warm_hosts(f);
  PortAmnesiaAttack::Config cfg;
  cfg.bidirectional = false;
  PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a, *f.attacker_b,
                           f.oob, cfg};
  attack.start();
  run_one_round(f);
  EXPECT_TRUE(f.fabricated_link_present());
}

TEST(PortAmnesia, InBandVariantWorksOnFig1) {
  Fig1Testbed f = make_fig1_testbed(tg_options());
  defense::install_topoguard(f.tb->controller());
  f.tb->start(1_s);
  scenario::fig1_warm_hosts(f);
  PortAmnesiaAttack::Config cfg;
  cfg.mode = PortAmnesiaAttack::Mode::InBand;
  PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a, *f.attacker_b,
                           nullptr, cfg};
  attack.start();
  f.tb->run_for(35_s);  // two rounds (flaps tear the link down between)
  EXPECT_GE(attack.covert_sends(), 1u);
  EXPECT_GE(attack.lldp_relayed(), 1u);
  EXPECT_GE(attack.flaps(), 1u);
}

TEST(PortAmnesia, StartIsIdempotent) {
  Fig1Testbed f = make_fig1_testbed(checked_options());
  f.tb->start(1_s);
  PortAmnesiaAttack::Config cfg;
  PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a, *f.attacker_b,
                           f.oob, cfg};
  attack.start();
  attack.start();  // no double hooks / double preposition flaps
  f.tb->run_for(200_ms);
  EXPECT_LE(attack.flaps(), 2u);
}

TEST(PortAmnesia, FabricatedLinkDiesWithoutRelay) {
  // Stop relaying (hosts go dark): the fabricated link must age out via
  // the link timeout, exactly like a real unplugged link.
  Fig1Testbed f = make_fig1_testbed(checked_options());
  f.tb->start(1_s);
  scenario::fig1_warm_hosts(f);
  auto attack = std::make_unique<PortAmnesiaAttack>(
      f.tb->loop(), *f.attacker_a, *f.attacker_b, f.oob,
      PortAmnesiaAttack::Config{});
  attack->start();
  run_one_round(f);
  ASSERT_TRUE(f.fabricated_link_present());
  // Silence the relays by swallowing everything at both hosts.
  f.attacker_a->set_packet_hook([](const net::Packet&) { return true; });
  f.attacker_b->set_packet_hook([](const net::Packet&) { return true; });
  f.tb->run_for(40_s);  // > Floodlight link timeout (35 s)
  EXPECT_FALSE(f.fabricated_link_present());
  // The real link, still verified every round, survives.
  EXPECT_TRUE(f.tb->controller().topology().has_link(f.real_a, f.real_b));
}

}  // namespace
}  // namespace tmg::attack
