// Unit tests for the topology graph.
#include <gtest/gtest.h>

#include "topo/graph.hpp"

namespace tmg::topo {
namespace {

const Location kS1P1{0x1, 1};
const Location kS1P2{0x1, 2};
const Location kS2P1{0x2, 1};
const Location kS2P2{0x2, 2};
const Location kS3P1{0x3, 1};
const Location kS3P2{0x3, 2};
const Location kS4P1{0x4, 1};

TEST(Link, CanonicalOrdering) {
  const Link a{kS2P1, kS1P1};
  const Link b{kS1P1, kS2P1};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.a, kS1P1);
  EXPECT_EQ(a.b, kS2P1);
}

TEST(Link, ToString) {
  EXPECT_EQ((Link{kS2P1, kS1P1}).to_string(), "0x1:1<->0x2:1");
}

TEST(TopologyGraph, AddIsIdempotent) {
  TopologyGraph g;
  EXPECT_TRUE(g.add_link(kS1P1, kS2P1));
  EXPECT_FALSE(g.add_link(kS2P1, kS1P1));  // same link, other orientation
  EXPECT_EQ(g.link_count(), 1u);
}

TEST(TopologyGraph, HasLinkEitherOrientation) {
  TopologyGraph g;
  g.add_link(kS1P1, kS2P1);
  EXPECT_TRUE(g.has_link(kS1P1, kS2P1));
  EXPECT_TRUE(g.has_link(kS2P1, kS1P1));
  EXPECT_FALSE(g.has_link(kS1P2, kS2P1));
}

TEST(TopologyGraph, RemoveLink) {
  TopologyGraph g;
  g.add_link(kS1P1, kS2P1);
  EXPECT_TRUE(g.remove_link(kS2P1, kS1P1));
  EXPECT_FALSE(g.remove_link(kS2P1, kS1P1));
  EXPECT_EQ(g.link_count(), 0u);
  EXPECT_FALSE(g.is_switch_port(kS1P1));
}

TEST(TopologyGraph, IsSwitchPort) {
  TopologyGraph g;
  g.add_link(kS1P1, kS2P1);
  EXPECT_TRUE(g.is_switch_port(kS1P1));
  EXPECT_TRUE(g.is_switch_port(kS2P1));
  EXPECT_FALSE(g.is_switch_port(kS1P2));
  EXPECT_FALSE(g.is_switch_port(Location{0x9, 1}));
}

TEST(TopologyGraph, LinksSortedSnapshot) {
  TopologyGraph g;
  g.add_link(kS2P2, kS3P1);
  g.add_link(kS1P1, kS2P1);
  const auto links = g.links();
  ASSERT_EQ(links.size(), 2u);
  EXPECT_LT(links[0], links[1]);
}

TEST(TopologyGraph, PathTrivial) {
  TopologyGraph g;
  const auto p = g.path(0x1, 0x1);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(TopologyGraph, PathLinearChain) {
  TopologyGraph g;
  g.add_link(kS1P1, kS2P1);
  g.add_link(kS2P2, kS3P1);
  const auto p = g.path(0x1, 0x3);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->size(), 2u);
  EXPECT_EQ((*p)[0].from, kS1P1);
  EXPECT_EQ((*p)[0].to, kS2P1);
  EXPECT_EQ((*p)[1].from, kS2P2);
  EXPECT_EQ((*p)[1].to, kS3P1);
}

TEST(TopologyGraph, PathReverseDirection) {
  TopologyGraph g;
  g.add_link(kS1P1, kS2P1);
  const auto p = g.path(0x2, 0x1);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->size(), 1u);
  EXPECT_EQ((*p)[0].from, kS2P1);
  EXPECT_EQ((*p)[0].to, kS1P1);
}

TEST(TopologyGraph, PathUnreachable) {
  TopologyGraph g;
  g.add_link(kS1P1, kS2P1);
  g.add_link(kS3P1, kS4P1);
  EXPECT_FALSE(g.path(0x1, 0x3).has_value());
  EXPECT_FALSE(g.path(0x1, 0x99).has_value());
}

TEST(TopologyGraph, BfsPrefersShortcut) {
  // Chain 1-2-3-4 plus a (fabricated) shortcut 2-4: BFS must take it.
  TopologyGraph g;
  g.add_link(Location{0x1, 10}, Location{0x2, 11});
  g.add_link(Location{0x2, 10}, Location{0x3, 11});
  g.add_link(Location{0x3, 10}, Location{0x4, 11});
  const auto before = g.path(0x1, 0x4);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->size(), 3u);
  g.add_link(Location{0x2, 1}, Location{0x4, 1});  // the poisoned edge
  const auto after = g.path(0x1, 0x4);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->size(), 2u);
  EXPECT_EQ((*after)[1].from, (Location{0x2, 1}));
  EXPECT_EQ((*after)[1].to, (Location{0x4, 1}));
}

TEST(TopologyGraph, PathHandlesCycles) {
  TopologyGraph g;
  g.add_link(Location{0x1, 1}, Location{0x2, 1});
  g.add_link(Location{0x2, 2}, Location{0x3, 1});
  g.add_link(Location{0x3, 2}, Location{0x1, 2});  // cycle
  const auto p = g.path(0x1, 0x3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 1u);  // direct edge via the cycle link
}

TEST(TopologyGraph, ClearEmpties) {
  TopologyGraph g;
  g.add_link(kS1P1, kS2P1);
  g.clear();
  EXPECT_EQ(g.link_count(), 0u);
  EXPECT_FALSE(g.path(0x1, 0x2).has_value());
}

TEST(TopologyGraph, MultipleLinksBetweenSameSwitches) {
  TopologyGraph g;
  EXPECT_TRUE(g.add_link(kS1P1, kS2P1));
  EXPECT_TRUE(g.add_link(kS1P2, kS2P2));  // parallel link, distinct ports
  EXPECT_EQ(g.link_count(), 2u);
  g.remove_link(kS1P1, kS2P1);
  // The parallel link still connects them.
  EXPECT_TRUE(g.path(0x1, 0x2).has_value());
}

}  // namespace
}  // namespace tmg::topo
