// End-to-end scenario tests: the paper's attack/defense matrix run on
// the canned testbeds through the shared experiment drivers.
//
// These assert the paper's qualitative results (Sec. V, VII):
//   - classic LLDP relay is caught by TopoGuard, but not by SPHINX;
//   - port amnesia bypasses TopoGuard and SPHINX (out-of-band and
//     in-band) and fabricates a working MITM link;
//   - TOPOGUARD+ catches in-band amnesia via the CMM and out-of-band
//     amnesia via the LLI;
//   - port probing wins the HLH race under every passive defense, and
//     detection only fires when the victim rejoins;
//   - alert floods bury the real alert;
//   - ARP liveness probing stays under the IDS radar while SYN scanning
//     above 2/s does not.
#include <gtest/gtest.h>

#include "attack/alert_flood.hpp"
#include "attack/port_amnesia.hpp"
#include "ctrl/host_tracker.hpp"
#include "scenario/experiments.hpp"

namespace tmg::scenario {
namespace {

using namespace tmg::sim::literals;
using attack::ProbeType;

LinkAttackConfig link_cfg(LinkAttackKind kind, DefenseSuite suite,
                          std::uint64_t seed = 42) {
  LinkAttackConfig cfg;
  cfg.kind = kind;
  cfg.suite = suite;
  cfg.seed = seed;
  return cfg;
}

// ---------------- Link fabrication matrix ----------------

TEST(LinkAttackMatrix, ClassicRelayPoisonsBareController) {
  const auto out =
      run_link_attack(link_cfg(LinkAttackKind::ClassicRelay,
                               DefenseSuite::None));
  EXPECT_TRUE(out.link_registered);
  EXPECT_TRUE(out.link_present_at_end);
  EXPECT_TRUE(out.mitm_traffic);
  EXPECT_FALSE(out.detected());
}

TEST(LinkAttackMatrix, ClassicRelayCaughtByTopoGuard) {
  const auto out = run_link_attack(
      link_cfg(LinkAttackKind::ClassicRelay, DefenseSuite::TopoGuard));
  EXPECT_TRUE(out.detected());
  EXPECT_GE(out.alerts_topoguard, 1u);
  EXPECT_FALSE(out.link_present_at_end);
}

TEST(LinkAttackMatrix, ClassicRelayInvisibleToSphinxAlone) {
  // SPHINX trusts new links (paper Sec. V-A); a faithful MITM keeps the
  // counters consistent.
  const auto out = run_link_attack(
      link_cfg(LinkAttackKind::ClassicRelay, DefenseSuite::Sphinx));
  EXPECT_TRUE(out.link_registered);
  EXPECT_FALSE(out.detected());
}

TEST(LinkAttackMatrix, OobAmnesiaBypassesTopoGuard) {
  const auto out = run_link_attack(
      link_cfg(LinkAttackKind::OobAmnesia, DefenseSuite::TopoGuard));
  EXPECT_TRUE(out.link_registered);
  EXPECT_TRUE(out.link_present_at_end);
  EXPECT_TRUE(out.mitm_traffic);
  EXPECT_FALSE(out.detected());
  EXPECT_GE(out.flaps, 2u);  // one prepositioning flap per endpoint
}

TEST(LinkAttackMatrix, OobAmnesiaBypassesTopoGuardAndSphinxTogether) {
  // The paper's headline: both defenses deployed, attack still succeeds
  // without per-defense customization.
  const auto out = run_link_attack(
      link_cfg(LinkAttackKind::OobAmnesia, DefenseSuite::TopoGuardAndSphinx));
  EXPECT_TRUE(out.link_registered);
  EXPECT_TRUE(out.mitm_traffic);
  EXPECT_FALSE(out.detected());
}

TEST(LinkAttackMatrix, OobAmnesiaCaughtByTopoGuardPlusLli) {
  const auto out = run_link_attack(
      link_cfg(LinkAttackKind::OobAmnesia, DefenseSuite::TopoGuardPlus));
  EXPECT_GE(out.alerts_lli, 1u);
  EXPECT_FALSE(out.link_present_at_end);
}

TEST(LinkAttackMatrix, NaiveOobAmnesiaCaughtByCmmToo) {
  // Flapping during the propagation window (the Fig. 1 flow) trips the
  // CMM even before latency evidence accumulates.
  const auto out = run_link_attack(
      link_cfg(LinkAttackKind::OobAmnesiaNaive, DefenseSuite::TopoGuardPlus));
  EXPECT_TRUE(out.detected());
  EXPECT_GE(out.alerts_cmm + out.alerts_lli, 1u);
  EXPECT_FALSE(out.link_present_at_end);
}

TEST(LinkAttackMatrix, InBandAmnesiaBypassesTopoGuard) {
  const auto out = run_link_attack(
      link_cfg(LinkAttackKind::InBandAmnesia, DefenseSuite::TopoGuard));
  EXPECT_TRUE(out.link_registered);
  EXPECT_FALSE(out.detected());
  EXPECT_GE(out.flaps, 2u);  // context switches every round
}

TEST(LinkAttackMatrix, InBandAmnesiaCaughtByCmm) {
  const auto out = run_link_attack(
      link_cfg(LinkAttackKind::InBandAmnesia, DefenseSuite::TopoGuardPlus));
  EXPECT_GE(out.alerts_cmm, 1u);
}

TEST(LinkAttackMatrix, BlackholeVariantTripsSphinxCounters) {
  LinkAttackConfig cfg =
      link_cfg(LinkAttackKind::OobAmnesia, DefenseSuite::Sphinx);
  cfg.blackhole = true;
  const auto out = run_link_attack(cfg);
  EXPECT_TRUE(out.link_registered);
  EXPECT_GE(out.alerts_sphinx, 1u);
}

TEST(LinkAttackMatrix, SymmetryExtensionCatchesBlackholedFakeLink) {
  // SPHINX-with-port-symmetry (our extension, off by default): a
  // fabricated link that drops transit diverges its endpoints' port
  // counters — detected at the *link* level, with no dependency on
  // flow-graph bookkeeping. (A faithfully bridging or in-band covert
  // link stays byte-symmetric and is NOT caught this way; see
  // EXPERIMENTS.md.)
  Fig9Testbed f = make_fig9_testbed([&] {
    auto o = fig9_options(42);
    o.controller.authenticate_lldp = false;
    o.controller.lldp_timestamps = false;
    return o;
  }());
  defense::SphinxConfig sc;
  sc.check_link_symmetry = true;
  defense::install_sphinx(f.tb->controller(), sc);
  f.tb->start(2_s);
  fig9_warm_hosts(f);
  f.tb->run_for(30_s);
  ASSERT_EQ(f.tb->controller().alerts().count(
                ctrl::AlertType::SphinxLinkAsymmetry),
            0u);  // benign network is symmetric

  attack::PortAmnesiaAttack::Config ac;
  ac.mode = attack::PortAmnesiaAttack::Mode::OutOfBand;
  ac.blackhole_transit = true;
  ac.bridge_transit = false;
  attack::PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a,
                                   *f.attacker_b, f.oob, ac};
  attack.start();
  while (!f.fabricated_link_present()) f.tb->run_for(1_s);
  f.tb->run_for(6_s);  // stale rules idle out; flows re-route

  for (int i = 0; i < 30; ++i) {
    f.h1->send_raw(f.h2->mac(), f.h2->ip(), "bulk", 1400);
    f.tb->run_for(250_ms);
  }
  EXPECT_GT(attack.transit_dropped(), 0u);
  EXPECT_GT(f.tb->controller().alerts().count(
                ctrl::AlertType::SphinxLinkAsymmetry),
            0u);
}

TEST(LinkAttackMatrix, NoAttackNoAlerts) {
  // Control: the benign Fig. 9 network under TopoGuard raises nothing.
  LinkAttackConfig cfg =
      link_cfg(LinkAttackKind::OobAmnesia, DefenseSuite::TopoGuard);
  cfg.attack_window = 0_s;
  cfg.benign_window = 60_s;
  // kind irrelevant: zero attack window means the attack never launches
  // meaningfully; assert only the benign phase.
  const auto out = run_link_attack(cfg);
  EXPECT_EQ(out.alerts_before_attack, 0u);
}

// ---------------- Host-location hijack ----------------

HijackConfig hijack_cfg(DefenseSuite suite, std::uint64_t seed = 42) {
  HijackConfig cfg;
  cfg.suite = suite;
  cfg.seed = seed;
  return cfg;
}

TEST(Hijack, SucceedsUnderTopoGuard) {
  const auto out = run_hijack(hijack_cfg(DefenseSuite::TopoGuard));
  EXPECT_TRUE(out.hijack_succeeded);
  EXPECT_TRUE(out.traffic_redirected);
  // No policy violated before the victim rejoins (paper Sec. IV-B).
  EXPECT_EQ(out.alerts_before_rejoin, 0u);
  // The rejoin oscillation is what finally raises alerts.
  EXPECT_GE(out.alerts_after_rejoin, 1u);
}

TEST(Hijack, SucceedsUnderSphinx) {
  const auto out = run_hijack(hijack_cfg(DefenseSuite::Sphinx));
  EXPECT_TRUE(out.hijack_succeeded);
  EXPECT_EQ(out.alerts_before_rejoin, 0u);
  EXPECT_GE(out.alerts_after_rejoin, 1u);
}

TEST(Hijack, SucceedsUnderBothDefenses) {
  const auto out = run_hijack(hijack_cfg(DefenseSuite::TopoGuardAndSphinx));
  EXPECT_TRUE(out.hijack_succeeded);
  EXPECT_EQ(out.alerts_before_rejoin, 0u);
}

TEST(Hijack, TimingShapeMatchesPaper) {
  const auto out = run_hijack(hijack_cfg(DefenseSuite::TopoGuard, 7));
  ASSERT_TRUE(out.hijack_succeeded);
  // Fig. 7: the final (failing) probe starts within one probe period of
  // the victim going down — typically within a few ms.
  ASSERT_TRUE(out.down_to_final_probe_start_ms.has_value());
  EXPECT_LT(*out.down_to_final_probe_start_ms, 50.0);
  // Fig. 8: declared down ~= final probe start + 35 ms timeout.
  ASSERT_TRUE(out.down_to_declared_down_ms.has_value());
  EXPECT_NEAR(*out.down_to_declared_down_ms,
              *out.down_to_final_probe_start_ms + 35.0, 1.0);
  // Fig. 5 <= Fig. 6: interface up precedes controller acknowledgement.
  ASSERT_TRUE(out.down_to_iface_up_ms.has_value());
  ASSERT_TRUE(out.down_to_confirmed_ms.has_value());
  EXPECT_LT(*out.down_to_iface_up_ms, *out.down_to_confirmed_ms);
  // Fig. 4 component: identity change in the ifconfig regime.
  ASSERT_TRUE(out.ident_change_ms.has_value());
  EXPECT_GT(*out.ident_change_ms, 0.5);
  EXPECT_LT(*out.ident_change_ms, 400.0);
}

TEST(Hijack, NmapOverheadRegimeIsSlower) {
  HijackConfig fast = hijack_cfg(DefenseSuite::TopoGuard, 11);
  HijackConfig slow = fast;
  slow.nmap_overhead = true;
  slow.confirm_failures = 2;
  const auto out_fast = run_hijack(fast);
  const auto out_slow = run_hijack(slow);
  ASSERT_TRUE(out_fast.down_to_iface_up_ms.has_value());
  ASSERT_TRUE(out_slow.down_to_iface_up_ms.has_value());
  // Paper Fig. 5 regime: several hundred ms once nmap engine overheads
  // and confirmation scans are paid.
  EXPECT_GT(*out_slow.down_to_iface_up_ms,
            *out_fast.down_to_iface_up_ms + 100.0);
}

TEST(Hijack, VictimStaysGoneNoAlertsEver) {
  HijackConfig cfg = hijack_cfg(DefenseSuite::TopoGuardAndSphinx, 13);
  cfg.victim_rejoins = false;
  const auto out = run_hijack(cfg);
  EXPECT_TRUE(out.hijack_succeeded);
  EXPECT_EQ(out.alerts_before_rejoin, 0u);
  EXPECT_EQ(out.alerts_after_rejoin, 0u);
}

/// The hijack race is seed-robust: sweep several victim-down phases.
class HijackSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HijackSeedSweep, AlwaysWinsRaceDuringMigration) {
  const auto out = run_hijack(hijack_cfg(DefenseSuite::TopoGuard,
                                         GetParam()));
  EXPECT_TRUE(out.hijack_succeeded);
  EXPECT_EQ(out.alerts_before_rejoin, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HijackSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

// ---------------- LLI experiment (Figs. 10-11, 13) ----------------

TEST(LliExperiment, RealLinksMeasureNearFiveMs) {
  LliExperimentConfig cfg;
  cfg.launch_attack = false;
  cfg.attack_window = 60_s;
  const auto series = run_lli_experiment(cfg);
  ASSERT_EQ(series.per_link.size(), 4u);  // Fig. 10: all four links
  for (const auto& [link, summary] : series.per_link) {
    EXPECT_GT(summary.mean, 3.0) << link;
    EXPECT_LT(summary.mean, 8.0) << link;
  }
  EXPECT_EQ(series.fake_attempts, 0u);
}

TEST(LliExperiment, FakeLinkFlaggedAndBlocked) {
  LliExperimentConfig cfg;
  const auto series = run_lli_experiment(cfg);
  EXPECT_GE(series.fake_attempts, 2u);
  // Every fabricated-link measurement is above the (converged)
  // threshold: the relay's extra ~11 ms cannot be hidden.
  EXPECT_EQ(series.fake_detections, series.fake_attempts);
  EXPECT_FALSE(series.fake_link_ever_registered);
}

TEST(LliExperiment, ThresholdConvergesAfterBootstrap) {
  LliExperimentConfig cfg;
  cfg.launch_attack = false;
  const auto series = run_lli_experiment(cfg);
  // Find the last real-link threshold; it should sit in single-digit ms
  // (Fig. 11's converged band), well below the bootstrap burst.
  std::optional<double> last;
  for (const auto& p : series.points) {
    if (p.threshold_ms) last = p.threshold_ms;
  }
  ASSERT_TRUE(last.has_value());
  EXPECT_LT(*last, 15.0);
}

TEST(LliExperiment, IsolatedBurstsNeverRemoveBenignLinks) {
  // Sec. VIII-A: an LLI false positive blocks one refresh, but the link
  // timeout exceeds the discovery interval 2-3x, so benign links only
  // disappear if bursts repeat across consecutive rounds. Over a long
  // benign run the topology must stay intact throughout.
  Fig9Testbed f = make_fig9_testbed(fig9_options(3));
  const auto handles = install_suite(f.tb->controller(),
                                     DefenseSuite::TopoGuardPlus);
  f.tb->start(2_s);
  fig9_warm_hosts(f);
  std::size_t min_links = 4;
  for (int checkpoint = 0; checkpoint < 20; ++checkpoint) {
    f.tb->run_for(15_s);  // one Floodlight discovery round per checkpoint
    min_links = std::min(min_links,
                         f.tb->controller().topology().link_count());
  }
  EXPECT_EQ(min_links, 4u);
  // Sanity: the run was long enough that micro-bursts plausibly caused
  // at least one (tolerated) flagged refresh.
  EXPECT_GE(handles.lli->measurements().size(), 150u);
}

// ---------------- Probe timing (Table I) ----------------

TEST(ProbeTiming, TableIOverheadsReproduced) {
  const struct {
    ProbeType type;
    double mean_ms;
  } rows[] = {
      {ProbeType::IcmpPing, 0.91},
      {ProbeType::TcpSyn, 492.3},
      {ProbeType::ArpPing, 133.5},
      {ProbeType::TcpIdleScan, 1.8},
  };
  for (const auto& row : rows) {
    const auto r = measure_probe_timing(row.type, 200, 42);
    EXPECT_NEAR(r.tool_overhead_ms.mean, row.mean_ms,
                row.mean_ms * 0.05 + 0.05)
        << attack::to_string(row.type);
    EXPECT_EQ(r.alive_detected, 200u) << attack::to_string(row.type);
  }
}

TEST(ProbeTiming, EndToEndOrderingSensible) {
  // In-sim exchange cost: idle scan (two zombie round trips + settle)
  // is the slowest; ICMP/ARP/SYN are one round trip each.
  const auto icmp = measure_probe_timing(ProbeType::IcmpPing, 100, 1);
  const auto idle = measure_probe_timing(ProbeType::TcpIdleScan, 100, 1);
  EXPECT_GT(idle.end_to_end_ms.mean, icmp.end_to_end_ms.mean);
}

// ---------------- Scan detection (Sec. V-B2) ----------------

TEST(ScanDetection, SynAboveTwoPerSecondDetected) {
  const auto r =
      run_scan_detection(ProbeType::TcpSyn, 5.0, 30_s, 42);
  EXPECT_GT(r.probes_sent, 100u);
  EXPECT_TRUE(r.detected());
}

TEST(ScanDetection, SynAtOnePerSecondUndetected) {
  const auto r =
      run_scan_detection(ProbeType::TcpSyn, 1.0, 30_s, 42);
  EXPECT_FALSE(r.detected());
}

TEST(ScanDetection, ArpAtAttackRateUndetected) {
  // The paper's chosen configuration: ARP liveness probes at 20/s (one
  // every 50 ms) remain invisible to the IDS.
  const auto r =
      run_scan_detection(ProbeType::ArpPing, 20.0, 30_s, 42);
  EXPECT_GT(r.probes_sent, 400u);
  EXPECT_FALSE(r.detected());
}

TEST(ScanDetection, IcmpFloodDetected) {
  const auto r =
      run_scan_detection(ProbeType::IcmpPing, 10.0, 10_s, 42);
  EXPECT_TRUE(r.detected());
}

// ---------------- Alert flood ----------------

TEST(AlertFlood, BuriesTheRealAlert) {
  // Build the Fig. 2 network with TopoGuard; one real hijack plus a
  // flood of spoofed identities. The operator-facing alert stream is
  // dominated by spurious entries.
  Fig2Testbed f = make_fig2_testbed(suite_options(DefenseSuite::TopoGuard,
                                                  42));
  install_suite(f.tb->controller(), DefenseSuite::TopoGuard);
  f.tb->start(2_s);
  fig2_warm_hosts(f);

  attack::AlertFloodAttack::Config fc;
  for (std::uint32_t i = 0; i < 20; ++i) {
    fc.identities.push_back(attack::SpoofedIdentity{
        net::MacAddress::host(200 + i), net::Ipv4Address::host(200 + i)});
  }
  fc.period = 50_ms;
  attack::AlertFloodAttack flood{f.tb->loop(), f.tb->fork_rng(), *f.attacker,
                                 fc};
  // Seed the spoofed identities as known hosts first (so the flood
  // triggers Moved events with violated preconditions, not New events).
  for (const auto& id : fc.identities) {
    f.peer->send(net::make_arp_request(id.mac, id.ip, id.ip));
  }
  f.tb->run_for(1_s);
  flood.start();
  f.tb->run_for(10_s);

  const auto& alerts = f.tb->controller().alerts();
  EXPECT_GE(alerts.count(ctrl::AlertType::HostMigrationPrecondition), 20u);
  // The network state was never altered by any of those alerts: the
  // spoofed hosts all "moved" to the attacker's port.
  std::size_t moved = 0;
  for (const auto& id : fc.identities) {
    const auto rec = f.tb->controller().host_tracker().find(id.mac);
    if (rec && rec->loc == f.attacker_loc) ++moved;
  }
  EXPECT_GE(moved, fc.identities.size() - 1);
}

// ---------------- Driver plumbing ----------------

TEST(Drivers, SuiteNamesAndOptions) {
  EXPECT_STREQ(to_string(DefenseSuite::TopoGuardPlus), "TOPOGUARD+");
  EXPECT_STREQ(to_string(LinkAttackKind::InBandAmnesia),
               "inband-port-amnesia");
  const auto opts = suite_options(DefenseSuite::TopoGuardPlus, 1);
  EXPECT_TRUE(opts.controller.authenticate_lldp);
  EXPECT_TRUE(opts.controller.lldp_timestamps);
  const auto tg = suite_options(DefenseSuite::TopoGuard, 1);
  EXPECT_TRUE(tg.controller.authenticate_lldp);
  EXPECT_FALSE(tg.controller.lldp_timestamps);
  const auto none = suite_options(DefenseSuite::None, 1);
  EXPECT_FALSE(none.controller.authenticate_lldp);
}

}  // namespace
}  // namespace tmg::scenario
