// Tests for the attacker framework: host model, NIC latency models,
// out-of-band channel, liveness probes, port-probing attack mechanics.
#include <gtest/gtest.h>

#include "attack/alert_flood.hpp"
#include "attack/nic_model.hpp"
#include "attack/oob_channel.hpp"
#include "attack/port_probing.hpp"
#include "attack/probes.hpp"
#include "ctrl/host_tracker.hpp"
#include "scenario/testbed.hpp"
#include "stats/descriptive.hpp"

namespace tmg::attack {
namespace {

using namespace tmg::sim::literals;
using scenario::Testbed;
using scenario::TestbedOptions;
using sim::Duration;

scenario::TestbedOptions checked_options() {
  scenario::TestbedOptions opts;
  opts.check_invariants = true;  // runtime invariant checker (src/check)
  return opts;
}

struct Lab {
  Testbed tb{checked_options()};
  Host* attacker;
  Host* victim;
  Host* zombie;

  Lab() {
    tb.add_switch(0x1);
    HostConfig a;
    a.mac = net::MacAddress::host(0xA);
    a.ip = net::Ipv4Address::host(10);
    attacker = &tb.add_host(0x1, 1, a);
    HostConfig v;
    v.mac = net::MacAddress::host(1);
    v.ip = net::Ipv4Address::host(1);
    v.open_tcp_ports = {80};
    victim = &tb.add_host(0x1, 2, v);
    HostConfig z;
    z.mac = net::MacAddress::host(2);
    z.ip = net::Ipv4Address::host(2);
    z.idle_scan_zombie = true;
    zombie = &tb.add_host(0x1, 3, z);
    tb.start(1_s);
  }

  void run(Duration d = 500_ms) { tb.run_for(d); }
};

// ---------------- Host auto-responders ----------------

TEST(Host, RepliesToArpForItsIp) {
  Lab lab;
  lab.attacker->send_arp_request(lab.victim->ip());
  lab.run();
  bool got_reply = false;
  for (const auto& p : lab.attacker->received()) {
    if (p.arp() && p.arp()->op == net::ArpPayload::Op::Reply &&
        p.arp()->sender_ip == lab.victim->ip()) {
      got_reply = true;
      EXPECT_EQ(p.arp()->sender_mac, lab.victim->mac());
    }
  }
  EXPECT_TRUE(got_reply);
}

TEST(Host, IgnoresArpForOtherIps) {
  Lab lab;
  lab.attacker->send_arp_request(net::Ipv4Address::host(200));
  lab.run();
  for (const auto& p : lab.attacker->received()) {
    EXPECT_FALSE(p.arp() && p.arp()->op == net::ArpPayload::Op::Reply);
  }
}

TEST(Host, RepliesToIcmpEcho) {
  Lab lab;
  lab.attacker->send_ping(lab.victim->mac(), lab.victim->ip(), 7, 1);
  lab.run();
  bool got = false;
  for (const auto& p : lab.attacker->received()) {
    if (p.icmp() && p.icmp()->type == net::IcmpPayload::Type::EchoReply &&
        p.icmp()->ident == 7) {
      got = true;
    }
  }
  EXPECT_TRUE(got);
}

TEST(Host, SynToOpenPortGetsSynAck) {
  Lab lab;
  lab.attacker->send(net::make_tcp(lab.attacker->mac(), lab.attacker->ip(),
                                   lab.victim->mac(), lab.victim->ip(), 5555,
                                   80, net::TcpFlags{.syn = true}));
  lab.run();
  bool got = false;
  for (const auto& p : lab.attacker->received()) {
    if (p.tcp() && p.tcp()->flags.syn && p.tcp()->flags.ack &&
        p.tcp()->dst_port == 5555) {
      got = true;
    }
  }
  EXPECT_TRUE(got);
}

TEST(Host, SynToClosedPortGetsRst) {
  Lab lab;
  lab.attacker->send(net::make_tcp(lab.attacker->mac(), lab.attacker->ip(),
                                   lab.victim->mac(), lab.victim->ip(), 5556,
                                   8080, net::TcpFlags{.syn = true}));
  lab.run();
  bool got = false;
  for (const auto& p : lab.attacker->received()) {
    if (p.tcp() && p.tcp()->flags.rst && p.tcp()->dst_port == 5556) got = true;
  }
  EXPECT_TRUE(got);
}

TEST(Host, ZombieRstsUnsolicitedSynAckWithSequentialIpId) {
  Lab lab;
  auto send_synack = [&](std::uint16_t sport) {
    lab.attacker->send(net::make_tcp(
        lab.attacker->mac(), lab.attacker->ip(), lab.zombie->mac(),
        lab.zombie->ip(), sport, 80, net::TcpFlags{.syn = true, .ack = true}));
  };
  send_synack(6000);
  lab.run();
  send_synack(6001);
  lab.run();
  std::vector<std::uint16_t> ipids;
  for (const auto& p : lab.attacker->received()) {
    if (p.tcp() && p.tcp()->flags.rst && p.ip &&
        p.ip->src == lab.zombie->ip()) {
      ipids.push_back(p.ip->ident);
    }
  }
  ASSERT_EQ(ipids.size(), 2u);
  EXPECT_EQ(ipids[1], static_cast<std::uint16_t>(ipids[0] + 1));
}

TEST(Host, NonZombieIgnoresUnsolicitedSynAck) {
  Lab lab;
  lab.attacker->send(net::make_tcp(
      lab.attacker->mac(), lab.attacker->ip(), lab.victim->mac(),
      lab.victim->ip(), 6002, 80, net::TcpFlags{.syn = true, .ack = true}));
  lab.run();
  for (const auto& p : lab.attacker->received()) {
    EXPECT_FALSE(p.tcp() && p.tcp()->flags.rst && p.tcp()->dst_port == 6002);
  }
}

TEST(Host, DownInterfaceSilent) {
  Lab lab;
  lab.victim->set_interface(false);
  lab.run(100_ms);
  lab.attacker->clear_inbox();
  lab.attacker->send_arp_request(lab.victim->ip());
  lab.run();
  for (const auto& p : lab.attacker->received()) {
    EXPECT_FALSE(p.arp() && p.arp()->op == net::ArpPayload::Op::Reply);
  }
}

TEST(Host, HookConsumesBeforeResponder) {
  Lab lab;
  int hooked = 0;
  lab.victim->set_packet_hook([&](const net::Packet&) {
    ++hooked;
    return true;  // consume everything
  });
  lab.attacker->send_ping(lab.victim->mac(), lab.victim->ip(), 9, 1);
  lab.run();
  EXPECT_GT(hooked, 0);
  for (const auto& p : lab.attacker->received()) {
    EXPECT_FALSE(p.icmp() &&
                 p.icmp()->type == net::IcmpPayload::Type::EchoReply);
  }
}

TEST(Host, ListenerObservesWithoutConsuming) {
  Lab lab;
  int listened = 0;
  lab.victim->add_listener([&](const net::Packet&) { ++listened; });
  lab.attacker->send_ping(lab.victim->mac(), lab.victim->ip(), 9, 1);
  lab.run();
  EXPECT_GT(listened, 0);
  bool got_reply = false;
  for (const auto& p : lab.attacker->received()) {
    if (p.icmp() && p.icmp()->type == net::IcmpPayload::Type::EchoReply) {
      got_reply = true;
    }
  }
  EXPECT_TRUE(got_reply);  // responder still ran
}

TEST(Host, IdentityChangeGoesThroughDownWindow) {
  Lab lab;
  const auto new_mac = net::MacAddress::host(0xEE);
  const auto new_ip = net::Ipv4Address::host(99);
  bool done = false;
  lab.victim->change_identity_timed(new_mac, new_ip,
                                    NicOpModel::identity_change(),
                                    [&] { done = true; });
  EXPECT_FALSE(lab.victim->interface_up());
  lab.run(1_s);
  EXPECT_TRUE(done);
  EXPECT_TRUE(lab.victim->interface_up());
  EXPECT_EQ(lab.victim->mac(), new_mac);
  EXPECT_EQ(lab.victim->ip(), new_ip);
}

TEST(Host, ArpCacheLearnsFromSenderFields) {
  Lab lab;
  EXPECT_FALSE(lab.victim->arp_lookup(lab.attacker->ip()).has_value());
  lab.attacker->send_arp_request(lab.victim->ip());  // broadcast: all learn
  lab.run();
  const auto cached = lab.victim->arp_lookup(lab.attacker->ip());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, lab.attacker->mac());
}

TEST(Host, SendResolvedQueriesArpOnMiss) {
  Lab lab;
  // No prior contact: resolution must run a real ARP exchange first.
  lab.victim->clear_inbox();
  lab.attacker->send_resolved(
      lab.victim->ip(),
      net::make_icmp_echo(lab.attacker->mac(), lab.attacker->ip(),
                          net::MacAddress{}, lab.victim->ip(), 42, 1));
  lab.run();
  bool got_arp = false, got_ping = false;
  for (const auto& p : lab.victim->received()) {
    if (p.arp() && p.arp()->op == net::ArpPayload::Op::Request) got_arp = true;
    if (p.icmp() && p.icmp()->ident == 42) {
      got_ping = true;
      EXPECT_EQ(p.dst_mac, lab.victim->mac());  // resolved, not placeholder
    }
  }
  EXPECT_TRUE(got_arp);
  EXPECT_TRUE(got_ping);
}

TEST(Host, SendResolvedDropsWhenTargetGone) {
  Lab lab;
  lab.victim->set_interface(false);
  lab.run(100_ms);
  lab.attacker->send_resolved(
      lab.victim->ip(),
      net::make_icmp_echo(lab.attacker->mac(), lab.attacker->ip(),
                          net::MacAddress{}, lab.victim->ip(), 43, 1));
  lab.run(2_s);  // resolve_timeout elapses, queue dropped silently
  lab.victim->set_interface(true);
  lab.run(200_ms);
  for (const auto& p : lab.victim->received()) {
    EXPECT_FALSE(p.icmp() && p.icmp()->ident == 43);
  }
}

TEST(Host, IpSpoofedProbeElicitsReplyTowardClaimedSource) {
  // The idle-scan enabler: a SYN claiming the zombie's IP (attacker's
  // MAC) must make the victim SYN-ACK the *zombie*, not the attacker.
  Lab lab;
  lab.zombie->clear_inbox();
  lab.attacker->send(net::make_tcp(lab.attacker->mac(), lab.zombie->ip(),
                                   lab.victim->mac(), lab.victim->ip(), 7777,
                                   80, net::TcpFlags{.syn = true}));
  lab.run();
  bool zombie_got_synack = false;
  for (const auto& p : lab.zombie->received()) {
    if (p.tcp() && p.tcp()->flags.syn && p.tcp()->flags.ack &&
        p.tcp()->dst_port == 7777) {
      zombie_got_synack = true;
    }
  }
  EXPECT_TRUE(zombie_got_synack);
  for (const auto& p : lab.attacker->received()) {
    EXPECT_FALSE(p.tcp() && p.tcp()->dst_port == 7777);
  }
}

// ---------------- NIC models ----------------

TEST(NicOpModel, MeansMatchPaper) {
  EXPECT_NEAR(NicOpModel::interface_flap().mean().to_millis_f(), 3.25, 0.01);
  EXPECT_NEAR(NicOpModel::identity_change().mean().to_millis_f(), 9.94, 0.01);
}

TEST(NicOpModel, SampledMeanApproximatesAnalytic) {
  sim::Rng rng{5};
  const NicOpModel m = NicOpModel::identity_change();
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += m.sample(rng).to_millis_f();
  EXPECT_NEAR(sum / n, 9.94, 0.3);
}

TEST(NicOpModel, IdentityChangeHasHeavyTail) {
  // Paper Fig. 4: trials out to ~160 ms.
  sim::Rng rng{6};
  const NicOpModel m = NicOpModel::identity_change();
  double max_ms = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    max_ms = std::max(max_ms, m.sample(rng).to_millis_f());
  }
  EXPECT_GT(max_ms, 60.0);
  EXPECT_LT(max_ms, 800.0);
}

// ---------------- Out-of-band channel ----------------

TEST(OobChannel, TransferDelayMatchesConfig) {
  sim::EventLoop loop;
  OutOfBandChannel ch{loop, sim::Rng{7}, OobChannelConfig{}};
  sim::SimTime delivered_at;
  ch.transfer(net::make_arp_request(net::MacAddress::host(1),
                                    net::Ipv4Address::host(1),
                                    net::Ipv4Address::host(2)),
              [&](net::Packet) { delivered_at = loop.now(); });
  loop.run();
  // 10 ms propagation + 1 ms codec, small jitter.
  EXPECT_NEAR(delivered_at.to_millis_f(), 11.0, 1.0);
  EXPECT_EQ(ch.transfers(), 1u);
}

TEST(OobChannel, SignalSchedulesAction) {
  sim::EventLoop loop;
  OutOfBandChannel ch{loop, sim::Rng{8}, OobChannelConfig{}};
  bool fired = false;
  ch.signal([&] { fired = true; });
  loop.run();
  EXPECT_TRUE(fired);
}

// ---------------- Liveness probes ----------------

LivenessProber::Config probe_cfg(ProbeType type) {
  LivenessProber::Config cfg;
  cfg.type = type;
  cfg.timeout = 35_ms;
  return cfg;
}

class ProbeSweep : public ::testing::TestWithParam<ProbeType> {};

TEST_P(ProbeSweep, DetectsLiveTarget) {
  Lab lab;
  LivenessProber::Config cfg = probe_cfg(GetParam());
  if (GetParam() == ProbeType::TcpIdleScan) {
    cfg.zombie = ZombieRef{lab.zombie->ip(), lab.zombie->mac()};
    cfg.timeout = 100_ms;
  }
  LivenessProber prober{lab.tb.loop(), lab.tb.fork_rng(), *lab.attacker, cfg};
  ProbeTarget target{lab.victim->ip(), lab.victim->mac(), 80};
  bool alive = false, done = false;
  prober.probe(target, [&](const ProbeOutcome& o) {
    alive = o.alive;
    done = true;
  });
  lab.run(1_s);
  ASSERT_TRUE(done);
  EXPECT_TRUE(alive);
}

TEST_P(ProbeSweep, DetectsDownTarget) {
  Lab lab;
  lab.victim->set_interface(false);
  lab.run(100_ms);
  LivenessProber::Config cfg = probe_cfg(GetParam());
  if (GetParam() == ProbeType::TcpIdleScan) {
    cfg.zombie = ZombieRef{lab.zombie->ip(), lab.zombie->mac()};
    cfg.timeout = 100_ms;
  }
  LivenessProber prober{lab.tb.loop(), lab.tb.fork_rng(), *lab.attacker, cfg};
  ProbeTarget target{lab.victim->ip(), lab.victim->mac(), 80};
  bool alive = true, done = false;
  prober.probe(target, [&](const ProbeOutcome& o) {
    alive = o.alive;
    done = true;
  });
  lab.run(1_s);
  ASSERT_TRUE(done);
  EXPECT_FALSE(alive);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ProbeSweep,
                         ::testing::Values(ProbeType::IcmpPing,
                                           ProbeType::TcpSyn,
                                           ProbeType::ArpPing,
                                           ProbeType::TcpIdleScan));

TEST(Probes, TimeoutBoundsDownDetection) {
  Lab lab;
  lab.victim->set_interface(false);
  lab.run(100_ms);
  LivenessProber prober{lab.tb.loop(), lab.tb.fork_rng(), *lab.attacker,
                        probe_cfg(ProbeType::ArpPing)};
  ProbeTarget target{lab.victim->ip(), lab.victim->mac(), 80};
  std::optional<ProbeOutcome> outcome;
  prober.probe(target, [&](const ProbeOutcome& o) { outcome = o; });
  lab.run(1_s);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_NEAR(outcome->duration().to_millis_f(), 35.0, 0.5);
}

TEST(Probes, ClosedPortStillProvesLiveness) {
  Lab lab;
  LivenessProber::Config cfg = probe_cfg(ProbeType::TcpSyn);
  LivenessProber prober{lab.tb.loop(), lab.tb.fork_rng(), *lab.attacker, cfg};
  ProbeTarget target{lab.victim->ip(), lab.victim->mac(), 8080};  // closed
  bool alive = false;
  prober.probe(target, [&](const ProbeOutcome& o) { alive = o.alive; });
  lab.run(1_s);
  EXPECT_TRUE(alive);  // RST is still an answer
}

TEST(Probes, ToolOverheadMatchesTableI) {
  sim::Rng rng{11};
  const struct {
    ProbeType type;
    double mean_ms;
    double sd_ms;
  } rows[] = {
      {ProbeType::IcmpPing, 0.91, 0.04},
      {ProbeType::TcpSyn, 492.3, 1.4},
      {ProbeType::ArpPing, 133.5, 1.6},
      {ProbeType::TcpIdleScan, 1.8, 0.1},
  };
  for (const auto& row : rows) {
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i) {
      samples.push_back(sample_tool_overhead(row.type, rng).to_millis_f());
    }
    const auto s = stats::summarize(samples);
    EXPECT_NEAR(s.mean, row.mean_ms, row.mean_ms * 0.02 + 0.02)
        << to_string(row.type);
    EXPECT_NEAR(s.stddev, row.sd_ms, row.sd_ms * 0.1 + 0.01)
        << to_string(row.type);
  }
}

TEST(Probes, StealthRanking) {
  EXPECT_EQ(stealth_of(ProbeType::IcmpPing), Stealth::Low);
  EXPECT_EQ(stealth_of(ProbeType::TcpSyn), Stealth::Medium);
  EXPECT_EQ(stealth_of(ProbeType::ArpPing), Stealth::High);
  EXPECT_EQ(stealth_of(ProbeType::TcpIdleScan), Stealth::VeryHigh);
  EXPECT_STREQ(to_string(Stealth::VeryHigh), "Very High");
  EXPECT_STREQ(to_string(ProbeType::ArpPing), "ARP ping");
}

// ---------------- Port probing attack ----------------

TEST(PortProbing, AcquiresMacAndClaimsIdentity) {
  Lab lab;
  PortProbingConfig cfg;
  cfg.victim_ip = lab.victim->ip();
  PortProbingAttack attack{lab.tb.loop(), lab.tb.fork_rng(), *lab.attacker,
                           cfg};
  const auto victim_mac = lab.victim->mac();
  attack.start();
  lab.run(1_s);
  ASSERT_TRUE(attack.timeline().victim_mac_acquired.has_value());
  EXPECT_FALSE(attack.identity_claimed());  // victim still up
  lab.victim->detach_link();
  lab.run(2_s);
  EXPECT_TRUE(attack.identity_claimed());
  EXPECT_EQ(lab.attacker->mac(), victim_mac);
  EXPECT_EQ(lab.attacker->ip(), cfg.victim_ip);
  const auto& tl = attack.timeline();
  ASSERT_TRUE(tl.victim_declared_down.has_value());
  ASSERT_TRUE(tl.final_probe_start.has_value());
  ASSERT_TRUE(tl.interface_up_as_victim.has_value());
  ASSERT_TRUE(tl.traffic_sent.has_value());
  EXPECT_LT(*tl.final_probe_start, *tl.victim_declared_down);
  EXPECT_LT(*tl.victim_declared_down, *tl.interface_up_as_victim);
  EXPECT_LE(*tl.interface_up_as_victim, *tl.traffic_sent);
}

TEST(PortProbing, ConfirmFailuresDelaysDeclaration) {
  Lab lab;
  PortProbingConfig cfg;
  cfg.victim_ip = lab.victim->ip();
  cfg.confirm_failures = 3;
  PortProbingAttack attack{lab.tb.loop(), lab.tb.fork_rng(), *lab.attacker,
                           cfg};
  attack.start();
  lab.run(1_s);
  const auto down_at = lab.tb.loop().now();
  lab.victim->detach_link();
  lab.run(2_s);
  ASSERT_TRUE(attack.timeline().victim_declared_down.has_value());
  // Three failed probes at a 50 ms cadence with 35 ms timeouts: well
  // over 100 ms must elapse.
  EXPECT_GT((*attack.timeline().victim_declared_down - down_at).to_millis_f(),
            100.0);
}

TEST(PortProbing, NoFalseDeclarationWhileVictimUp) {
  Lab lab;
  PortProbingConfig cfg;
  cfg.victim_ip = lab.victim->ip();
  PortProbingAttack attack{lab.tb.loop(), lab.tb.fork_rng(), *lab.attacker,
                           cfg};
  attack.start();
  lab.run(5_s);  // ~100 probes against a live victim
  EXPECT_FALSE(attack.timeline().victim_declared_down.has_value());
  EXPECT_GT(attack.probes_run(), 50u);
}

// ---------------- Alert flood ----------------

TEST(AlertFlood, SendsSpoofedIdentities) {
  Lab lab;
  AlertFloodAttack::Config cfg;
  for (std::uint32_t i = 0; i < 5; ++i) {
    cfg.identities.push_back(SpoofedIdentity{net::MacAddress::host(100 + i),
                                             net::Ipv4Address::host(100 + i)});
  }
  cfg.period = 10_ms;
  cfg.budget = 20;
  AlertFloodAttack flood{lab.tb.loop(), lab.tb.fork_rng(), *lab.attacker, cfg};
  flood.start();
  lab.run(1_s);
  EXPECT_EQ(flood.packets_sent(), 20u);
  // All five spoofed identities got bound to the attacker's port.
  int bound = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto rec = lab.tb.controller().host_tracker().find(
        net::MacAddress::host(100 + i));
    if (rec && rec->loc == of::Location{0x1, 1}) ++bound;
  }
  EXPECT_EQ(bound, 5);
}

TEST(AlertFlood, EmptyIdentityListIsNoop) {
  Lab lab;
  AlertFloodAttack flood{lab.tb.loop(), lab.tb.fork_rng(), *lab.attacker,
                         AlertFloodAttack::Config{}};
  flood.start();
  lab.run(100_ms);
  EXPECT_EQ(flood.packets_sent(), 0u);
}

}  // namespace
}  // namespace tmg::attack
