// Unit tests for the network model: addresses, packets, LLDP.
#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "crypto/xtea.hpp"
#include "net/lldp.hpp"
#include "net/packet.hpp"

namespace tmg::net {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// ---------------- MacAddress ----------------

TEST(MacAddress, ParseAndFormatRoundTrip) {
  const auto m = MacAddress::parse("aa:bb:cc:dd:ee:ff");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddress, ParseUppercase) {
  const auto m = MacAddress::parse("AA:BB:CC:00:11:22");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_string(), "aa:bb:cc:00:11:22");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:f").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:fff").has_value());
  EXPECT_FALSE(MacAddress::parse("gg:bb:cc:dd:ee:ff").has_value());
  EXPECT_FALSE(MacAddress::parse("aa-bb-cc-dd-ee-ff").has_value());
}

TEST(MacAddress, BroadcastAndMulticast) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  EXPECT_TRUE(MacAddress::lldp_multicast().is_multicast());
  EXPECT_FALSE(MacAddress::lldp_multicast().is_broadcast());
  EXPECT_FALSE(MacAddress::host(1).is_multicast());
}

TEST(MacAddress, HostAddressesAreDistinct) {
  EXPECT_NE(MacAddress::host(1), MacAddress::host(2));
  EXPECT_EQ(MacAddress::host(7), MacAddress::host(7));
}

TEST(MacAddress, U64AndHash) {
  const auto m = *MacAddress::parse("00:00:00:00:01:02");
  EXPECT_EQ(m.to_u64(), 0x0102u);
  EXPECT_EQ(std::hash<MacAddress>{}(m), std::hash<MacAddress>{}(m));
}

// ---------------- Ipv4Address ----------------

TEST(Ipv4Address, ParseAndFormatRoundTrip) {
  const auto a = Ipv4Address::parse("10.0.0.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "10.0.0.1");
  EXPECT_EQ(*a, Ipv4Address(10, 0, 0, 1));
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10..0.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.x").has_value());
}

TEST(Ipv4Address, SameSubnet) {
  const Ipv4Address a{10, 0, 0, 1};
  const Ipv4Address b{10, 0, 0, 200};
  const Ipv4Address c{10, 0, 1, 1};
  EXPECT_TRUE(a.same_subnet(b, 24));
  EXPECT_FALSE(a.same_subnet(c, 24));
  EXPECT_TRUE(a.same_subnet(c, 16));
  EXPECT_TRUE(a.same_subnet(c, 0));
}

TEST(Ipv4Address, HostFactory) {
  EXPECT_EQ(Ipv4Address::host(1).to_string(), "10.0.0.1");
  EXPECT_EQ(Ipv4Address::host(258).to_string(), "10.0.1.2");
}

// ---------------- Packet constructors ----------------

TEST(Packet, ArpRequestShape) {
  const Packet p = make_arp_request(MacAddress::host(1),
                                    Ipv4Address::host(1),
                                    Ipv4Address::host(2));
  EXPECT_EQ(p.ethertype, EtherType::Arp);
  EXPECT_TRUE(p.dst_mac.is_broadcast());
  ASSERT_NE(p.arp(), nullptr);
  EXPECT_EQ(p.arp()->op, ArpPayload::Op::Request);
  EXPECT_EQ(p.arp()->target_ip, Ipv4Address::host(2));
  EXPECT_FALSE(p.ip.has_value());
}

TEST(Packet, ArpReplyShape) {
  const Packet p =
      make_arp_reply(MacAddress::host(2), Ipv4Address::host(2),
                     MacAddress::host(1), Ipv4Address::host(1));
  ASSERT_NE(p.arp(), nullptr);
  EXPECT_EQ(p.arp()->op, ArpPayload::Op::Reply);
  EXPECT_EQ(p.dst_mac, MacAddress::host(1));
}

TEST(Packet, IcmpEchoShape) {
  const Packet p = make_icmp_echo(MacAddress::host(1), Ipv4Address::host(1),
                                  MacAddress::host(2), Ipv4Address::host(2),
                                  7, 3);
  ASSERT_NE(p.icmp(), nullptr);
  EXPECT_EQ(p.icmp()->type, IcmpPayload::Type::EchoRequest);
  EXPECT_EQ(p.icmp()->ident, 7);
  ASSERT_TRUE(p.ip.has_value());
  EXPECT_EQ(p.ip->protocol, IpProto::Icmp);
}

TEST(Packet, TcpShapeAndFlags) {
  const Packet p = make_tcp(MacAddress::host(1), Ipv4Address::host(1),
                            MacAddress::host(2), Ipv4Address::host(2), 40000,
                            80, TcpFlags{.syn = true}, 0);
  ASSERT_NE(p.tcp(), nullptr);
  EXPECT_TRUE(p.tcp()->flags.syn);
  EXPECT_FALSE(p.tcp()->flags.ack);
  EXPECT_EQ(p.tcp()->flags.to_string(), "S");
  EXPECT_EQ((TcpFlags{.syn = true, .ack = true}.to_string()), "SA");
  EXPECT_EQ(TcpFlags{}.to_string(), "-");
}

TEST(Packet, TraceIdsAreUnique) {
  const Packet a = make_arp_request(MacAddress::host(1),
                                    Ipv4Address::host(1),
                                    Ipv4Address::host(2));
  const Packet b = make_arp_request(MacAddress::host(1),
                                    Ipv4Address::host(1),
                                    Ipv4Address::host(2));
  EXPECT_NE(a.trace_id, b.trace_id);
}

TEST(Packet, WireSizeRespectsEthernetMinimum) {
  const Packet p = make_arp_request(MacAddress::host(1),
                                    Ipv4Address::host(1),
                                    Ipv4Address::host(2));
  EXPECT_GE(p.wire_size(), 64u);
}

TEST(Packet, WireSizeGrowsWithPayload) {
  const Packet small = make_raw(MacAddress::host(1), Ipv4Address::host(1),
                                MacAddress::host(2), Ipv4Address::host(2),
                                "x", 10);
  const Packet big = make_raw(MacAddress::host(1), Ipv4Address::host(1),
                              MacAddress::host(2), Ipv4Address::host(2),
                              "x", 1000);
  EXPECT_GT(big.wire_size(), small.wire_size());
  EXPECT_EQ(big.wire_size(), 14u + 20u + 1000u);
}

TEST(Packet, DescribeMentionsKeyFields) {
  const Packet p = make_icmp_echo(MacAddress::host(1), Ipv4Address::host(1),
                                  MacAddress::host(2), Ipv4Address::host(2),
                                  7, 3);
  const std::string d = p.describe();
  EXPECT_NE(d.find("ICMP"), std::string::npos);
  EXPECT_NE(d.find("10.0.0.1"), std::string::npos);
}

// ---------------- LLDP ----------------

TEST(Lldp, SerializeParseRoundTrip) {
  const LldpPacket in{0x1234, 7, 120};
  const auto parsed = LldpPacket::parse(in.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, in);
}

TEST(Lldp, ParseRejectsTruncated) {
  const auto bytes = LldpPacket{0x1, 1}.serialize();
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const auto parsed = LldpPacket::parse(
        std::span<const std::uint8_t>(bytes.data(), bytes.size() - cut));
    EXPECT_FALSE(parsed.has_value()) << "cut=" << cut;
  }
}

TEST(Lldp, ParseRejectsEmpty) {
  EXPECT_FALSE(LldpPacket::parse({}).has_value());
}

TEST(Lldp, SignVerify) {
  const crypto::Key key = crypto::Key::derive(bytes_of("ctl"));
  LldpPacket p{0xAB, 3};
  EXPECT_FALSE(p.has_authenticator());
  EXPECT_FALSE(p.verify(key));
  p.sign(key);
  EXPECT_TRUE(p.has_authenticator());
  EXPECT_TRUE(p.verify(key));
}

TEST(Lldp, VerifyFailsWithWrongKey) {
  LldpPacket p{0xAB, 3};
  p.sign(crypto::Key::derive(bytes_of("right")));
  EXPECT_FALSE(p.verify(crypto::Key::derive(bytes_of("wrong"))));
}

TEST(Lldp, TamperedAuthenticatorFailsVerification) {
  const crypto::Key key = crypto::Key::derive(bytes_of("ctl"));
  LldpPacket p{0xAB, 3};
  p.sign(key);
  p.tamper_authenticator();
  EXPECT_FALSE(p.verify(key));
}

TEST(Lldp, SignatureSurvivesSerialization) {
  // The relay attack depends on this: a bit-exact relayed packet still
  // verifies, because the attacker never modifies it.
  const crypto::Key key = crypto::Key::derive(bytes_of("ctl"));
  LldpPacket p{0xAB, 3};
  p.sign(key);
  const auto relayed = LldpPacket::parse(p.serialize());
  ASSERT_TRUE(relayed.has_value());
  EXPECT_TRUE(relayed->verify(key));
}

TEST(Lldp, ForgedContentsFailVerification) {
  // An attacker cannot craft a *new* chassis/port with a valid MAC.
  const crypto::Key key = crypto::Key::derive(bytes_of("ctl"));
  LldpPacket genuine{0xAB, 3};
  genuine.sign(key);
  // Splice the genuine authenticator onto different core TLVs.
  LldpPacket forged{0xCD, 4};
  auto bytes = forged.serialize();
  (void)bytes;
  forged.tamper_authenticator();  // any constructed authenticator differs
  EXPECT_FALSE(forged.verify(key));
}

TEST(Lldp, TimestampRoundTrip) {
  const crypto::XteaKey key = crypto::XteaKey::derive(bytes_of("ts"));
  LldpPacket p{0x2, 5};
  EXPECT_FALSE(p.has_timestamp());
  EXPECT_FALSE(p.decrypt_timestamp(key).has_value());
  const auto departure = sim::SimTime::from_nanos(123456789);
  p.set_encrypted_timestamp(key, 42, departure);
  EXPECT_TRUE(p.has_timestamp());
  const auto out = p.decrypt_timestamp(key);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, departure);
}

TEST(Lldp, TimestampSurvivesSerialization) {
  const crypto::XteaKey key = crypto::XteaKey::derive(bytes_of("ts"));
  LldpPacket p{0x2, 5};
  p.set_encrypted_timestamp(key, 43, sim::SimTime::from_nanos(987654321));
  const auto relayed = LldpPacket::parse(p.serialize());
  ASSERT_TRUE(relayed.has_value());
  const auto out = relayed->decrypt_timestamp(key);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->count_nanos(), 987654321);
}

TEST(Lldp, TamperedTimestampDecryptsToGarbage) {
  // The attacker cannot rewrite the sealed departure time to mask relay
  // latency: a flipped ciphertext bit garbles the decrypted value.
  const crypto::XteaKey key = crypto::XteaKey::derive(bytes_of("ts"));
  LldpPacket p{0x2, 5};
  const auto departure = sim::SimTime::from_nanos(1'000'000);
  p.set_encrypted_timestamp(key, 44, departure);
  p.tamper_timestamp();
  const auto out = p.decrypt_timestamp(key);
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(*out, departure);
}

TEST(Lldp, WrongTimestampKeyGarbles) {
  LldpPacket p{0x2, 5};
  p.set_encrypted_timestamp(crypto::XteaKey::derive(bytes_of("a")), 1,
                            sim::SimTime::from_nanos(55));
  const auto out = p.decrypt_timestamp(crypto::XteaKey::derive(bytes_of("b")));
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(out->count_nanos(), 55);
}

/// Property sweep: round-trip across a range of chassis/port values,
/// with and without optional TLVs.
class LldpRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, bool,
                                                 bool>> {};

TEST_P(LldpRoundTrip, SerializeParse) {
  const auto [chassis, port, with_auth, with_ts] = GetParam();
  const crypto::Key akey = crypto::Key::derive(bytes_of("a"));
  const crypto::XteaKey tkey = crypto::XteaKey::derive(bytes_of("t"));
  LldpPacket p{chassis, static_cast<PortNo>(port)};
  if (with_auth) p.sign(akey);
  if (with_ts) p.set_encrypted_timestamp(tkey, chassis ^ 0x5a5a, sim::SimTime::from_nanos(777));
  const auto parsed = LldpPacket::parse(p.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, p);
  EXPECT_EQ(parsed->verify(akey), with_auth);
  EXPECT_EQ(parsed->decrypt_timestamp(tkey).has_value(), with_ts);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LldpRoundTrip,
    ::testing::Combine(::testing::Values(0x0ull, 0x1ull, 0xffffull,
                                         0xffffffffffffffffull),
                       ::testing::Values(1, 2, 255, 65535),
                       ::testing::Bool(), ::testing::Bool()));

TEST(Lldp, MakeLldpFrame) {
  const Packet p =
      make_lldp_frame(MacAddress::lldp_multicast(), LldpPacket{0x9, 2});
  EXPECT_TRUE(p.is_lldp());
  ASSERT_NE(p.lldp(), nullptr);
  EXPECT_EQ(p.lldp()->chassis_id(), 0x9u);
  EXPECT_EQ(p.dst_mac, MacAddress::lldp_multicast());
}


// ---------------- 802.1x auth frames / link-local groups ----------------

namespace authtests {

TEST(MacAddress, LinkLocalGroupRange) {
  EXPECT_TRUE(MacAddress::lldp_multicast().is_link_local_group());
  EXPECT_TRUE(MacAddress::pae_group().is_link_local_group());
  EXPECT_FALSE(MacAddress::broadcast().is_link_local_group());
  EXPECT_FALSE(MacAddress::host(1).is_link_local_group());
  // 01:80:c2:00:00:10 is outside the bridge-filtered block.
  EXPECT_FALSE(MacAddress({0x01, 0x80, 0xc2, 0x00, 0x00, 0x10})
                   .is_link_local_group());
}

TEST(AuthFrame, RoundTripsToken) {
  const Packet p = make_auth_frame(MacAddress::host(1),
                                   Ipv4Address::host(1),
                                   0x1122334455667788ULL);
  EXPECT_EQ(p.dst_mac, MacAddress::pae_group());
  const auto token = auth_token_of(p);
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(*token, 0x1122334455667788ULL);
}

TEST(AuthFrame, NonAuthPacketsYieldNothing) {
  EXPECT_FALSE(auth_token_of(make_arp_request(MacAddress::host(1),
                                              Ipv4Address::host(1),
                                              Ipv4Address::host(2)))
                   .has_value());
  // Right label, wrong payload size.
  Packet p = make_raw(MacAddress::host(1), Ipv4Address::host(1),
                      MacAddress::pae_group(), Ipv4Address::any(),
                      auth_frame_label(), 64);
  EXPECT_FALSE(auth_token_of(p).has_value());
}

}  // namespace authtests

}  // namespace
}  // namespace tmg::net
