// Property-based tests: randomized sweeps checking invariants against
// reference implementations (seeded, so failures are reproducible).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <bit>
#include <queue>
#include <set>

#include "crypto/hmac.hpp"
#include "crypto/xtea.hpp"
#include "net/lldp.hpp"
#include "of/flow_table.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"
#include "stats/histogram.hpp"
#include "stats/latency_window.hpp"
#include "topo/graph.hpp"

namespace tmg {
namespace {

using namespace tmg::sim::literals;
using sim::Duration;
using sim::EventLoop;
using sim::Rng;
using sim::SimTime;

// ---------------- LLDP wire format ----------------

class LldpFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LldpFuzz, RandomBytesNeverCrashAndRoundTripHolds) {
  Rng rng{GetParam()};
  // (a) random garbage must parse to nullopt or to *something*, never
  // crash or read out of bounds.
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)net::LldpPacket::parse(junk);
  }
  // (b) serialize -> parse is the identity for random valid packets,
  // with random combinations of optional TLVs.
  const crypto::Key akey = crypto::Key::derive({{0x1, 0x2}});
  const crypto::XteaKey tkey = crypto::XteaKey::derive({{0x3, 0x4}});
  for (int i = 0; i < 500; ++i) {
    net::LldpPacket p{rng.next_u64(),
                      static_cast<net::PortNo>(rng.uniform_int(0, 65535)),
                      static_cast<std::uint16_t>(rng.uniform_int(0, 65535))};
    if (rng.chance(0.5)) p.sign(akey);
    if (rng.chance(0.5)) {
      p.set_encrypted_timestamp(
          tkey, rng.next_u64(),
          SimTime::from_nanos(static_cast<std::int64_t>(rng.next_u64() >> 1)));
    }
    const auto parsed = net::LldpPacket::parse(p.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  // (c) single-bit corruption of a signed packet must break the MAC or
  // the structure — never yield a different packet that still verifies.
  for (int i = 0; i < 300; ++i) {
    net::LldpPacket p{rng.next_u64(), 7};
    p.sign(akey);
    auto bytes = p.serialize();
    const std::size_t bit = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size() * 8 - 1)));
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto parsed = net::LldpPacket::parse(bytes);
    if (parsed && parsed->verify(akey)) {
      // Only acceptable if the flip landed in ignored padding, i.e. the
      // packet is bit-identical in content.
      EXPECT_EQ(*parsed, p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LldpFuzz, ::testing::Values(1, 2, 3, 4));

// ---------------- FlowTable vs. reference model ----------------

namespace reference {

struct Entry {
  of::FlowEntry e;
  std::uint64_t order;  // insertion order for stable tie-break
};

/// Dumb-but-obviously-correct lookup: scan everything.
const of::FlowEntry* lookup(const std::vector<Entry>& entries,
                            const net::Packet& pkt, of::PortNo in_port) {
  const Entry* best = nullptr;
  for (const auto& entry : entries) {
    if (!entry.e.match.matches(pkt, in_port)) continue;
    if (!best || entry.e.priority > best->e.priority ||
        (entry.e.priority == best->e.priority &&
         entry.order < best->order)) {
      best = &entry;
    }
  }
  return best ? &best->e : nullptr;
}

}  // namespace reference

class FlowTableModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableModel, LookupAgreesWithReference) {
  Rng rng{GetParam()};
  of::FlowTable table;
  std::vector<reference::Entry> model;
  std::uint64_t order = 0;

  const auto random_match = [&]() {
    of::FlowMatch m;
    if (rng.chance(0.4)) m.in_port = static_cast<of::PortNo>(rng.uniform_int(1, 3));
    if (rng.chance(0.4)) m.src_mac = net::MacAddress::host(
        static_cast<std::uint32_t>(rng.uniform_int(1, 4)));
    if (rng.chance(0.4)) m.dst_mac = net::MacAddress::host(
        static_cast<std::uint32_t>(rng.uniform_int(1, 4)));
    if (rng.chance(0.3)) m.src_ip = net::Ipv4Address::host(
        static_cast<std::uint32_t>(rng.uniform_int(1, 4)));
    return m;
  };

  for (int i = 0; i < 60; ++i) {
    of::FlowEntry e;
    e.match = random_match();
    e.priority = static_cast<std::uint16_t>(rng.uniform_int(1, 5) * 100);
    e.action = of::FlowAction::output(
        static_cast<of::PortNo>(rng.uniform_int(1, 3)));
    e.cookie = static_cast<std::uint64_t>(i);
    // Mirror OpenFlow replace semantics in the model.
    bool replaced = false;
    for (auto& m : model) {
      if (m.e.priority == e.priority && m.e.match == e.match) {
        m.e = e;
        replaced = true;
        break;
      }
    }
    if (!replaced) model.push_back({e, order++});
    table.add(e, SimTime::zero());
  }

  for (int i = 0; i < 500; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    const auto dst = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    const auto port = static_cast<of::PortNo>(rng.uniform_int(1, 3));
    const net::Packet pkt = net::make_icmp_echo(
        net::MacAddress::host(src), net::Ipv4Address::host(src),
        net::MacAddress::host(dst), net::Ipv4Address::host(dst), 1, 1);
    const of::FlowEntry* got = table.lookup(pkt, port, SimTime::zero());
    const of::FlowEntry* want = reference::lookup(model, pkt, port);
    ASSERT_EQ(got != nullptr, want != nullptr) << "query " << i;
    if (got) {
      EXPECT_EQ(got->cookie, want->cookie) << "query " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableModel,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------- EventLoop ordering ----------------

class EventLoopOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventLoopOrdering, ExecutionRespectsTimeThenInsertion) {
  Rng rng{GetParam()};
  EventLoop loop;
  struct Planned {
    std::int64_t at_ms;
    int id;
    bool cancelled;
  };
  std::vector<Planned> plan;
  std::vector<int> executed;
  std::vector<sim::TimerHandle> handles;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t at = rng.uniform_int(0, 20);  // many ties
    plan.push_back({at, i, false});
    handles.push_back(loop.schedule_at(
        SimTime::zero() + Duration::millis(at),
        [&executed, i] { executed.push_back(i); }));
  }
  for (int i = 0; i < 200; ++i) {
    if (rng.chance(0.25)) {
      plan[static_cast<std::size_t>(i)].cancelled = true;
      handles[static_cast<std::size_t>(i)].cancel();
    }
  }
  loop.run();

  std::vector<int> expected;
  std::vector<Planned> sorted = plan;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Planned& a, const Planned& b) {
                     return a.at_ms < b.at_ms;
                   });
  for (const auto& p : sorted) {
    if (!p.cancelled) expected.push_back(p.id);
  }
  EXPECT_EQ(executed, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventLoopOrdering,
                         ::testing::Values(5, 6, 7));

// ---------------- Topology BFS vs. Floyd-Warshall ----------------

class GraphPaths : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphPaths, BfsLengthMatchesFloydWarshall) {
  Rng rng{GetParam()};
  topo::TopologyGraph g;
  constexpr int kNodes = 8;
  constexpr int kInf = 1'000'000;
  int dist[kNodes + 1][kNodes + 1];
  for (int i = 1; i <= kNodes; ++i) {
    for (int j = 1; j <= kNodes; ++j) dist[i][j] = i == j ? 0 : kInf;
  }
  std::uint16_t next_port = 1;
  for (int e = 0; e < 12; ++e) {
    const auto a = static_cast<topo::Dpid>(rng.uniform_int(1, kNodes));
    const auto b = static_cast<topo::Dpid>(rng.uniform_int(1, kNodes));
    if (a == b) continue;
    g.add_link(topo::Location{a, next_port++},
               topo::Location{b, next_port++});
    dist[a][b] = std::min(dist[a][b], 1);
    dist[b][a] = std::min(dist[b][a], 1);
  }
  for (int k = 1; k <= kNodes; ++k) {
    for (int i = 1; i <= kNodes; ++i) {
      for (int j = 1; j <= kNodes; ++j) {
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }
  for (int i = 1; i <= kNodes; ++i) {
    for (int j = 1; j <= kNodes; ++j) {
      const auto path = g.path(static_cast<topo::Dpid>(i),
                               static_cast<topo::Dpid>(j));
      if (dist[i][j] >= kInf) {
        EXPECT_FALSE(path.has_value()) << i << "->" << j;
      } else {
        ASSERT_TRUE(path.has_value()) << i << "->" << j;
        EXPECT_EQ(static_cast<int>(path->size()), dist[i][j])
            << i << "->" << j;
        // The hop sequence must be a real walk over existing links.
        topo::Dpid cur = static_cast<topo::Dpid>(i);
        for (const auto& hop : *path) {
          EXPECT_EQ(hop.from.dpid, cur);
          EXPECT_TRUE(g.has_link(hop.from, hop.to));
          cur = hop.to.dpid;
        }
        EXPECT_EQ(cur, static_cast<topo::Dpid>(j));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPaths,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// ---------------- LatencyWindow vs. recompute ----------------

class WindowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowProperty, ThresholdAlwaysMatchesRetainedSamples) {
  Rng rng{GetParam()};
  stats::LatencyWindow w{17, 3.0, 5};
  std::vector<double> shadow;  // last 17 accepted samples
  for (int i = 0; i < 400; ++i) {
    const double x = rng.lognormal(1.6, 0.4);
    w.add(x);
    shadow.push_back(x);
    if (shadow.size() > 17) shadow.erase(shadow.begin());
    EXPECT_EQ(w.samples(), shadow);
    if (shadow.size() >= 5) {
      const auto iqr = stats::compute_iqr(shadow);
      ASSERT_TRUE(w.threshold().has_value());
      EXPECT_DOUBLE_EQ(*w.threshold(), iqr.upper_fence(3.0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowProperty, ::testing::Values(9, 10));

// ---------------- Crypto properties ----------------

class CryptoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CryptoProperty, Sha256ChunkingInvariant) {
  // Hashing is invariant under arbitrary input chunking.
  Rng rng{GetParam()};
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(rng.uniform_int(0, 300)));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto oneshot = crypto::Sha256::hash(data);
    crypto::Sha256 ctx;
    std::size_t off = 0;
    while (off < data.size()) {
      const auto take = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(data.size() - off)));
      ctx.update({data.data() + off, take});
      off += take;
    }
    EXPECT_EQ(ctx.finish(), oneshot);
  }
}

TEST_P(CryptoProperty, XteaRoundTripAndAvalanche) {
  Rng rng{GetParam() ^ 0x7e47};
  const crypto::XteaKey key = crypto::XteaKey::derive({{0x42}});
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t pt = rng.next_u64();
    const std::uint64_t ct = crypto::xtea_encrypt_block(key, pt);
    EXPECT_EQ(crypto::xtea_decrypt_block(key, ct), pt);
    // One flipped plaintext bit avalanches broadly (>= 16 of 64 bits).
    const std::uint64_t ct2 = crypto::xtea_encrypt_block(
        key, pt ^ (1ULL << rng.uniform_int(0, 63)));
    const int flipped = std::popcount(ct ^ ct2);
    EXPECT_GE(flipped, 16);
  }
}

TEST_P(CryptoProperty, HmacDistinguishesEverything) {
  // Different key or different message => different MAC (no collisions
  // across a random corpus).
  Rng rng{GetParam() ^ 0xaac};
  std::set<std::string> macs;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> key_bytes(16), msg(32);
    for (auto& b : key_bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto mac =
        crypto::hmac_sha256(crypto::Key{key_bytes}, msg);
    macs.insert(crypto::to_hex(mac));
  }
  EXPECT_EQ(macs.size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoProperty, ::testing::Values(21, 22));

// ---------------- Histogram conservation ----------------

TEST(HistogramProperty, EverySampleLandsExactlyOnce) {
  Rng rng{77};
  stats::Histogram h{-10.0, 10.0, 13};
  const int n = 5000;
  for (int i = 0; i < n; ++i) h.add(rng.normal(0.0, 8.0));  // many clamped
  std::size_t total = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.count(b);
  EXPECT_EQ(total, static_cast<std::size_t>(n));
  EXPECT_EQ(h.total(), static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace tmg
