// Unit tests for the statistics module.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/flow_stats.hpp"
#include "stats/histogram.hpp"
#include "stats/latency_window.hpp"
#include "stats/quantile.hpp"
#include "stats/streaming_quantile.hpp"

namespace tmg::stats {
namespace {

// ---------------- Descriptive ----------------

TEST(Descriptive, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  // Sample stddev with n-1 denominator.
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Descriptive, SingleSample) {
  const std::vector<double> xs{3.5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(Descriptive, SummaryFields) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(Descriptive, RunningStatsMatchesBatch) {
  sim::Rng rng{3};
  RunningStats rs;
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(10.0, 2.0);
    rs.add(x);
    xs.push_back(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
}

TEST(Descriptive, RunningStatsEmpty) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(Descriptive, FormatMeanPm) {
  Summary s;
  s.mean = 0.912;
  s.stddev = 0.041;
  EXPECT_EQ(format_mean_pm(s, "ms"), "0.91 ± 0.04 ms");
  EXPECT_EQ(format_mean_pm(s, "ms", 1), "0.9 ± 0.0 ms");
}

// ---------------- Quantiles ----------------

TEST(Quantile, SortedLinearInterpolation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 1.75);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.9), 7.0);
}

TEST(Quantile, IqrOfUniformSequence) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  const Iqr iqr = compute_iqr(xs);
  EXPECT_DOUBLE_EQ(iqr.q1, 25.0);
  EXPECT_DOUBLE_EQ(iqr.q3, 75.0);
  EXPECT_DOUBLE_EQ(iqr.range(), 50.0);
  EXPECT_DOUBLE_EQ(iqr.upper_fence(3.0), 225.0);
  EXPECT_DOUBLE_EQ(iqr.upper_fence(1.5), 150.0);
}

TEST(Quantile, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.99), 2.326347874, 1e-6);
  EXPECT_NEAR(normal_quantile(0.01), -2.326347874, 1e-6);
  EXPECT_NEAR(normal_quantile(0.999), 3.090232306, 1e-6);
  EXPECT_NEAR(normal_quantile(0.001), -3.090232306, 1e-6);
}

TEST(Quantile, NormalQuantileSymmetric) {
  for (double p : {0.05, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-8);
  }
}

TEST(Quantile, PaperProbeTimeout) {
  // Paper Sec. V-B1: RTT ~ N(20ms, 5ms), 1% false-positive rate. The
  // analytic 99th percentile is ~31.6 ms; the paper rounds up to 35 ms.
  const double t = probe_timeout_for_fp_rate(20.0, 5.0, 0.01);
  EXPECT_NEAR(t, 31.63, 0.05);
  EXPECT_LE(t, 35.0);
}

TEST(Quantile, ProbeTimeoutFromSamplesMatchesAnalytic) {
  sim::Rng rng{9};
  std::vector<double> rtts;
  for (int i = 0; i < 100'000; ++i) rtts.push_back(rng.normal(20.0, 5.0));
  const double empirical = probe_timeout_from_samples(rtts, 0.01);
  EXPECT_NEAR(empirical, probe_timeout_for_fp_rate(20.0, 5.0, 0.01), 0.3);
}

/// Property sweep: the empirical false-positive rate at the derived
/// timeout matches the requested rate.
class TimeoutFpSweep : public ::testing::TestWithParam<double> {};

TEST_P(TimeoutFpSweep, EmpiricalFpMatchesRequested) {
  const double fp = GetParam();
  const double timeout = probe_timeout_for_fp_rate(20.0, 5.0, fp);
  sim::Rng rng{static_cast<std::uint64_t>(fp * 1e6) + 1};
  int late = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    if (rng.normal(20.0, 5.0) > timeout) ++late;
  }
  EXPECT_NEAR(static_cast<double>(late) / n, fp, fp * 0.2 + 0.0005);
}

INSTANTIATE_TEST_SUITE_P(FpRates, TimeoutFpSweep,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1, 0.25));

// ---------------- LatencyWindow ----------------

TEST(LatencyWindow, NoThresholdUntilWarm) {
  LatencyWindow w{100, 3.0, 5};
  for (int i = 0; i < 4; ++i) {
    w.add(5.0);
    EXPECT_FALSE(w.threshold().has_value());
    EXPECT_FALSE(w.is_outlier(100.0));  // nothing to reject against yet
  }
  w.add(5.0);
  EXPECT_TRUE(w.threshold().has_value());
}

TEST(LatencyWindow, FlagsOutlierAboveFence) {
  LatencyWindow w{100, 3.0, 5};
  sim::Rng rng{4};
  for (int i = 0; i < 50; ++i) w.add(rng.normal(5.0, 0.3));
  EXPECT_FALSE(w.is_outlier(5.5));
  EXPECT_TRUE(w.is_outlier(16.0));  // a 10ms-relay link vs 5ms population
}

TEST(LatencyWindow, ThresholdIsQ3Plus3Iqr) {
  LatencyWindow w{100, 3.0, 5};
  for (int i = 0; i <= 100; ++i) w.add(static_cast<double>(i));
  const Iqr iqr = compute_iqr(w.samples());
  ASSERT_TRUE(w.threshold().has_value());
  EXPECT_DOUBLE_EQ(*w.threshold(), iqr.upper_fence(3.0));
}

TEST(LatencyWindow, EvictsOldestWhenFull) {
  LatencyWindow w{3, 3.0, 1};
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  w.add(4.0);  // evicts 1.0
  const auto s = w.samples();
  EXPECT_EQ(s, (std::vector<double>{2.0, 3.0, 4.0}));
  EXPECT_EQ(w.size(), 3u);
}

TEST(LatencyWindow, SamplesPreserveInsertionOrderAfterWrap) {
  LatencyWindow w{4, 3.0, 1};
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) w.add(x);
  EXPECT_EQ(w.samples(), (std::vector<double>{3.0, 4.0, 5.0, 6.0}));
}

TEST(LatencyWindow, ClearResets) {
  LatencyWindow w{10, 3.0, 2};
  w.add(1.0);
  w.add(2.0);
  ASSERT_TRUE(w.warmed_up());
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.warmed_up());
  EXPECT_FALSE(w.threshold().has_value());
}

TEST(LatencyWindow, AdaptsAfterLatencyShift) {
  // A window full of 5ms samples rejects 20ms; if the link genuinely
  // changes and 8ms samples become the norm, the threshold tracks it.
  LatencyWindow w{20, 3.0, 5};
  for (int i = 0; i < 20; ++i) w.add(5.0 + 0.01 * i);
  EXPECT_TRUE(w.is_outlier(8.0));
  for (int i = 0; i < 20; ++i) w.add(8.0 + 0.01 * i);
  EXPECT_FALSE(w.is_outlier(8.0));
}

// ---------------- Histogram ----------------

TEST(Histogram, BinAssignment) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(5.5);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h{0.0, 10.0, 10};
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h{10.0, 20.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 20.0);
}

TEST(Histogram, AddAllAndCsv) {
  Histogram h{0.0, 4.0, 2};
  const std::vector<double> xs{0.5, 1.0, 3.0};
  h.add_all(xs);
  const std::string csv = h.to_csv();
  EXPECT_NE(csv.find("0.000000,2.000000,2"), std::string::npos);
  EXPECT_NE(csv.find("2.000000,4.000000,1"), std::string::npos);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

// ---------------------------------------------------------------------
// StreamingQuantile (P2 estimator + exact small-sample fallback)
// ---------------------------------------------------------------------

TEST(StreamingQuantile, ExactModeMatchesBatchQuantileBitForBit) {
  // Below exact_limit the estimator defers to stats::quantile, so short
  // runs (every per-cell figure bench) lose nothing to the streaming
  // machinery — not even a ULP.
  sim::Rng rng{101};
  StreamingQuantile sq{0.9, 512};
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.lognormal(3.0, 0.7);
    samples.push_back(x);
    sq.add(x);
  }
  EXPECT_TRUE(sq.exact());
  EXPECT_EQ(sq.count(), 400u);
  EXPECT_DOUBLE_EQ(sq.value(), quantile(samples, 0.9));
  EXPECT_DOUBLE_EQ(sq.min(), *std::min_element(samples.begin(),
                                               samples.end()));
  EXPECT_DOUBLE_EQ(sq.max(), *std::max_element(samples.begin(),
                                               samples.end()));
}

TEST(StreamingQuantile, P2TracksExactQuantileOnRandomizedInputs) {
  // Past the collapse the five markers must stay close to the exact
  // batch quantile. Tolerance is relative to the distribution's scale
  // (P2's documented regime for smooth unimodal inputs).
  for (const double q : {0.5, 0.9, 0.99}) {
    for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
      sim::Rng rng{seed};
      StreamingQuantile sq{q, 64};
      std::vector<double> samples;
      for (int i = 0; i < 50000; ++i) {
        const double x = rng.normal(100.0, 15.0);
        samples.push_back(x);
        sq.add(x);
      }
      EXPECT_FALSE(sq.exact());
      const double exact = quantile(samples, q);
      EXPECT_NEAR(sq.value(), exact, 1.5)
          << "q=" << q << " seed=" << seed;
      EXPECT_DOUBLE_EQ(sq.min(), *std::min_element(samples.begin(),
                                                   samples.end()));
      EXPECT_DOUBLE_EQ(sq.max(), *std::max_element(samples.begin(),
                                                   samples.end()));
    }
  }
}

TEST(StreamingQuantile, HeavyTailP99StaysWithinRelativeTolerance) {
  sim::Rng rng{42};
  StreamingQuantile sq{0.99, 128};
  std::vector<double> samples;
  for (int i = 0; i < 30000; ++i) {
    const double x = rng.lognormal(2.0, 0.5);
    samples.push_back(x);
    sq.add(x);
  }
  const double exact = quantile(samples, 0.99);
  EXPECT_NEAR(sq.value(), exact, 0.05 * exact);
}

TEST(StreamingQuantile, MergeIsDeterministicAndOrderSensitiveByDesign) {
  // Chunked merging (the TrialRunner::reduce contract): folding a fixed
  // sample stream through fixed chunk boundaries and merging in chunk
  // order must give bit-identical state on every run.
  const auto run = [] {
    sim::Rng rng{55};
    std::vector<StreamingQuantile> chunks;
    for (int c = 0; c < 8; ++c) {
      StreamingQuantile part{0.9, 32};
      for (int i = 0; i < 400; ++i) part.add(rng.normal(50.0, 9.0));
      chunks.push_back(part);
    }
    StreamingQuantile total{0.9, 32};
    for (const auto& part : chunks) total.merge(part);
    return total;
  };
  const StreamingQuantile a = run();
  const StreamingQuantile b = run();
  EXPECT_EQ(a.count(), b.count());
  // Bit-level equality, not EXPECT_DOUBLE_EQ's ULP tolerance: the whole
  // point is byte-identical output across repeat runs.
  EXPECT_TRUE(a.value() == b.value());
  EXPECT_TRUE(a.min() == b.min());
  EXPECT_TRUE(a.max() == b.max());
}

TEST(StreamingQuantile, MergeExactIntoExactConcatenates) {
  StreamingQuantile a{0.5, 512};
  StreamingQuantile b{0.5, 512};
  std::vector<double> all;
  for (int i = 0; i < 20; ++i) {
    a.add(i);
    all.push_back(i);
  }
  for (int i = 100; i < 130; ++i) {
    b.add(i);
    all.push_back(i);
  }
  a.merge(b);
  EXPECT_TRUE(a.exact());
  EXPECT_EQ(a.count(), 50u);
  EXPECT_DOUBLE_EQ(a.value(), quantile(all, 0.5));
}

TEST(StreamingQuantile, MergedCollapsedEstimateTracksPooledExact) {
  // Two collapsed halves of one distribution merged together must land
  // near the pooled exact quantile (the CDF-blend path).
  sim::Rng rng{77};
  StreamingQuantile a{0.9, 64};
  StreamingQuantile b{0.9, 64};
  std::vector<double> pooled;
  for (int i = 0; i < 8000; ++i) {
    const double x = rng.normal(200.0, 20.0);
    pooled.push_back(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  EXPECT_FALSE(a.exact());
  EXPECT_FALSE(b.exact());
  a.merge(b);
  EXPECT_EQ(a.count(), 8000u);
  const double exact = quantile(pooled, 0.9);
  EXPECT_NEAR(a.value(), exact, 2.5);
  EXPECT_DOUBLE_EQ(a.min(), *std::min_element(pooled.begin(), pooled.end()));
  EXPECT_DOUBLE_EQ(a.max(), *std::max_element(pooled.begin(), pooled.end()));
}

TEST(StreamingQuantile, DegenerateMarkerGapsNeverPoisonTheEstimate) {
  // Extreme quantile levels seed adjacent markers almost on top of each
  // other right after the collapse (q=0.001 with exact_limit 8 starts
  // positions at 1, 1.004, 1.008, ...) — the regime where the parabolic
  // step's off-movement-side position gap can degenerate toward zero.
  // A division by a ~0 gap yields inf/NaN, and a NaN candidate passes a
  // naive bracket check; whatever internal path is taken, the estimate
  // must stay finite and inside [min, max] at every step.
  for (const double q : {0.001, 0.01, 0.5, 0.99, 0.999}) {
    StreamingQuantile sq{q, 8};
    sim::Rng rng{321};
    for (int i = 0; i < 20000; ++i) {
      double x = 0.0;
      switch (i % 4) {
        case 0: x = 5.0; break;  // heavy duplicates
        case 1: x = rng.normal(5.0, 1.0); break;
        case 2: x = -1e6; break;  // alternating far extremes
        default: x = 1e6; break;
      }
      sq.add(x);
      ASSERT_TRUE(std::isfinite(sq.value())) << "q=" << q << " i=" << i;
      ASSERT_GE(sq.value(), sq.min()) << "q=" << q << " i=" << i;
      ASSERT_LE(sq.value(), sq.max()) << "q=" << q << " i=" << i;
    }
  }
}

TEST(StreamingQuantile, MergeEmptyAndIntoEmptyAreNeutral) {
  StreamingQuantile a{0.5};
  StreamingQuantile b{0.5};
  for (int i = 0; i < 10; ++i) a.add(i);
  const double before = a.value();
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 10u);
  EXPECT_DOUBLE_EQ(a.value(), before);
  b.merge(a);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 10u);
  EXPECT_DOUBLE_EQ(b.value(), before);
}

// ---------------- FlowStats ----------------

TEST(RunningMoments, MatchesNaiveMeanVarianceMinMax) {
  sim::Rng rng(11);
  std::vector<double> xs;
  RunningMoments m;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(40.0, 1500.0);
    xs.push_back(x);
    m.add(x);
  }
  double sum = 0.0;
  for (const double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double sq = 0.0;
  for (const double x : xs) sq += (x - mean) * (x - mean);
  EXPECT_NEAR(m.mean, mean, 1e-9);
  EXPECT_NEAR(m.variance(), sq / static_cast<double>(xs.size()), 1e-6);
  EXPECT_DOUBLE_EQ(m.min_v, *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(m.max_v, *std::max_element(xs.begin(), xs.end()));
}

TEST(FlowStats, AccountsSwitchPortAndTotal) {
  FlowStats fs;
  fs.record(1, FlowStats::port_key(1, 3), 100);
  fs.record(1, FlowStats::port_key(1, 4), 200);
  fs.record(2, FlowStats::port_key(2, 3), 60);
  EXPECT_EQ(fs.total().packets, 3u);
  EXPECT_EQ(fs.total().bytes, 360u);
  EXPECT_EQ(fs.switch_cells(), 2u);
  EXPECT_EQ(fs.port_cells(), 3u);
  const FlowStats::Cell* sw1 = fs.find_switch(1);
  ASSERT_NE(sw1, nullptr);
  EXPECT_EQ(sw1->packets, 2u);
  EXPECT_EQ(sw1->bytes, 300u);
  EXPECT_DOUBLE_EQ(sw1->size.mean, 150.0);
  EXPECT_EQ(fs.find_switch(9), nullptr);
  EXPECT_TRUE(fs.audit().empty());
}

TEST(FlowStats, SurvivesIndexGrowthAtFleetCellCounts) {
  FlowStats fs;
  // 2,000 ports across 100 switches: well past the initial table size.
  for (std::uint64_t sw = 1; sw <= 100; ++sw) {
    for (std::uint16_t port = 1; port <= 20; ++port) {
      fs.record(sw, FlowStats::port_key(sw, port), 64);
      fs.record(sw, FlowStats::port_key(sw, port), 1500);
    }
  }
  EXPECT_EQ(fs.switch_cells(), 100u);
  EXPECT_EQ(fs.port_cells(), 2000u);
  EXPECT_EQ(fs.total().packets, 4000u);
  EXPECT_TRUE(fs.audit().empty());
  for (std::uint64_t sw = 1; sw <= 100; ++sw) {
    const FlowStats::Cell* cell =
        fs.find_port(FlowStats::port_key(sw, 7));
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->packets, 2u);
    EXPECT_DOUBLE_EQ(cell->size.mean, 782.0);
    EXPECT_DOUBLE_EQ(cell->size.min_v, 64.0);
    EXPECT_DOUBLE_EQ(cell->size.max_v, 1500.0);
  }
}

TEST(FlowStats, JsonIsKeySortedAndHistoryIndependent) {
  // Same observations in two arrival orders must export identically:
  // snapshots are key-sorted, never hash-ordered.
  FlowStats a;
  FlowStats b;
  for (std::uint64_t sw = 1; sw <= 30; ++sw) {
    a.record(sw, FlowStats::port_key(sw, 1), 100 + sw);
  }
  for (std::uint64_t sw = 30; sw >= 1; --sw) {
    b.record(sw, FlowStats::port_key(sw, 1), 100 + sw);
  }
  EXPECT_EQ(a.to_json(), b.to_json());
  // Truncation caps the arrays but keeps exact totals.
  const std::string truncated = a.to_json(/*max_cells=*/5);
  EXPECT_NE(truncated, a.to_json());
  EXPECT_NE(truncated.find("\"switch_cells\":30"), std::string::npos);
}

TEST(FlowStats, ResetClearsEverything) {
  FlowStats fs;
  fs.record(1, FlowStats::port_key(1, 1), 500);
  fs.reset();
  EXPECT_EQ(fs.total().packets, 0u);
  EXPECT_EQ(fs.switch_cells(), 0u);
  EXPECT_EQ(fs.port_cells(), 0u);
  EXPECT_TRUE(fs.audit().empty());
}

}  // namespace
}  // namespace tmg::stats
