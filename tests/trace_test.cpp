// Tests for the controller event tracer.
#include <gtest/gtest.h>

#include "scenario/testbed.hpp"
#include "trace/tracer.hpp"

namespace tmg::trace {
namespace {

using namespace tmg::sim::literals;
using scenario::Testbed;
using scenario::TestbedOptions;

TEST(Tracer, RecordsAndCounts) {
  Tracer t{16};
  t.record(sim::SimTime::zero(), EventKind::PortDown, "x",
           of::Location{0x1, 2});
  t.record(sim::SimTime::zero() + 1_ms, EventKind::PortUp, "y",
           of::Location{0x1, 2});
  t.record(sim::SimTime::zero() + 2_ms, EventKind::PortDown, "z");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.total_recorded(), 3u);
  EXPECT_EQ(t.count(EventKind::PortDown), 2u);
  EXPECT_EQ(t.count(EventKind::Alert), 0u);
  EXPECT_EQ(t.of_kind(EventKind::PortUp).size(), 1u);
}

TEST(Tracer, RingEvictsOldest) {
  Tracer t{4};
  for (int i = 0; i < 10; ++i) {
    t.record(sim::SimTime::from_nanos(i), EventKind::PacketIn,
             std::to_string(i));
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 10u);
  EXPECT_EQ(t.events().front().detail, "6");
  EXPECT_EQ(t.events().back().detail, "9");
}

TEST(Tracer, RenderAndCsv) {
  Tracer t{8};
  t.record(sim::SimTime::from_nanos(1'500'000'000), EventKind::LinkAdded,
           "0x1:10<->0x2:10", of::Location{0x2, 10});
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("LINK_ADDED"), std::string::npos);
  EXPECT_NE(rendered.find("1.500s"), std::string::npos);
  EXPECT_NE(rendered.find("0x2:10"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("1.500000,LINK_ADDED,0x2:10"), std::string::npos);
}

TEST(Tracer, RenderLimitsToLastN) {
  Tracer t{100};
  for (int i = 0; i < 20; ++i) {
    t.record(sim::SimTime::zero(), EventKind::PacketIn,
             "evt" + std::to_string(i));
  }
  const std::string out = t.render(3);
  EXPECT_EQ(out.find("evt16"), std::string::npos);
  EXPECT_NE(out.find("evt17"), std::string::npos);
  EXPECT_NE(out.find("evt19"), std::string::npos);
}

TEST(Tracer, ListenersFire) {
  Tracer t{8};
  int fired = 0;
  t.subscribe([&](const Event& e) {
    ++fired;
    EXPECT_EQ(e.kind, EventKind::HostNew);
  });
  t.record(sim::SimTime::zero(), EventKind::HostNew, "h");
  EXPECT_EQ(fired, 1);
}

TEST(Tracer, KindNames) {
  EXPECT_STREQ(to_string(EventKind::PacketIn), "PACKET_IN");
  EXPECT_STREQ(to_string(EventKind::HostBlocked), "HOST_BLOCKED");
  EXPECT_STREQ(to_string(EventKind::EchoRtt), "ECHO_RTT");
}

// ---------------- Live controller integration ----------------

struct TracedNet {
  Testbed tb{TestbedOptions{}};
  Tracer tracer;
  attack::Host* h1;
  attack::Host* h2;

  TracedNet() {
    tb.add_switch(0x1);
    tb.add_switch(0x2);
    tb.connect_switches(0x1, 10, 0x2, 10);
    attack::HostConfig c1;
    c1.mac = net::MacAddress::host(1);
    c1.ip = net::Ipv4Address::host(1);
    h1 = &tb.add_host(0x1, 1, c1);
    attack::HostConfig c2;
    c2.mac = net::MacAddress::host(2);
    c2.ip = net::Ipv4Address::host(2);
    h2 = &tb.add_host(0x2, 1, c2);
    tb.controller().set_tracer(&tracer);
  }
};

TEST(TracerIntegration, DiscoveryAndLearningAreTraced) {
  TracedNet net;
  net.tb.start(3_s);
  net.h1->send_arp_request(net.h2->ip());
  net.h2->send_arp_request(net.h1->ip());
  net.tb.run_for(500_ms);
  EXPECT_EQ(net.tracer.count(EventKind::LinkAdded), 1u);
  EXPECT_EQ(net.tracer.count(EventKind::HostNew), 2u);
  EXPECT_GE(net.tracer.count(EventKind::PacketIn), 3u);  // LLDP + ARP
  EXPECT_GE(net.tracer.count(EventKind::EchoRtt), 2u);
  EXPECT_GE(net.tracer.count(EventKind::FlowMod), 1u);
}

TEST(TracerIntegration, PortFlapAndLinkRemovalTraced) {
  TracedNet net;
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(200_ms);
  net.h1->flap_interface(30_ms);
  net.tb.run_for(200_ms);
  EXPECT_EQ(net.tracer.count(EventKind::PortDown), 1u);
  EXPECT_EQ(net.tracer.count(EventKind::PortUp), 1u);
}

TEST(TracerIntegration, MovesAndBlocksTraced) {
  TracedNet net;
  of::DataLink& target = net.tb.add_access_link(0x2, 4);
  net.tb.start(1_s);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(200_ms);
  scenario::migrate_host(net.tb, *net.h1, target, 200_ms);
  net.tb.run_for(400_ms);
  net.h1->send_arp_request(net.h2->ip());
  net.tb.run_for(200_ms);
  EXPECT_EQ(net.tracer.count(EventKind::HostMoved), 1u);
  const auto moves = net.tracer.of_kind(EventKind::HostMoved);
  EXPECT_NE(moves[0].detail.find("0x1:1 -> 0x2:4"), std::string::npos);
}

TEST(TracerIntegration, AlertsMirroredIntoTrace) {
  TracedNet net;
  net.tb.start(1_s);
  net.tb.controller().alerts().raise(ctrl::Alert{
      net.tb.loop().now(), "test", ctrl::AlertType::LldpFromHostPort,
      "synthetic", std::nullopt});
  EXPECT_EQ(net.tracer.count(EventKind::Alert), 1u);
  EXPECT_NE(net.tracer.of_kind(EventKind::Alert)[0].detail.find("synthetic"),
            std::string::npos);
}

// ---------------- Reproducibility contract ----------------

namespace {

/// One full traced run: discovery, ARP exchange, a port flap, and a
/// migration — every source of simulated randomness gets exercised.
std::string traced_run_csv(std::uint64_t seed) {
  TestbedOptions opts;
  opts.seed = seed;
  opts.check_invariants = true;  // the checker must not perturb runs
  Testbed tb{opts};
  Tracer tracer;
  tb.add_switch(0x1);
  tb.add_switch(0x2);
  tb.connect_switches(0x1, 10, 0x2, 10);
  attack::HostConfig c1;
  c1.mac = net::MacAddress::host(1);
  c1.ip = net::Ipv4Address::host(1);
  attack::Host& h1 = tb.add_host(0x1, 1, c1);
  attack::HostConfig c2;
  c2.mac = net::MacAddress::host(2);
  c2.ip = net::Ipv4Address::host(2);
  attack::Host& h2 = tb.add_host(0x2, 1, c2);
  of::DataLink& target = tb.add_access_link(0x2, 4);
  tb.controller().set_tracer(&tracer);

  tb.start(1_s);
  h1.send_arp_request(h2.ip());
  h2.send_arp_request(h1.ip());
  tb.run_for(200_ms);
  h2.flap_interface(30_ms);
  tb.run_for(200_ms);
  scenario::migrate_host(tb, h1, target, 100_ms);
  tb.run_for(500_ms);
  return tracer.to_csv();
}

}  // namespace

TEST(TracerDeterminism, SameSeedProducesIdenticalTrace) {
  const std::string first = traced_run_csv(7);
  const std::string second = traced_run_csv(7);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second)
      << "bit-reproducibility broken: two same-seed runs diverged";
}

TEST(TracerDeterminism, DifferentSeedsProduceDifferentTraces) {
  // Latency jitter and micro-bursts are seeded, so RTT samples (and
  // usually event interleavings) must differ across seeds.
  EXPECT_NE(traced_run_csv(7), traced_run_csv(8));
}

}  // namespace
}  // namespace tmg::trace
