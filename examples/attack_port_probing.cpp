// Port Probing walkthrough (paper Fig. 2-3, Sec. IV-B, V-B).
//
// The attacker ARP-pings the victim every 50 ms. The instant the victim
// unplugs to migrate, the attacker rewrites its NIC to the victim's
// MAC/IP and originates traffic: the Host Tracking Service re-binds the
// victim to the attacker's port, completing a hijack that violates no
// TopoGuard or SPHINX policy until the victim resurfaces.
#include <cstdio>

#include "example_util.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_runner.hpp"

using namespace tmg;
using namespace tmg::scenario;

namespace {

examples::ExampleArgs g_args;  // shared example flags (--check etc.)
bool g_check = false;          // --check: print invariant-checker footers

void report(const char* title, const HijackOutcome& out) {
  std::printf("%s\n", title);
  const auto ms = [](const std::optional<double>& v) {
    return v ? *v : -1.0;
  };
  std::printf("  hijack succeeded:          %s\n",
              out.hijack_succeeded ? "YES" : "no");
  std::printf("  victim-bound traffic redirected to attacker: %s\n",
              out.traffic_redirected ? "YES" : "no");
  std::printf("  victim down -> final probe sent:   %8.2f ms\n",
              ms(out.down_to_final_probe_start_ms));
  std::printf("  victim down -> probe timeout:      %8.2f ms\n",
              ms(out.down_to_declared_down_ms));
  std::printf("  victim down -> attacker iface up:  %8.2f ms\n",
              ms(out.down_to_iface_up_ms));
  std::printf("  victim down -> controller re-bind: %8.2f ms\n",
              ms(out.down_to_confirmed_ms));
  std::printf("  alerts before victim rejoined: %zu\n",
              out.alerts_before_rejoin);
  std::printf("  alerts after victim rejoined:  %zu\n\n",
              out.alerts_after_rejoin);
  if (g_check) {
    std::printf("  [--check] invariant sweeps: %llu, violations: %llu\n\n",
                static_cast<unsigned long long>(out.invariant_sweeps),
                static_cast<unsigned long long>(out.invariant_violations));
  }
  examples::print_pipeline_stats(out.pipeline_stats, g_args);
}

}  // namespace

int main(int argc, char** argv) {
  g_args = examples::parse_example_args(argc, argv);
  g_check = g_args.check;
  examples::warn_modules_unavailable(g_args);
  std::printf("== Port Probing: hijacking a host in transit ==\n\n");
  std::printf(
      "Victim 10.0.0.1 (aa:aa:aa:aa:aa:aa) begins a planned migration\n"
      "from switch 0x1 port 2 to switch 0x2 port 4 with a ~3 s downtime\n"
      "window (VM live migration scale). The attacker sits on 0x2:5.\n\n");

  // The three defense suites are independent trials; --jobs N runs
  // them concurrently with byte-identical output (DESIGN.md §7).
  const DefenseSuite suites[] = {DefenseSuite::TopoGuard,
                                 DefenseSuite::Sphinx,
                                 DefenseSuite::TopoGuardAndSphinx};
  TrialRunner runner{{parse_jobs_arg(argc, argv)}};
  const auto outcomes = runner.map(3, [&](std::size_t i) {
    HijackConfig cfg;
    cfg.seed = 7;
    cfg.suite = suites[i];
    cfg.profile = g_args.profile;
    cfg.collect_pipeline_stats = g_args.pipeline_stats;
    return run_hijack(cfg);
  });

  report("vs TopoGuard (migration pre/post-conditions):", outcomes[0]);
  report("vs SPHINX (identifier-binding anomaly detection):", outcomes[1]);
  report("vs both defenses together (the paper's headline):", outcomes[2]);

  // --obs-out/--trace-out: rerun the headline trial with the
  // observability layer attached. The exported span tree (attack/hijack
  // -> probe / disconnect-detect / race / ident-change, measured from
  // the scenario/victim.down instant) is what
  // tools/render_timeline.py turns back into the Figs. 5-8 table.
  if (g_args.obs_enabled()) {
    const auto obs = examples::make_observability(g_args);
    HijackConfig cfg;
    cfg.seed = 7;
    cfg.suite = DefenseSuite::TopoGuardAndSphinx;
    cfg.profile = g_args.profile;
    cfg.obs = obs.get();
    const HijackOutcome observed = run_hijack(cfg);
    std::printf("\n[obs] re-ran the '%s' trial observed (hijack %s)\n",
                to_string(cfg.suite),
                observed.hijack_succeeded ? "succeeded" : "failed");
    examples::export_observability(obs.get(), obs->final_time(), g_args);
  }

  std::printf(
      "Observations (paper Sec. IV-B/V-B): the race is won because the\n"
      "victim's in-transit identifiers are bound to nothing; both\n"
      "defenses stay silent until the victim rejoins, and even then the\n"
      "alerts cannot say which host is the attacker. Use cfg.nmap_overhead\n"
      "= true for the paper's nmap measurement regime (Figs. 5-6).\n");
  return 0;
}
