// Quickstart: build a two-switch OpenFlow network, start the controller,
// watch link discovery and host learning happen, and route a ping.
//
//   $ ./quickstart
//
// This walks through the public API surface most programs use:
// scenario::Testbed to wire the network, ctrl::Controller services to
// inspect state, attack::Host to generate traffic.
#include <cstdio>

#include "ctrl/host_tracker.hpp"
#include "example_util.hpp"
#include "ctrl/link_discovery.hpp"
#include "ctrl/routing.hpp"
#include "scenario/testbed.hpp"
#include "trace/tracer.hpp"

using namespace tmg;
using namespace tmg::sim::literals;

int main(int argc, char** argv) {
  const examples::ExampleArgs args = examples::parse_example_args(argc, argv);
  std::printf("== TopoMirage quickstart ==\n\n");

  // 1. Wire the network: two switches, one inter-switch link, two hosts.
  scenario::TestbedOptions opts;
  opts.seed = 7;
  examples::apply_check_flag(opts, args);
  examples::apply_profile_flag(opts, args);
  scenario::Testbed tb{opts};
  tb.add_switch(0x1);
  tb.add_switch(0x2);
  tb.connect_switches(0x1, 10, 0x2, 10);

  attack::HostConfig alice_cfg;
  alice_cfg.mac = net::MacAddress::host(1);
  alice_cfg.ip = net::Ipv4Address::host(1);
  attack::Host& alice = tb.add_host(0x1, 1, alice_cfg);

  attack::HostConfig bob_cfg;
  bob_cfg.mac = net::MacAddress::host(2);
  bob_cfg.ip = net::Ipv4Address::host(2);
  attack::Host& bob = tb.add_host(0x2, 1, bob_cfg);

  // 2. Attach a tracer (optional but invaluable) and start the
  // controller: LLDP rounds, echo probes, sweeps begin. With
  // --obs-out/--trace-out the tracer shares the observability span log,
  // so controller events interleave with pipeline dispatch spans.
  trace::Tracer tracer;
  tb.controller().set_tracer(&tracer);
  const auto obs = examples::make_observability(args);
  tb.set_observability(obs.get());
  examples::apply_modules(tb.controller(), args);
  tb.start(/*warmup=*/1_s);

  std::printf("After %s of warm-up, link discovery found:\n",
              to_string(tb.loop().now()).c_str());
  for (const auto& link : tb.controller().topology().links_view()) {
    std::printf("  link %s\n", link.to_string().c_str());
  }

  // 3. Hosts announce themselves (ARP) and the HTS learns locations.
  alice.send_arp_request(bob.ip());
  bob.send_arp_request(alice.ip());
  tb.run_for(500_ms);

  std::printf("\nHost Tracking Service bindings:\n");
  for (const auto& rec : tb.controller().host_tracker().hosts_sorted()) {
    std::printf("  %s / %-10s at %s\n", rec.mac.to_string().c_str(),
                rec.ip.to_string().c_str(), rec.loc.to_string().c_str());
  }

  // 4. Route a ping across the network.
  alice.send_ping(bob.mac(), bob.ip(), /*ident=*/1, /*seq=*/1);
  tb.run_for(500_ms);

  bool replied = false;
  for (const auto& pkt : alice.received()) {
    if (pkt.icmp() && pkt.icmp()->type == net::IcmpPayload::Type::EchoReply) {
      replied = true;
    }
  }
  std::printf("\nalice pinged bob across switches: %s\n",
              replied ? "reply received" : "NO reply");
  std::printf("paths installed by reactive routing: %llu\n",
              static_cast<unsigned long long>(
                  tb.controller().routing().paths_installed()));
  std::printf("flow rules at 0x1: %zu, at 0x2: %zu\n",
              tb.get_switch(0x1).flow_table().size(),
              tb.get_switch(0x2).flow_table().size());

  // 5. The tracer kept the control-plane story.
  std::printf("\nLast controller events:\n%s",
              tracer.render(/*last_n=*/8).c_str());
  std::printf("(%llu control-plane events recorded in total)\n",
              static_cast<unsigned long long>(tracer.total_recorded()));

  examples::print_pipeline_stats(tb.controller(), args);
  examples::print_check_summary(tb);
  examples::export_observability(obs.get(), tb.loop().now(), args);
  std::printf("\nDone. Next: run attack_port_amnesia / attack_port_probing\n"
              "to see the paper's attacks against this machinery.\n");
  return 0;
}
