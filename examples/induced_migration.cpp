// Induced-migration kill chain (paper Sec. IV-B, "a more sophisticated
// attacker may induce such movement").
//
// A two-server cloud with an auto-balancing hypervisor. The attacker
// controls (a) a VM co-located with the victim and (b) a network
// position for port probing. Instead of waiting for a migration window,
// the co-located VM saturates the server's resources until the balancer
// live-migrates the victim — and the prober hijacks its identity inside
// the resulting downtime window.
#include <cstdio>

#include "attack/port_probing.hpp"
#include "ctrl/host_tracker.hpp"
#include "example_util.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/hypervisor.hpp"
#include "scenario/testbed.hpp"

using namespace tmg;
using namespace tmg::sim::literals;

int main(int argc, char** argv) {
  const examples::ExampleArgs args = examples::parse_example_args(argc, argv);
  std::printf("== Inducing the migration you plan to hijack ==\n\n");

  scenario::TestbedOptions opts;
  examples::apply_check_flag(opts, args);
  examples::apply_profile_flag(opts, args);
  scenario::Testbed tb{opts};
  tb.add_switch(0x1);
  tb.add_switch(0x2);
  tb.connect_switches(0x1, 10, 0x2, 10);
  std::vector<of::DataLink*> server_a = {&tb.add_access_link(0x1, 1),
                                         &tb.add_access_link(0x1, 2)};
  std::vector<of::DataLink*> server_b = {&tb.add_access_link(0x2, 1),
                                         &tb.add_access_link(0x2, 2)};

  scenario::Hypervisor hv{tb.loop(), tb.fork_rng(),
                          scenario::HypervisorConfig{}};
  hv.add_server(1, 1.0, server_a);
  hv.add_server(2, 1.0, server_b);

  attack::HostConfig vcfg;
  vcfg.mac = net::MacAddress::host(1);
  vcfg.ip = net::Ipv4Address::host(1);
  attack::Host& victim = tb.add_host_on(*server_a[0], vcfg);
  victim.detach_link();
  hv.place_vm("victim", victim, 1, {.load = 0.3, .migratable = true});

  attack::HostConfig ncfg;
  ncfg.mac = net::MacAddress::host(0xA1);
  ncfg.ip = net::Ipv4Address::host(161);
  attack::Host& noisy = tb.add_host_on(*server_a[1], ncfg);
  noisy.detach_link();
  hv.place_vm("noisy-neighbor", noisy, 1, {.load = 0.1, .migratable = false});

  attack::HostConfig acfg;
  acfg.mac = net::MacAddress::host(0xA2);
  acfg.ip = net::Ipv4Address::host(162);
  attack::Host& prober_host = tb.add_host(0x2, 5, acfg);

  defense::install_topoguard(tb.controller());
  const auto obs = examples::make_observability(args);
  tb.set_observability(obs.get());
  examples::apply_modules(tb.controller(), args);
  hv.set_migration_listener([&](const std::string& vm,
                                scenario::ServerId from,
                                scenario::ServerId to, sim::Duration d) {
    std::printf("[%7.1fs] hypervisor: live-migrating '%s' server %u -> %u "
                "(downtime %s)\n",
                tb.loop().now().to_seconds_f(), vm.c_str(), from, to,
                to_string(d).c_str());
  });

  hv.start();
  tb.start(1_s);
  victim.send_arp_request(prober_host.ip());
  prober_host.send_arp_request(victim.ip());
  tb.run_for(500_ms);

  std::printf("[%7.1fs] server 1 utilization: %.0f %% (victim + noisy "
              "neighbor idling)\n",
              tb.loop().now().to_seconds_f(),
              100.0 * hv.server_utilization(1));

  attack::PortProbingConfig pc;
  pc.victim_ip = victim.ip();
  attack::PortProbingAttack probe{tb.loop(), tb.fork_rng(), prober_host, pc};
  probe.set_observability(obs.get());
  probe.start();
  std::printf("[%7.1fs] attacker: ARP liveness probing armed (50 ms "
              "cadence)\n",
              tb.loop().now().to_seconds_f());
  tb.run_for(2_s);

  std::printf("[%7.1fs] attacker: co-located VM begins cache-dirtying DoS\n",
              tb.loop().now().to_seconds_f());
  hv.set_load("noisy-neighbor", 0.8);
  tb.run_for(40_s);

  const auto& tl = probe.timeline();
  std::printf("\nOutcome:\n");
  std::printf("  migrations induced:   %llu\n",
              static_cast<unsigned long long>(hv.migrations()));
  std::printf("  identity claimed:     %s\n",
              probe.identity_claimed() ? "YES" : "no");
  if (tl.victim_declared_down && tl.interface_up_as_victim) {
    std::printf("  downtime detected %.1f ms after migration began; victim "
                "impersonated %.1f ms later\n",
                0.0,  // relative framing below
                (*tl.interface_up_as_victim - *tl.victim_declared_down)
                    .to_millis_f());
  }
  const auto rec =
      tb.controller().host_tracker().find(victim.mac());
  if (rec) {
    std::printf("  victim's identity currently bound at %s\n",
                rec->loc.to_string().c_str());
  }
  std::printf(
      "\nTopoGuard raised no alert before the victim resumed: the\n"
      "migration was genuine — the attacker merely chose when it\n"
      "happened (paper Sec. IV-B).\n");
  examples::print_pipeline_stats(tb.controller(), args);
  examples::print_check_summary(tb);
  examples::export_observability(obs.get(), tb.loop().now(), args);
  return 0;
}
