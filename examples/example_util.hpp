// Shared helpers for the example programs.
//
// Every example accepts `--check`: it attaches the runtime invariant
// checker (src/check) to the simulation and prints a verification
// footer. A violation means the *simulator* is broken — the examples
// abort rather than print numbers computed from corrupted state.
#pragma once

#include <cstdio>
#include <cstring>

#include "check/invariants.hpp"
#include "scenario/testbed.hpp"

namespace tmg::examples {

/// True when `--check` appears anywhere on the command line.
inline bool check_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) return true;
  }
  return false;
}

/// Apply `--check` to testbed options built by an example.
inline void apply_check_flag(scenario::TestbedOptions& opts, int argc,
                             char** argv) {
  if (check_flag(argc, argv)) opts.check_invariants = true;
}

/// Verification footer for a testbed the example built itself. Runs the
/// final battery so teardown state is validated too.
inline void print_check_summary(scenario::Testbed& tb) {
  check::InvariantChecker* checker = tb.invariant_checker();
  if (checker == nullptr) return;
  checker->final_check();
  std::printf("\n[--check] invariant sweeps: %llu, violations: %llu\n",
              static_cast<unsigned long long>(checker->checks_run()),
              static_cast<unsigned long long>(checker->violation_count()));
}

/// Verification footer for experiment-driver outcomes that carry the
/// checker counters.
inline void print_check_summary(unsigned long long sweeps,
                                unsigned long long violations) {
  std::printf("\n[--check] invariant sweeps: %llu, violations: %llu\n",
              sweeps, violations);
}

}  // namespace tmg::examples
