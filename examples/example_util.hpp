// Shared helpers for the example programs.
//
// Every example parses its command line through parse_example_args, so
// all of them accept the same flag set:
//
//   --check            attach the runtime invariant checker (src/check)
//                      and print a verification footer. A violation
//                      means the *simulator* is broken — the examples
//                      abort rather than print numbers computed from
//                      corrupted state.
//   --modules=list     print the controller's message-pipeline chain
//                      (priority order) and exit codes aside, continue.
//   --modules=+X,-Y    enable (+) / disable (-) pipeline listeners by
//                      name before the simulation starts.
//   --pipeline-stats   print per-listener dispatch counters at the end.
//   --obs-out=DIR      attach the observability layer and write
//                      metrics.json / metrics.csv / trace.jsonl /
//                      trace_chrome.json into DIR at the end.
//   --trace-out=FILE   attach the observability layer and write the
//                      span/instant trace (JSONL) to FILE.
//   --profile=NAME     run under that controller pipeline profile
//                      (floodlight / pox / opendaylight / onos —
//                      layout, dispatch discipline, timers, and
//                      migration policy all follow the profile). An
//                      unknown name is a usage error: exit 2 with the
//                      valid names listed, never a silent default.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/profiles.hpp"
#include "obs/observability.hpp"
#include "scenario/testbed.hpp"

namespace tmg::examples {

struct ExampleArgs {
  bool check = false;
  bool pipeline_stats = false;
  bool list_modules = false;
  std::vector<std::string> enable_modules;   // --modules=+Name
  std::vector<std::string> disable_modules;  // --modules=-Name
  std::string obs_out;    // --obs-out=DIR (empty: disabled)
  std::string trace_out;  // --trace-out=FILE (empty: disabled)
  std::optional<ctrl::ControllerProfile> profile;  // --profile=NAME

  /// Either observability flag present?
  [[nodiscard]] bool obs_enabled() const {
    return !obs_out.empty() || !trace_out.empty();
  }
};

/// Strict --profile value resolution (same convention as the bench
/// harness's parse_jobs_value/parse_trials_or_die pair): the testable
/// half returns nullopt on an unknown name, the _or_die wrapper turns
/// that into exit 2 with the valid names listed.
inline std::optional<ctrl::ControllerProfile> parse_profile_value(
    const std::string& value) {
  return ctrl::profile_by_name(value);
}

inline ctrl::ControllerProfile parse_profile_or_die(
    const std::string& value) {
  auto profile = parse_profile_value(value);
  if (!profile) {
    std::string names;
    for (const auto& n : ctrl::profile_cli_names()) names += " " + n;
    std::fprintf(stderr, "error: unknown --profile '%s' (valid:%s)\n",
                 value.c_str(), names.c_str());
    std::exit(2);
  }
  return *profile;
}

/// Parse the shared example flags. Unknown arguments are ignored so
/// individual examples can layer their own.
inline ExampleArgs parse_example_args(int argc, char** argv) {
  ExampleArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      args.check = true;
    } else if (std::strcmp(arg, "--pipeline-stats") == 0) {
      args.pipeline_stats = true;
    } else if (std::strncmp(arg, "--obs-out=", 10) == 0) {
      args.obs_out = arg + 10;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      args.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--profile=", 10) == 0) {
      args.profile = parse_profile_or_die(arg + 10);
    } else if (std::strncmp(arg, "--modules=", 10) == 0) {
      // Comma-separated list of "list", "+Name" or "-Name" tokens.
      std::string rest = arg + 10;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        std::string token = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        if (token.empty()) continue;
        if (token == "list") {
          args.list_modules = true;
        } else if (token[0] == '+') {
          args.enable_modules.push_back(token.substr(1));
        } else if (token[0] == '-') {
          args.disable_modules.push_back(token.substr(1));
        } else {
          std::fprintf(stderr,
                       "warning: --modules token '%s' is not 'list', "
                       "'+name' or '-name'; ignored\n",
                       token.c_str());
        }
      }
    }
  }
  return args;
}

/// Apply `--check` to testbed options built by an example.
inline void apply_check_flag(scenario::TestbedOptions& opts,
                             const ExampleArgs& args) {
  if (args.check) opts.check_invariants = true;
}

/// Apply `--profile=` to testbed options built by an example.
inline void apply_profile_flag(scenario::TestbedOptions& opts,
                               const ExampleArgs& args) {
  if (args.profile) opts.controller.profile = *args.profile;
}

/// Apply `--modules=` to a controller whose defenses are installed:
/// print the chain for "list", then flip the requested listeners.
inline void apply_modules(ctrl::Controller& ctrl, const ExampleArgs& args) {
  if (args.list_modules) {
    std::printf("\n[--modules] pipeline chain (priority order):\n");
    for (const auto& s : ctrl.pipeline_stats()) {
      std::printf("  %4d  %-16s %s\n", s.priority, s.name.c_str(),
                  s.enabled ? "enabled" : "disabled");
    }
  }
  for (const std::string& name : args.enable_modules) {
    if (!ctrl.pipeline().set_enabled(name, true)) {
      std::fprintf(stderr, "warning: --modules: no listener named '%s'\n",
                   name.c_str());
    }
  }
  for (const std::string& name : args.disable_modules) {
    if (!ctrl.pipeline().set_enabled(name, false)) {
      std::fprintf(stderr, "warning: --modules: no listener named '%s'\n",
                   name.c_str());
    }
  }
}

/// Footer for `--pipeline-stats`: per-listener dispatch counters. Wall
/// time is deliberately omitted (counters are deterministic, host
/// clocks are not).
inline void print_pipeline_stats(
    const std::vector<ctrl::MessagePipeline::ListenerStats>& stats,
    const ExampleArgs& args) {
  if (!args.pipeline_stats) return;
  std::printf("\n[--pipeline-stats] listener dispatch counters:\n");
  std::printf("  %4s  %-16s %10s %8s\n", "prio", "listener", "dispatches",
              "stops");
  for (const auto& s : stats) {
    std::printf("  %4d  %-16s %10llu %8llu\n", s.priority, s.name.c_str(),
                static_cast<unsigned long long>(s.dispatches),
                static_cast<unsigned long long>(s.stops));
  }
}

inline void print_pipeline_stats(const ctrl::Controller& ctrl,
                                 const ExampleArgs& args) {
  print_pipeline_stats(ctrl.pipeline_stats(), args);
}

/// Examples that delegate to the experiment drivers never own the
/// controller, so `--modules=` has nothing to act on there.
inline void warn_modules_unavailable(const ExampleArgs& args) {
  if (args.list_modules || !args.enable_modules.empty() ||
      !args.disable_modules.empty()) {
    std::fprintf(stderr,
                 "warning: --modules is ignored here: the experiment "
                 "driver owns the controller\n");
  }
}

/// Verification footer for a testbed the example built itself. Runs the
/// final battery so teardown state is validated too.
inline void print_check_summary(scenario::Testbed& tb) {
  check::InvariantChecker* checker = tb.invariant_checker();
  if (checker == nullptr) return;
  checker->final_check();
  std::printf("\n[--check] invariant sweeps: %llu, violations: %llu\n",
              static_cast<unsigned long long>(checker->checks_run()),
              static_cast<unsigned long long>(checker->violation_count()));
}

/// Verification footer for experiment-driver outcomes that carry the
/// checker counters.
inline void print_check_summary(unsigned long long sweeps,
                                unsigned long long violations) {
  std::printf("\n[--check] invariant sweeps: %llu, violations: %llu\n",
              sweeps, violations);
}

/// Build the Observability object when either obs flag is present
/// (callers keep it alive for the run); nullptr when disabled.
inline std::unique_ptr<obs::Observability> make_observability(
    const ExampleArgs& args) {
  if (!args.obs_enabled()) return nullptr;
  return std::make_unique<obs::Observability>();
}

/// Export footer for `--obs-out` / `--trace-out`: metrics snapshot (via
/// the registered collectors) and the span trace, all sim-time based so
/// reruns produce byte-identical files.
inline void export_observability(obs::Observability* obs, sim::SimTime at,
                                 const ExampleArgs& args) {
  if (obs == nullptr) return;
  if (!args.trace_out.empty()) {
    obs::write_text_file(args.trace_out, obs->trace().to_jsonl());
    std::printf("\n[--trace-out] %zu trace records -> %s\n",
                obs->trace().size(), args.trace_out.c_str());
  }
  if (!args.obs_out.empty()) {
    const std::string dir = args.obs_out;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort
    obs::write_text_file(dir + "/metrics.json", obs->metrics_json(at));
    obs::write_text_file(dir + "/metrics.csv", obs->metrics_csv(at));
    obs::write_text_file(dir + "/trace.jsonl", obs->trace().to_jsonl());
    obs::write_text_file(dir + "/trace_chrome.json",
                         obs->trace().to_chrome_trace());
    std::printf(
        "\n[--obs-out] %zu metrics, %zu trace records -> %s/"
        "{metrics.json,metrics.csv,trace.jsonl,trace_chrome.json}\n",
        obs->metrics().size(), obs->trace().size(), dir.c_str());
  }
}

}  // namespace tmg::examples
