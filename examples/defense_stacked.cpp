// Stacked defenses on the message pipeline (DESIGN.md §9).
//
// TopoGuard, SPHINX, and the TOPOGUARD+ extensions (CMM + LLI) deployed
// *simultaneously* as ordered pipeline listeners on the Fig. 9 evaluation
// testbed. Every module sees every event; verdicts accumulate, so one
// Block wins without silencing the other detectors (paper Sec. IV-B).
// The run then launches the CMM-evasive out-of-band port amnesia attack
// and prints which layers of the stack fired, plus the per-listener
// dispatch counters the pipeline keeps.
//
// Flags: --check, --modules=list / --modules=-LLI,... , --pipeline-stats
// (the counters are printed unconditionally here — they are the point).
#include <cstdio>

#include "attack/port_amnesia.hpp"
#include "example_util.hpp"
#include "scenario/experiments.hpp"
#include "scenario/fig9_testbed.hpp"

using namespace tmg;
using namespace tmg::sim::literals;

int main(int argc, char** argv) {
  examples::ExampleArgs args = examples::parse_example_args(argc, argv);
  std::printf("== Stacking every defense on the message pipeline ==\n\n");

  scenario::TestbedOptions opts = scenario::fig9_options();
  opts.controller.authenticate_lldp = true;
  opts.controller.lldp_timestamps = true;
  examples::apply_check_flag(opts, args);
  examples::apply_profile_flag(opts, args);
  scenario::Fig9Testbed f = scenario::make_fig9_testbed(opts);
  ctrl::Controller& ctrl = f.tb->controller();
  scenario::install_suite(ctrl, scenario::DefenseSuite::Stacked);
  const auto obs = examples::make_observability(args);
  f.tb->set_observability(obs.get());
  examples::apply_modules(ctrl, args);

  std::printf("Pipeline chain (priority order):\n");
  for (const auto& s : ctrl.pipeline_stats()) {
    std::printf("  %4d  %-16s %s\n", s.priority, s.name.c_str(),
                s.enabled ? "enabled" : "disabled");
  }

  ctrl.alerts().subscribe([](const ctrl::Alert& a) {
    std::printf("  [%8.3fs] ALERT %-10s %-24s %s\n", a.time.to_seconds_f(),
                a.module.c_str(), ctrl::to_string(a.type), a.message.c_str());
  });

  f.tb->start(2_s);
  scenario::fig9_warm_hosts(f);

  std::printf("\nCalibration: one minute of benign operation...\n");
  f.tb->run_for(60_s);

  std::printf(
      "\nLaunching out-of-band port amnesia (prepositioned flaps, the\n"
      "CMM-evasive variant) at t=%.0fs...\n\n",
      f.tb->loop().now().to_seconds_f());
  attack::PortAmnesiaAttack::Config ac;
  ac.mode = attack::PortAmnesiaAttack::Mode::OutOfBand;
  ac.preposition_flap = true;
  attack::PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a,
                                   *f.attacker_b, f.oob, ac};
  attack.set_observability(obs.get());
  attack.start();
  f.tb->run_for(120_s);

  std::printf("\nFinal state:\n");
  std::printf("  LLDP relays attempted: %llu\n",
              static_cast<unsigned long long>(attack.lldp_relayed()));
  std::printf("  alerts: TopoGuard=%zu SPHINX=%zu CMM=%zu LLI=%zu\n",
              ctrl.alerts().count_from("TopoGuard"),
              ctrl.alerts().count_from("SPHINX"),
              ctrl.alerts().count_from("CMM"),
              ctrl.alerts().count_from("LLI"));
  std::printf("  fabricated link in topology: %s\n",
              f.fabricated_link_present() ? "YES (defense failed)"
                                          : "no (blocked)");
  std::printf("  genuine links still healthy: %zu / 4\n",
              ctrl.topology().link_count());

  args.pipeline_stats = true;  // always: the counters are the point
  examples::print_pipeline_stats(ctrl, args);
  examples::print_check_summary(*f.tb);
  examples::export_observability(obs.get(), f.tb->loop().now(), args);
  return 0;
}
