// Port Amnesia walkthrough (paper Fig. 1, Sec. IV-A, V-A).
//
// Three acts on the Fig. 9 evaluation testbed:
//   1. classic LLDP relay vs TopoGuard      -> detected and blocked;
//   2. out-of-band port amnesia vs TopoGuard -> link fabricated, MITM
//      traffic flows, zero alerts;
//   3. the same attack vs TOPOGUARD+         -> the LLI flags the relay
//      latency and blocks the link.
#include <cstdio>

#include "example_util.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::scenario;

namespace {

examples::ExampleArgs g_args;  // shared example flags (--check etc.)
bool g_check = false;          // --check: print invariant-checker footers

void report(const char* act, const LinkAttackOutcome& out) {
  std::printf("%s\n", act);
  std::printf("  fabricated link registered: %s\n",
              out.link_registered ? "YES" : "no");
  std::printf("  held at end of run:         %s\n",
              out.link_present_at_end ? "YES" : "no");
  std::printf("  MITM transit bridged:       %llu packets\n",
              static_cast<unsigned long long>(out.transit_bridged));
  std::printf("  amnesia flaps:              %llu\n",
              static_cast<unsigned long long>(out.flaps));
  std::printf("  alerts: TopoGuard=%zu SPHINX=%zu CMM=%zu LLI=%zu -> %s\n\n",
              out.alerts_topoguard, out.alerts_sphinx, out.alerts_cmm,
              out.alerts_lli,
              out.detected() ? "DETECTED" : "undetected");
  if (g_check) {
    std::printf("  [--check] invariant sweeps: %llu, violations: %llu\n\n",
                static_cast<unsigned long long>(out.invariant_sweeps),
                static_cast<unsigned long long>(out.invariant_violations));
  }
  examples::print_pipeline_stats(out.pipeline_stats, g_args);
}

}  // namespace

int main(int argc, char** argv) {
  g_args = examples::parse_example_args(argc, argv);
  g_check = g_args.check;
  examples::warn_modules_unavailable(g_args);
  std::printf("== Port Amnesia: link fabrication that survives TopoGuard ==\n\n");
  std::printf(
      "Two compromised hosts on switches 0x2 and 0x4 relay the\n"
      "controller's LLDP probes over a hidden wireless channel,\n"
      "convincing the controller a direct 0x2<->0x4 link exists. All\n"
      "traffic between the end hosts then flows through the attackers.\n\n");

  LinkAttackConfig cfg;
  cfg.seed = 42;
  cfg.profile = g_args.profile;
  cfg.collect_pipeline_stats = g_args.pipeline_stats;

  cfg.kind = LinkAttackKind::ClassicRelay;
  cfg.suite = DefenseSuite::TopoGuard;
  report("Act 1 — classic relay vs TopoGuard (the pre-paper baseline):",
         run_link_attack(cfg));

  cfg.kind = LinkAttackKind::OobAmnesia;
  cfg.suite = DefenseSuite::TopoGuardAndSphinx;
  report(
      "Act 2 — port amnesia vs TopoGuard + SPHINX (paper Sec. V-A):\n"
      "  one >=16 ms interface flap per port erases the HOST profile\n"
      "  (Port-Down resets it to ANY) before the relayed LLDP arrives.",
      run_link_attack(cfg));

  cfg.suite = DefenseSuite::TopoGuardPlus;
  // Act 3 carries the observability layer when asked: the exported
  // trace holds the attack/flap + attack/relay spans and the lldp/rtt
  // round-trips the LLI's detection is computed from.
  const auto obs = examples::make_observability(g_args);
  cfg.obs = obs.get();
  report(
      "Act 3 — the same attack vs TOPOGUARD+ (paper Sec. VII):\n"
      "  the relay adds ~11 ms that the encrypted-timestamp latency\n"
      "  check cannot be talked out of.",
      run_link_attack(cfg));
  examples::export_observability(obs.get(),
                                 obs ? obs->final_time() : sim::SimTime{},
                                 g_args);

  std::printf(
      "Also try: the in-band variant (LinkAttackKind::InBandAmnesia),\n"
      "whose per-round context switches the CMM catches, and the\n"
      "blackhole variant (cfg.blackhole = true), which SPHINX's flow\n"
      "counters expose. bench_attack_matrix prints the full grid.\n");
  return 0;
}
