// IDS scan lab (paper Table I + Sec. V-B2).
//
// An attacker sweeps liveness-probe types and rates against a victim
// while a Snort-surrogate IDS taps the victim's access link: which
// reconnaissance styles stay under the radar?
#include <cstdio>

#include "example_util.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_runner.hpp"

using namespace tmg;
using namespace tmg::sim::literals;
using attack::ProbeType;

int main(int argc, char** argv) {
  const examples::ExampleArgs args = examples::parse_example_args(argc, argv);
  const bool check = args.check;
  examples::warn_modules_unavailable(args);
  // --jobs N fans the independent measurements below across N worker
  // threads; output is identical for every N (see DESIGN.md §7).
  scenario::TrialRunner runner{{scenario::parse_jobs_arg(argc, argv)}};
  std::printf("== Scan stealth lab ==\n\n");
  std::printf(
      "The port-probing attacker must poll the victim frequently enough\n"
      "to catch the migration window, without tripping the IDS. Paper\n"
      "Table I ranks the options; this reproduces the measurements.\n\n");

  const ProbeType timing_types[] = {ProbeType::IcmpPing, ProbeType::TcpSyn,
                                    ProbeType::ArpPing,
                                    ProbeType::TcpIdleScan};
  const auto rows = runner.map(4, [&](std::size_t i) {
    return scenario::measure_probe_timing(timing_types[i], 200, 1);
  });
  std::printf("%-14s %-10s %-28s\n", "Probe", "Stealth", "Per-scan timing");
  for (const auto& row : rows) {
    std::printf("%-14s %-10s %s\n", attack::to_string(row.type),
                attack::to_string(row.stealth),
                stats::format_mean_pm(row.tool_overhead_ms, "ms").c_str());
  }

  std::printf("\nIDS verdicts at the attack rate (20 probes/s, 30 s):\n");
  const ProbeType scan_types[] = {ProbeType::IcmpPing, ProbeType::TcpSyn,
                                  ProbeType::ArpPing};
  const auto verdicts = runner.map(3, [&](std::size_t i) {
    return scenario::run_scan_detection(scan_types[i], 20.0, 30_s, 1);
  });
  unsigned long long sweeps = 0;
  unsigned long long violations = 0;
  for (const auto& r : verdicts) {
    std::printf("  %-14s %4llu probes -> %zu alerts (%s)\n",
                attack::to_string(r.type),
                static_cast<unsigned long long>(r.probes_sent), r.ids_alerts,
                r.detected() ? "DETECTED" : "undetected");
    sweeps += r.invariant_sweeps;
    violations += r.invariant_violations;
  }
  if (check) examples::print_check_summary(sweeps, violations);
  if (!verdicts.empty()) {
    examples::print_pipeline_stats(verdicts.front().pipeline_stats, args);
  }

  // --obs-out/--trace-out: re-run the attack's chosen probe type (ARP)
  // observed and export the lab's metrics and span trace.
  if (args.obs_enabled()) {
    const auto obs = examples::make_observability(args);
    const auto observed = scenario::run_scan_detection(
        ProbeType::ArpPing, 20.0, 30_s, 1, obs.get());
    std::printf("\n[obs] re-ran the ARP scan observed (%llu probes)\n",
                static_cast<unsigned long long>(observed.probes_sent));
    examples::export_observability(obs.get(), obs->final_time(), args);
  }

  std::printf(
      "\nConclusion (paper Sec. IV-B1): ARP pings — fast, same-subnet,\n"
      "and invisible to Snort/Bro rulesets — are the attack's choice.\n");
  return 0;
}
