// TOPOGUARD+ deployment walkthrough (paper Sec. VI-VII).
//
// Deploys the full defense stack on the Fig. 9 evaluation testbed,
// shows the LLI calibrating on genuine link latencies, then launches
// the CMM-evasive out-of-band port amnesia attack and prints the alerts
// as they fire.
#include <cstdio>

#include "attack/port_amnesia.hpp"
#include "defense/topoguard_plus.hpp"
#include "example_util.hpp"
#include "scenario/fig9_testbed.hpp"

using namespace tmg;
using namespace tmg::sim::literals;

int main(int argc, char** argv) {
  const examples::ExampleArgs args = examples::parse_example_args(argc, argv);
  std::printf("== Deploying TOPOGUARD+ ==\n\n");

  // The controller must sign LLDP and seal departure timestamps —
  // fig9_options enables both. The invariant checker is opt-in here.
  scenario::TestbedOptions opts = scenario::fig9_options();
  examples::apply_profile_flag(opts, args);
  opts.check_invariants = args.check;
  scenario::Fig9Testbed f = scenario::make_fig9_testbed(opts);
  const defense::TopoGuardPlus tgp =
      defense::install_topoguard_plus(f.tb->controller());
  const auto obs = examples::make_observability(args);
  f.tb->set_observability(obs.get());
  examples::apply_modules(f.tb->controller(), args);

  // Print every alert as the run unfolds.
  f.tb->controller().alerts().subscribe([](const ctrl::Alert& a) {
    std::printf("  [%8.3fs] ALERT %-10s %-24s %s\n", a.time.to_seconds_f(),
                a.module.c_str(), ctrl::to_string(a.type), a.message.c_str());
  });

  f.tb->start(2_s);
  scenario::fig9_warm_hosts(f);

  std::printf("Calibration: one minute of benign operation...\n");
  f.tb->run_for(60_s);
  std::printf("\nLLI state after calibration:\n");
  std::printf("  verified latency samples: %zu\n",
              tgp.lli->measurements().size());
  if (const auto t = tgp.lli->threshold_ms()) {
    std::printf("  anomaly threshold (Q3 + 3*IQR): %.2f ms\n", *t);
  }
  std::printf("  port profile of attacker A's port (0x2:1): %s\n",
              defense::to_string(tgp.topoguard->port_type(f.a_loc)));

  std::printf(
      "\nLaunching out-of-band port amnesia (prepositioned flaps, the\n"
      "CMM-evasive variant) at t=%.0fs...\n\n",
      f.tb->loop().now().to_seconds_f());
  attack::PortAmnesiaAttack::Config ac;
  ac.mode = attack::PortAmnesiaAttack::Mode::OutOfBand;
  ac.preposition_flap = true;
  attack::PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a,
                                   *f.attacker_b, f.oob, ac};
  attack.set_observability(obs.get());
  attack.start();
  f.tb->run_for(120_s);

  std::printf("\nFinal state:\n");
  std::printf("  LLDP relays attempted: %llu\n",
              static_cast<unsigned long long>(attack.lldp_relayed()));
  std::printf("  LLI detections:        %llu\n",
              static_cast<unsigned long long>(tgp.lli->detections()));
  std::printf("  CMM detections:        %llu\n",
              static_cast<unsigned long long>(tgp.cmm->detections()));
  std::printf("  fabricated link in topology: %s\n",
              f.fabricated_link_present() ? "YES (defense failed)"
                                          : "no (blocked)");
  std::printf("  genuine links still healthy: %zu / 4\n",
              f.tb->controller().topology().link_count());
  examples::print_pipeline_stats(f.tb->controller(), args);
  examples::print_check_summary(*f.tb);
  examples::export_observability(obs.get(), f.tb->loop().now(), args);
  return 0;
}
