#include "bench_harness.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "obs/observability.hpp"
#include "scenario/trial_runner.hpp"
#include "sim/fastpath.hpp"
#include "sim/thread_pool.hpp"

namespace tmg::bench {

namespace {

/// Strict counterpart of the --jobs parsing: a malformed --trials value
/// must not silently run the bench default (strtoul would turn
/// '--trials abc' into 0 and '--trials 10x' into 10).
std::size_t parse_trials_or_die(const char* value) {
  const std::optional<std::size_t> parsed =
      scenario::parse_jobs_value(value);
  if (!parsed) {
    std::fprintf(stderr,
                 "error: invalid --trials value '%s' (expected a "
                 "non-negative integer; 0 = bench default)\n",
                 value);
    std::exit(2);
  }
  return *parsed;
}

}  // namespace

HarnessOptions parse_harness_args(int argc, char** argv) {
  HarnessOptions opts;
  opts.jobs = scenario::parse_jobs_arg(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--no-fastpath") == 0) {
      opts.no_fastpath = true;
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      opts.obs = true;
    } else if (std::strcmp(argv[i], "--legacy-runner") == 0) {
      opts.legacy_runner = true;
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      opts.trials = parse_trials_or_die(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      opts.trials = parse_trials_or_die(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      opts.json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
      opts.obs_out_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--obs-out=", 10) == 0) {
      opts.obs_out_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      opts.trace_out_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      opts.trace_out_path = argv[i] + 12;
    }
  }
  // The export flags only make sense with the observability layer
  // attached, so they imply --obs.
  if (!opts.obs_out_path.empty() || !opts.trace_out_path.empty()) {
    opts.obs = true;
  }
  // Applied here so every bench honours the flag without plumbing it
  // through its workload; worker threads inherit the process-global.
  if (opts.no_fastpath) sim::set_fastpath_enabled(false);
  return opts;
}

bool write_obs_artifacts(const HarnessOptions& opts, obs::Observability& obs) {
  bool ok = true;
  if (!opts.obs_out_path.empty()) {
    if (!obs::write_text_file(opts.obs_out_path,
                              obs.metrics_json(obs.final_time()))) {
      std::fprintf(stderr, "[bench] cannot write %s\n",
                   opts.obs_out_path.c_str());
      ok = false;
    }
  }
  if (!opts.trace_out_path.empty()) {
    if (!obs::write_text_file(opts.trace_out_path, obs.trace().to_jsonl())) {
      std::fprintf(stderr, "[bench] cannot write %s\n",
                   opts.trace_out_path.c_str());
      ok = false;
    }
  }
  return ok;
}

WallTimer::WallTimer()
    : start_ns_{std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()} {}

double WallTimer::elapsed_ms() const {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now_ns - start_ns_) / 1e6;
}

bool report_bench(const HarnessOptions& opts, BenchResult result) {
  if (result.jobs == 0) result.jobs = sim::ThreadPool::hardware_jobs();
  if (result.wall_ms > 0.0) {
    result.events_per_sec =
        static_cast<double>(result.events) / (result.wall_ms / 1e3);
  }
  std::printf(
      "\n[bench] %s: trials=%zu base_seed=%llu jobs=%zu wall=%.1f ms "
      "events=%llu (%.3g events/s)\n",
      result.bench.c_str(), result.trials,
      static_cast<unsigned long long>(result.base_seed), result.jobs,
      result.wall_ms, static_cast<unsigned long long>(result.events),
      result.events_per_sec);
  if (opts.json_path.empty()) return true;

  std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", opts.json_path.c_str());
    return false;
  }
  // Contract: {trials, base_seed, jobs} are always present — they are
  // the reproduction key for any bench artifact.
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"trials\": %zu,\n"
               "  \"base_seed\": %llu,\n"
               "  \"jobs\": %zu,\n"
               "  \"wall_ms\": %.3f,\n"
               "  \"events\": %llu,\n"
               "  \"events_per_sec\": %.3f",
               result.bench.c_str(), result.trials,
               static_cast<unsigned long long>(result.base_seed), result.jobs,
               result.wall_ms,
               static_cast<unsigned long long>(result.events),
               result.events_per_sec);
  if (!result.obs_metrics_json.empty()) {
    std::string snap = result.obs_metrics_json;
    while (!snap.empty() && snap.back() == '\n') snap.pop_back();
    std::fprintf(f, ",\n  \"obs\": %s", snap.c_str());
  }
  if (!result.extra_key.empty() && !result.extra_json.empty()) {
    std::fprintf(f, ",\n  \"%s\": %s", result.extra_key.c_str(),
                 result.extra_json.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace tmg::bench
