// Sec. IV-B2 — Downtime window duration vs. usable impersonation time.
//
// From server-maintenance hours down to live-migration seconds: how
// much of the victim's downtime window does the attacker get to own,
// and does the hijack still win as the window shrinks toward the
// attack's own end-to-end latency?
#include <cstdio>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

int main() {
  banner("Sec. IV-B2", "Downtime window vs. hijack viability");

  struct Row {
    const char* scenario;
    sim::Duration downtime;
    bool nmap;
  };
  const Row rows[] = {
      {"live migration (fast)", sim::Duration::millis(700), false},
      {"live migration (typical)", 2_s, false},
      {"live migration (typical), nmap probing", 2_s, true},
      {"VM restart", 10_s, false},
      {"server patching", 60_s, false},
  };

  Table table({"Scenario", "Window", "Hijacks won", "Mean claim (ms)",
               "Usable impersonation (% of window)"});
  for (const Row& row : rows) {
    int won = 0;
    double claim_sum = 0.0, usable_sum = 0.0;
    int n = 10, claimed = 0;
    for (int s = 0; s < n; ++s) {
      scenario::HijackConfig cfg;
      cfg.suite = scenario::DefenseSuite::TopoGuardAndSphinx;
      cfg.seed = 300 + s;
      cfg.victim_downtime = row.downtime;
      cfg.nmap_overhead = row.nmap;
      cfg.confirm_failures = row.nmap ? 2 : 1;
      const auto out = scenario::run_hijack(cfg);
      if (out.hijack_succeeded) ++won;
      if (out.down_to_confirmed_ms) {
        ++claimed;
        claim_sum += *out.down_to_confirmed_ms;
        const double window_ms = row.downtime.to_millis_f();
        usable_sum +=
            100.0 * (window_ms - *out.down_to_confirmed_ms) / window_ms;
      }
    }
    table.add_row({row.scenario,
                   to_string(row.downtime),
                   fmt_u(won) + "/" + fmt_u(n),
                   claimed ? fmt("%.0f", claim_sum / claimed) : "-",
                   claimed ? fmt("%.0f %%", usable_sum / claimed) : "-"});
  }
  table.print();

  std::printf(
      "\nExpected shape (paper Sec. IV-B2/V-B): raw ARP probing claims the\n"
      "identity in well under 100 ms, leaving >90%% of even a 1-2 s live-\n"
      "migration window; nmap-engine probing (~0.5 s) still fits typical\n"
      "windows; for maintenance-scale windows the attack is effectively\n"
      "instantaneous.\n");
  return 0;
}
