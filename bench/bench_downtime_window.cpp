// Sec. IV-B2 — Downtime window duration vs. usable impersonation time.
//
// From server-maintenance hours down to live-migration seconds: how
// much of the victim's downtime window does the attacker get to own,
// and does the hijack still win as the window shrinks toward the
// attack's own end-to-end latency?
#include <cstdio>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_runner.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

int main(int argc, char** argv) {
  banner("Sec. IV-B2", "Downtime window vs. hijack viability");

  struct Row {
    const char* scenario;
    sim::Duration downtime;
    bool nmap;
  };
  const Row rows[] = {
      {"live migration (fast)", sim::Duration::millis(700), false},
      {"live migration (typical)", 2_s, false},
      {"live migration (typical), nmap probing", 2_s, true},
      {"VM restart", 10_s, false},
      {"server patching", 60_s, false},
  };
  constexpr std::size_t kRows = 5;

  const HarnessOptions opts = parse_harness_args(argc, argv);
  const std::size_t n = opts.trial_count(10, 3);  // seeds per scenario row

  scenario::TrialRunner runner{opts.runner_options()};
  WallTimer timer;
  const auto outcomes =
      runner.map(kRows * n, [&](std::size_t i) -> scenario::HijackOutcome {
        const Row& row = rows[i / n];
        scenario::HijackConfig cfg;
        cfg.suite = scenario::DefenseSuite::TopoGuardAndSphinx;
        cfg.seed = 300 + (i % n);
        cfg.victim_downtime = row.downtime;
        cfg.nmap_overhead = row.nmap;
        cfg.confirm_failures = row.nmap ? 2 : 1;
        return scenario::run_hijack(cfg);
      });
  const double wall_ms = timer.elapsed_ms();

  std::uint64_t events = 0;
  Table table({"Scenario", "Window", "Hijacks won", "Mean claim (ms)",
               "Usable impersonation (% of window)"});
  for (std::size_t r = 0; r < kRows; ++r) {
    const Row& row = rows[r];
    std::size_t won = 0, claimed = 0;
    double claim_sum = 0.0, usable_sum = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      const auto& out = outcomes[r * n + s];
      if (out.hijack_succeeded) ++won;
      if (out.down_to_confirmed_ms) {
        ++claimed;
        claim_sum += *out.down_to_confirmed_ms;
        const double window_ms = row.downtime.to_millis_f();
        usable_sum +=
            100.0 * (window_ms - *out.down_to_confirmed_ms) / window_ms;
      }
      events += out.events_executed;
    }
    table.add_row({row.scenario,
                   to_string(row.downtime),
                   fmt_u(won) + "/" + fmt_u(n),
                   claimed ? fmt("%.0f", claim_sum / claimed) : "-",
                   claimed ? fmt("%.0f %%", usable_sum / claimed) : "-"});
  }
  table.print();

  std::printf(
      "\nExpected shape (paper Sec. IV-B2/V-B): raw ARP probing claims the\n"
      "identity in well under 100 ms, leaving >90%% of even a 1-2 s live-\n"
      "migration window; nmap-engine probing (~0.5 s) still fits typical\n"
      "windows; for maintenance-scale windows the attack is effectively\n"
      "instantaneous.\n");

  BenchResult result;
  result.bench = "downtime_window";
  result.trials = kRows * n;
  result.base_seed = 300;
  result.jobs = runner.jobs();
  result.wall_ms = wall_ms;
  result.events = events;
  return report_bench(opts, result) ? 0 : 1;
}
