// Table II — TOPOGUARD+ performance overhead.
//
// The paper instruments Floodlight (Java) and reports TOPOGUARD+ adding
// 0.134 ms to LLDP construction (the encrypted timestamp TLV) and
// 0.299 ms to LLDP processing (control-message + latency inspection).
// We measure the same two code paths of our implementation with
// google-benchmark, with the security features off and on; absolute
// numbers differ (C++ vs JVM), the *shape* — a small constant additive
// cost on control-plane operations only, construction cheaper than
// processing — is the reproduced result.
#include <benchmark/benchmark.h>

#include "ctrl/host_tracker.hpp"
#include "ctrl/link_discovery.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/testbed.hpp"

namespace {

using namespace tmg;
using namespace tmg::sim::literals;

enum class Mode { Bare, TopoGuard, TopoGuardPlus };

scenario::TestbedOptions options_for(Mode mode) {
  scenario::TestbedOptions opts;
  opts.seed = 42;
  opts.controller.authenticate_lldp = mode != Mode::Bare;
  opts.controller.lldp_timestamps = mode == Mode::TopoGuardPlus;
  return opts;
}

/// A live two-switch network with the requested defense stack.
struct Env {
  scenario::Testbed tb;

  explicit Env(Mode mode) : tb{options_for(mode)} {
    tb.add_switch(0x1);
    tb.add_switch(0x2);
    tb.connect_switches(0x1, 10, 0x2, 10);
    if (mode == Mode::TopoGuard) {
      defense::install_topoguard(tb.controller());
    } else if (mode == Mode::TopoGuardPlus) {
      defense::install_topoguard_plus(tb.controller());
    }
    tb.start(5_s);  // discovery + control-RTT estimates in place
  }

  /// A wire-realistic Packet-In carrying a freshly constructed LLDP for
  /// the real link, as the processing path receives it.
  of::PacketIn make_lldp_packet_in() {
    auto& ld = tb.controller().link_discovery();
    net::LldpPacket lldp =
        ld.construct_lldp(0x1, 10, /*nonce=*/1, tb.loop().now());
    of::PacketIn pi;
    pi.dpid = 0x2;
    pi.in_port = 10;
    pi.reason = of::PacketIn::Reason::Action;
    pi.packet = net::make_lldp_frame(net::MacAddress::lldp_multicast(),
                                     std::move(lldp));
    return pi;
  }
};

void BM_LldpConstruction(benchmark::State& state) {
  Env env{static_cast<Mode>(state.range(0))};
  auto& ld = env.tb.controller().link_discovery();
  std::uint64_t nonce = 1;
  for (auto _ : state) {
    net::LldpPacket lldp =
        ld.construct_lldp(0x1, 10, nonce++, env.tb.loop().now());
    benchmark::DoNotOptimize(lldp);
  }
}

void BM_LldpSerialization(benchmark::State& state) {
  Env env{static_cast<Mode>(state.range(0))};
  auto& ld = env.tb.controller().link_discovery();
  const net::LldpPacket lldp =
      ld.construct_lldp(0x1, 10, 1, env.tb.loop().now());
  for (auto _ : state) {
    auto bytes = lldp.serialize();
    benchmark::DoNotOptimize(bytes);
  }
}

void BM_LldpProcessing(benchmark::State& state) {
  Env env{static_cast<Mode>(state.range(0))};
  const of::PacketIn pi = env.make_lldp_packet_in();
  auto& ld = env.tb.controller().link_discovery();
  for (auto _ : state) {
    ld.handle_lldp_packet_in(pi);
  }
}

}  // namespace

BENCHMARK(BM_LldpConstruction)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("mode(0=bare,1=TG,2=TG+)");
BENCHMARK(BM_LldpSerialization)->Arg(0)->Arg(1)->Arg(2)->ArgName("mode");
BENCHMARK(BM_LldpProcessing)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("mode")
    ->Iterations(100000);

BENCHMARK_MAIN();
