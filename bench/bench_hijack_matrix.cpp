// Sec. IV-B / VI-A — Host-location hijacking vs. every defense suite.
//
// Port probing wins the race under every *passive* defense the paper
// analyzes; the cryptographic identifier binding of Sec. VI-A is the
// one that stops it.
#include <cstdio>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::bench;
using scenario::DefenseSuite;

int main() {
  banner("Sec. IV-B / VI-A", "Hijack outcome per defense suite");

  const DefenseSuite suites[] = {
      DefenseSuite::None,
      DefenseSuite::TopoGuard,
      DefenseSuite::Sphinx,
      DefenseSuite::TopoGuardAndSphinx,
      DefenseSuite::TopoGuardPlus,
      DefenseSuite::SecureBinding,
  };

  Table table({"Defense", "Hijack won", "Traffic redirected",
               "Alerts pre-rejoin", "Alerts post-rejoin",
               "Down->re-bind (ms)"});
  for (const DefenseSuite suite : suites) {
    // Aggregate over several seeds for robustness.
    int won = 0, redirected = 0, runs = 5;
    std::size_t pre = 0, post = 0;
    double rebind_sum = 0.0;
    int rebind_n = 0;
    for (int s = 0; s < runs; ++s) {
      scenario::HijackConfig cfg;
      cfg.suite = suite;
      cfg.seed = 100 + s;
      const auto out = scenario::run_hijack(cfg);
      won += out.hijack_succeeded ? 1 : 0;
      redirected += out.traffic_redirected ? 1 : 0;
      pre += out.alerts_before_rejoin;
      post += out.alerts_after_rejoin;
      if (out.down_to_confirmed_ms) {
        rebind_sum += *out.down_to_confirmed_ms;
        ++rebind_n;
      }
    }
    table.add_row({scenario::to_string(suite),
                   fmt_u(won) + "/" + fmt_u(runs),
                   fmt_u(redirected) + "/" + fmt_u(runs), fmt_u(pre),
                   fmt_u(post),
                   rebind_n ? fmt("%.1f", rebind_sum / rebind_n) : "-"});
  }
  table.print();

  std::printf(
      "\nExpected shape: the hijack wins 5/5 with zero pre-rejoin alerts\n"
      "under None/TopoGuard/SPHINX/both/TOPOGUARD+ (topology checks do\n"
      "not address identifier races, paper Sec. IV-B); with secure\n"
      "identifier binding (Sec. VI-A) every attempt is vetoed and the\n"
      "violation is attributed to the attacker's port.\n");
  return 0;
}
