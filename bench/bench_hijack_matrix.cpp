// Sec. IV-B / VI-A — Host-location hijacking vs. every defense suite.
//
// Port probing wins the race under every *passive* defense the paper
// analyzes; the cryptographic identifier binding of Sec. VI-A is the
// one that stops it.
#include <cstdio>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_runner.hpp"

using namespace tmg;
using namespace tmg::bench;
using scenario::DefenseSuite;

int main(int argc, char** argv) {
  banner("Sec. IV-B / VI-A", "Hijack outcome per defense suite");

  const DefenseSuite suites[] = {
      DefenseSuite::None,
      DefenseSuite::TopoGuard,
      DefenseSuite::Sphinx,
      DefenseSuite::TopoGuardAndSphinx,
      DefenseSuite::TopoGuardPlus,
      DefenseSuite::SecureBinding,
  };
  constexpr std::size_t kSuites = 6;

  const HarnessOptions opts = parse_harness_args(argc, argv);
  // Aggregate over several seeds per suite for robustness.
  const std::size_t runs = opts.trial_count(5, 2);

  // One flat trial space (suite x seed) fanned across worker threads.
  scenario::TrialRunner runner{opts.runner_options()};
  WallTimer timer;
  const auto outcomes = runner.map(
      kSuites * runs, [&](std::size_t i) -> scenario::HijackOutcome {
        scenario::HijackConfig cfg;
        cfg.suite = suites[i / runs];
        cfg.seed = 100 + (i % runs);
        return scenario::run_hijack(cfg);
      });
  const double wall_ms = timer.elapsed_ms();

  std::uint64_t events = 0;
  Table table({"Defense", "Hijack won", "Traffic redirected",
               "Alerts pre-rejoin", "Alerts post-rejoin",
               "Down->re-bind (ms)"});
  for (std::size_t su = 0; su < kSuites; ++su) {
    std::size_t won = 0, redirected = 0, pre = 0, post = 0;
    double rebind_sum = 0.0;
    int rebind_n = 0;
    for (std::size_t s = 0; s < runs; ++s) {
      const auto& out = outcomes[su * runs + s];
      won += out.hijack_succeeded ? 1 : 0;
      redirected += out.traffic_redirected ? 1 : 0;
      pre += out.alerts_before_rejoin;
      post += out.alerts_after_rejoin;
      if (out.down_to_confirmed_ms) {
        rebind_sum += *out.down_to_confirmed_ms;
        ++rebind_n;
      }
      events += out.events_executed;
    }
    table.add_row({scenario::to_string(suites[su]),
                   fmt_u(won) + "/" + fmt_u(runs),
                   fmt_u(redirected) + "/" + fmt_u(runs), fmt_u(pre),
                   fmt_u(post),
                   rebind_n ? fmt("%.1f", rebind_sum / rebind_n) : "-"});
  }
  table.print();

  std::printf(
      "\nExpected shape: the hijack wins 5/5 with zero pre-rejoin alerts\n"
      "under None/TopoGuard/SPHINX/both/TOPOGUARD+ (topology checks do\n"
      "not address identifier races, paper Sec. IV-B); with secure\n"
      "identifier binding (Sec. VI-A) every attempt is vetoed and the\n"
      "violation is attributed to the attacker's port.\n");

  BenchResult result;
  result.bench = "hijack_matrix";
  result.trials = kSuites * runs;
  result.base_seed = 100;
  result.jobs = runner.jobs();
  result.wall_ms = wall_ms;
  result.events = events;
  return report_bench(opts, result) ? 0 : 1;
}
