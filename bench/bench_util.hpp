// Shared helpers for the reproduction benches: banner/table printing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace tmg::bench {

inline void banner(const char* id, const char* title) {
  std::printf("\n");
  std::printf(
      "======================================================================"
      "\n");
  std::printf("%s — %s\n", id, title);
  std::printf(
      "======================================================================"
      "\n");
}

inline void section(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

/// Fixed-width table printer: pass rows of equal-length cell vectors.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_{std::move(header)} {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(header_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) rule += "+";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, widths);
  }

 private:
  static void print_row(const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size() + 1, ' ');
      if (c + 1 < row.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

inline std::string yes_no(bool b) { return b ? "yes" : "no"; }

}  // namespace tmg::bench
