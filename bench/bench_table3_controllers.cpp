// Table III — Link discovery interval and link timeout per controller.
//
// Runs each controller profile on a live two-switch network, measures
// the observed LLDP emission period, and measures how long a dead link
// survives in the topology after its last verification (the "downtime
// window" port probing exploits scales with these).
#include <cstdio>

#include "bench_util.hpp"
#include "ctrl/link_discovery.hpp"
#include "scenario/testbed.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

namespace {

struct Measured {
  double emission_period_s = 0.0;
  double removal_after_cut_s = 0.0;
};

Measured measure(const ctrl::ControllerProfile& profile) {
  scenario::TestbedOptions opts;
  opts.seed = 42;
  opts.controller.profile = profile;
  scenario::Testbed tb{opts};
  tb.add_switch(0x1);
  tb.add_switch(0x2);
  of::DataLink& wire = tb.connect_switches(0x1, 10, 0x2, 10);
  tb.start(1_s);

  Measured m;
  // Observed emission period: emissions happen in rounds of 2 ports.
  const auto e0 = tb.controller().link_discovery().emissions();
  const auto t0 = tb.loop().now();
  while (tb.controller().link_discovery().emissions() == e0) {
    tb.run_for(100_ms);
  }
  m.emission_period_s = (tb.loop().now() - t0).to_seconds_f() +
                        1.0 - 1.0;  // rounded by the 100ms polling
  // Re-measure from a round boundary for accuracy.
  const auto e1 = tb.controller().link_discovery().emissions();
  const auto t1 = tb.loop().now();
  while (tb.controller().link_discovery().emissions() == e1) {
    tb.run_for(10_ms);
  }
  m.emission_period_s = (tb.loop().now() - t1).to_seconds_f();

  // Starve the link of LLDP (silent in-transit loss, no Port-Down —
  // the worst case for detection) and measure the timeout-path removal.
  wire.set_drop_filter(
      [](const net::Packet& pkt) { return pkt.is_lldp(); });
  const auto cut_at = tb.loop().now();
  while (tb.controller().topology().link_count() > 0) {
    tb.run_for(100_ms);
  }
  m.removal_after_cut_s = (tb.loop().now() - cut_at).to_seconds_f();
  return m;
}

}  // namespace

int main() {
  banner("Table III", "Link timeout and discovery intervals per controller");
  Table table({"Controller", "Discovery interval (cfg)", "Link timeout (cfg)",
               "Observed emission period", "Dead link removed after"});
  for (const auto& profile : ctrl::all_profiles()) {
    const Measured m = measure(profile);
    table.add_row({profile.name,
                   fmt("%.0f s", profile.lldp_interval.to_seconds_f()),
                   fmt("%.0f s", profile.link_timeout.to_seconds_f()),
                   fmt("%.1f s", m.emission_period_s),
                   fmt("%.1f s", m.removal_after_cut_s)});
  }
  table.print();
  std::printf(
      "\nPaper Table III: Floodlight 15s/35s, POX 5s/10s, OpenDaylight\n"
      "5s/15s. A benign link is only dropped after missing 2-3 discovery\n"
      "rounds (Sec. VIII-A), which bounds LLI false-positive impact.\n");
  return 0;
}
