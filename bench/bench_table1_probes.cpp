// Table I — Liveness Probe Options.
//
// Reproduces the paper's probe comparison: stealth ranking, requirements
// and per-scan timing (mean ± stddev over 1000 scans, RTT excluded — the
// nmap engine overhead), plus the in-sim protocol-exchange time that our
// simulator measures end-to-end.
#include <cstdio>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_runner.hpp"

using namespace tmg;
using namespace tmg::bench;
using attack::ProbeType;

int main(int argc, char** argv) {
  banner("Table I", "Liveness Probe Options");
  std::printf(
      "Paper reference (nmap on the authors' testbed):\n"
      "  ICMP Ping  Low stealth        0.91 ± 0.04 ms\n"
      "  TCP SYN    Medium, port known 492.3 ± 1.4 ms\n"
      "  ARP ping   High, same subnet  133.5 ± 1.6 ms\n"
      "  Idle Scan  Very High, zombie  1.8 ± 0.1 ms\n");

  const ProbeType types[] = {ProbeType::IcmpPing, ProbeType::TcpSyn,
                             ProbeType::ArpPing, ProbeType::TcpIdleScan};
  constexpr std::size_t kTypes = 4;

  const HarnessOptions opts = parse_harness_args(argc, argv);
  const std::size_t scans = opts.trial_count(1000, 100);  // probes per type

  scenario::TrialRunner runner{opts.runner_options()};
  WallTimer timer;
  const auto rows = runner.map(kTypes, [&](std::size_t i) {
    return scenario::measure_probe_timing(types[i], scans, 42);
  });
  const double wall_ms = timer.elapsed_ms();

  std::uint64_t events = 0;
  Table table({"Type", "Stealth", "Requirements", "Tool timing (ms)",
               "In-sim exchange (ms)", "Detected alive"});
  for (const auto& row : rows) {
    table.add_row({attack::to_string(row.type),
                   attack::to_string(row.stealth), row.requirements,
                   stats::format_mean_pm(row.tool_overhead_ms, ""),
                   stats::format_mean_pm(row.end_to_end_ms, "", 3),
                   fmt_u(row.alive_detected) + "/" + fmt_u(scans)});
    events += row.events_executed;
  }
  table.print();

  std::printf(
      "\nNotes: the 'Tool timing' column models the nmap engine cost the\n"
      "paper measured (calibrated, see DESIGN.md §2); the in-sim exchange\n"
      "column is the actual protocol round-trip our event simulation\n"
      "executes (ARP/ICMP/SYN one RTT; the idle scan pays two zombie\n"
      "round-trips plus a settle window for the side channel).\n");

  BenchResult result;
  result.bench = "table1_probes";
  result.trials = kTypes * scans;
  result.base_seed = 42;
  result.jobs = runner.jobs();
  result.wall_ms = wall_ms;
  result.events = events;
  return report_bench(opts, result) ? 0 : 1;
}
