// Table I — Liveness Probe Options.
//
// Reproduces the paper's probe comparison: stealth ranking, requirements
// and per-scan timing (mean ± stddev over 1000 scans, RTT excluded — the
// nmap engine overhead), plus the in-sim protocol-exchange time that our
// simulator measures end-to-end.
#include <cstdio>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::bench;
using attack::ProbeType;

int main() {
  banner("Table I", "Liveness Probe Options");
  std::printf(
      "Paper reference (nmap on the authors' testbed):\n"
      "  ICMP Ping  Low stealth        0.91 ± 0.04 ms\n"
      "  TCP SYN    Medium, port known 492.3 ± 1.4 ms\n"
      "  ARP ping   High, same subnet  133.5 ± 1.6 ms\n"
      "  Idle Scan  Very High, zombie  1.8 ± 0.1 ms\n");

  Table table({"Type", "Stealth", "Requirements", "Tool timing (ms)",
               "In-sim exchange (ms)", "Detected alive"});
  const ProbeType types[] = {ProbeType::IcmpPing, ProbeType::TcpSyn,
                             ProbeType::ArpPing, ProbeType::TcpIdleScan};
  for (ProbeType type : types) {
    const auto row = scenario::measure_probe_timing(type, 1000, 42);
    table.add_row({attack::to_string(type),
                   attack::to_string(row.stealth), row.requirements,
                   stats::format_mean_pm(row.tool_overhead_ms, ""),
                   stats::format_mean_pm(row.end_to_end_ms, "", 3),
                   fmt_u(row.alive_detected) + "/1000"});
  }
  table.print();

  std::printf(
      "\nNotes: the 'Tool timing' column models the nmap engine cost the\n"
      "paper measured (calibrated, see DESIGN.md §2); the in-sim exchange\n"
      "column is the actual protocol round-trip our event simulation\n"
      "executes (ARP/ICMP/SYN one RTT; the idle scan pays two zombie\n"
      "round-trips plus a settle window for the side channel).\n");
  return 0;
}
