// Event-loop microbenchmark — schedule/fire/cancel throughput of the
// hot path the trial runner leans on: the flat-vector binary heap and
// the small-buffer InlineFn<64> callback type.
//
// Three patterns, each measured over --trials scheduled events
// (default 1M, --quick 100k):
//   fifo     schedule all, then drain (pure push/pop throughput);
//   churn    steady-state: each fired event schedules a successor, so
//            the heap stays small and hot in cache;
//   cancel   schedule, cancel half via timers, drain (exercises the
//            lazy-cancellation compaction path).
//
// Documented baseline (container, RelWithDebInfo, build of this PR):
// fifo ~2.1M events/s, churn ~7.6M events/s, cancel ~1.5M scheduled/s
// (fifo/cancel build a million-entry heap, so they pay log(n) sift
// costs churn never sees).
// Registered in ctest as a non-failing info test (bench.event_loop.info):
// it always exits 0 and exists to put a throughput number in the log,
// not to gate on machine-dependent timing.
#include <cstdio>
#include <vector>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "sim/event_loop.hpp"

using namespace tmg;
using namespace tmg::bench;
using sim::Duration;
using sim::EventLoop;
using sim::SimTime;

namespace {

std::uint64_t run_fifo(std::size_t n) {
  EventLoop loop;
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < n; ++i) {
    loop.schedule_at(SimTime::from_nanos(static_cast<std::int64_t>(i)),
                     [&fired] { ++fired; });
  }
  loop.run();
  return fired;
}

std::uint64_t run_churn(std::size_t n) {
  EventLoop loop;
  std::uint64_t fired = 0;
  // 64 concurrent chains; each event reschedules itself until the
  // total budget is spent. Heap stays ~64 entries: the cache-resident
  // steady state of a live simulation.
  std::uint64_t remaining = n;
  std::function<void()> tick = [&] {
    ++fired;
    if (remaining == 0) return;
    --remaining;
    loop.schedule_after(Duration::micros(1), [&tick] { tick(); });
  };
  for (int c = 0; c < 64 && remaining > 0; ++c) {
    --remaining;
    loop.schedule_after(Duration::micros(1), [&tick] { tick(); });
  }
  loop.run();
  return fired;
}

std::uint64_t run_cancel(std::size_t n) {
  EventLoop loop;
  std::uint64_t fired = 0;
  std::vector<sim::TimerHandle> timers;
  timers.reserve(n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    auto h = loop.schedule_after(
        Duration::micros(static_cast<std::int64_t>(i % 1024) + 1),
        [&fired] { ++fired; });
    if (i % 2 == 0) timers.push_back(std::move(h));
  }
  for (auto& h : timers) h.cancel();
  loop.run();
  return fired;
}

void report_pattern(const char* name, std::size_t n, std::uint64_t fired,
                    double wall_ms) {
  std::printf("  %-8s %12s scheduled  %12s fired  %8.1f ms  %8.2f M/s\n",
              name, fmt_u(n).c_str(), fmt_u(fired).c_str(), wall_ms,
              static_cast<double>(n) / wall_ms / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  banner("Microbench", "EventLoop schedule/fire/cancel throughput");

  const HarnessOptions opts = parse_harness_args(argc, argv);
  const std::size_t n = opts.trial_count(1'000'000, 100'000);

  std::printf("  %zu events per pattern (events/s counts *scheduled*\n"
              "  events; the cancel pattern fires only half of them)\n\n",
              n);

  WallTimer total;
  std::uint64_t events = 0;

  WallTimer t1;
  const std::uint64_t fifo_fired = run_fifo(n);
  report_pattern("fifo", n, fifo_fired, t1.elapsed_ms());
  events += fifo_fired;

  WallTimer t2;
  const std::uint64_t churn_fired = run_churn(n);
  report_pattern("churn", n, churn_fired, t2.elapsed_ms());
  events += churn_fired;

  WallTimer t3;
  const std::uint64_t cancel_fired = run_cancel(n);
  report_pattern("cancel", n, cancel_fired, t3.elapsed_ms());
  events += cancel_fired;

  const double wall_ms = total.elapsed_ms();

  std::printf(
      "\nBaseline for regression eyeballing (not asserted): see header\n"
      "comment. The fifo pattern is heap push/pop bound; churn is the\n"
      "InlineFn dispatch + small-heap steady state; cancel stresses the\n"
      "lazy-cancellation compaction sweep.\n");

  BenchResult result;
  result.bench = "event_loop";
  result.trials = 3 * n;  // scheduled events across the three patterns
  result.jobs = 1;        // single-threaded by construction
  result.wall_ms = wall_ms;
  result.events = events;
  report_bench(opts, result);
  return 0;  // info bench: never fails ctest on timing
}
