// Ablation — LLI anomaly-detection policy (DESIGN.md §5.1/5.2).
//
// The paper picks Q3 + 3*IQR over a fixed-size window of verified
// latencies. This ablation replays one recorded measurement stream
// (Fig. 9 testbed, out-of-band relay at t=60s) through alternative
// policies and compares detection and false-positive rates under
// micro-burst jitter.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"
#include "stats/latency_window.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

namespace {

struct Replay {
  std::size_t real = 0, real_flagged = 0;
  std::size_t fake = 0, fake_flagged = 0;

  [[nodiscard]] double fp_rate() const {
    return real ? static_cast<double>(real_flagged) / real : 0.0;
  }
  [[nodiscard]] double detection_rate() const {
    return fake ? static_cast<double>(fake_flagged) / fake : 0.0;
  }
};

/// Policy interface: observe a sample, decide, then calibrate on
/// accepted samples.
struct Policy {
  virtual ~Policy() = default;
  virtual bool flag(double sample) = 0;   // true = anomalous
  virtual void accept(double sample) = 0;  // calibrate
};

struct IqrPolicy final : Policy {
  stats::LatencyWindow window;
  explicit IqrPolicy(double k) : window{100, k, 10} {}
  bool flag(double s) override { return window.is_outlier(s); }
  void accept(double s) override { window.add(s); }
};

struct MeanSigmaPolicy final : Policy {
  std::vector<double> buf;
  double k;
  explicit MeanSigmaPolicy(double k_in) : k{k_in} {}
  bool flag(double s) override {
    if (buf.size() < 10) return false;
    const double m = stats::mean(buf);
    const double sd = stats::stddev(buf);
    return s > m + k * sd;
  }
  void accept(double s) override {
    buf.push_back(s);
    if (buf.size() > 100) buf.erase(buf.begin());
  }
};

Replay replay(const scenario::LliSeries& series, Policy& policy) {
  Replay r;
  for (const auto& p : series.points) {
    const bool flagged = policy.flag(p.latency_ms);
    if (p.fake) {
      ++r.fake;
      if (flagged) ++r.fake_flagged;
    } else {
      ++r.real;
      if (flagged) ++r.real_flagged;
    }
    if (!flagged) policy.accept(p.latency_ms);
  }
  return r;
}

}  // namespace

int main() {
  banner("Ablation", "LLI outlier policy: IQR fence vs mean+k*sigma");

  scenario::LliExperimentConfig cfg;
  cfg.benign_window = 60_s;
  cfg.attack_window = 240_s;
  const auto series = scenario::run_lli_experiment(cfg);
  std::printf("replayed stream: %zu measurements (%zu from the fabricated "
              "link)\n",
              series.points.size(), series.fake_attempts);

  Table table({"Policy", "Fake flagged", "Detection rate", "Real flagged",
               "FP rate"});
  const auto add = [&](const char* name, Policy&& policy) {
    const Replay r = replay(series, policy);
    table.add_row({name, fmt_u(r.fake_flagged) + "/" + fmt_u(r.fake),
                   fmt("%.0f %%", 100.0 * r.detection_rate()),
                   fmt_u(r.real_flagged) + "/" + fmt_u(r.real),
                   fmt("%.1f %%", 100.0 * r.fp_rate())});
  };
  add("Q3 + 1.5*IQR", IqrPolicy{1.5});
  add("Q3 + 3*IQR (paper)", IqrPolicy{3.0});
  add("Q3 + 6*IQR", IqrPolicy{6.0});
  add("mean + 2*sigma", MeanSigmaPolicy{2.0});
  add("mean + 3*sigma", MeanSigmaPolicy{3.0});
  table.print();

  std::printf(
      "\nExpected shape: the paper's Q3+3*IQR catches every relayed-link\n"
      "measurement while tolerating micro-bursts better than tight\n"
      "fences; looser fences trade residual false positives against\n"
      "margin for slower relays.\n");
  return 0;
}
