// Shared driver for the hijack timing figures (Figs. 5-8): run many
// seeded hijacks — fanned across worker threads by the TrialRunner,
// results merged in trial-index order — and collect one timeline metric
// from each.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_arena.hpp"
#include "scenario/trial_runner.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

namespace tmg::bench {

struct HijackSeries {
  std::vector<double> values;
  std::size_t runs = 0;
  std::size_t succeeded = 0;
  std::uint64_t events = 0;  // simulator events across all trials
};

/// @param nmap_regime  true: nmap engine overhead + 2-scan confirmation
///        (the paper's Figs. 5-6 measurement regime); false: raw probe
///        exchanges with a single 35 ms timeout (Figs. 7-8 regime).
/// @param runner_opts  worker count + scheduler selection (see
///        scenario::TrialRunnerOptions).
inline HijackSeries collect_hijack_metric(
    std::size_t n, bool nmap_regime,
    const std::function<std::optional<double>(
        const scenario::HijackOutcome&)>& metric,
    scenario::TrialRunnerOptions runner_opts = {}) {
  HijackSeries series;
  series.runs = n;
  scenario::TrialRunner runner{runner_opts};
  // Per-worker warm arenas; the invariant battery stays off in benches
  // (read-only hook — wall clock only). Both are observationally
  // neutral, so figures match their pre-arena output exactly.
  std::vector<std::unique_ptr<scenario::TrialArena>> arenas;
  for (std::size_t w = 0; w < runner.jobs(); ++w) {
    arenas.push_back(std::make_unique<scenario::TrialArena>());
  }
  const auto outcomes =
      runner.map(n, [&](std::size_t i) -> scenario::HijackOutcome {
        scenario::HijackConfig cfg;
        cfg.suite = scenario::DefenseSuite::TopoGuard;
        cfg.seed = 1000 + i;
        cfg.nmap_overhead = nmap_regime;
        cfg.confirm_failures = nmap_regime ? 2 : 1;
        cfg.check_invariants = false;
        cfg.arena = arenas[scenario::TrialRunner::worker_slot()].get();
        return scenario::run_hijack(cfg);
      });
  // Aggregate on this thread, in trial-index order: identical output for
  // every --jobs value.
  for (const auto& out : outcomes) {
    if (out.hijack_succeeded) ++series.succeeded;
    if (const auto v = metric(out)) series.values.push_back(*v);
    series.events += out.events_executed;
  }
  return series;
}

inline void print_series(const HijackSeries& series, const char* unit,
                         double hist_lo, double hist_hi) {
  const auto s = stats::summarize(series.values);
  section("Summary");
  std::printf("  runs: %zu, hijacks succeeded: %zu, samples: %zu\n",
              series.runs, series.succeeded, series.values.size());
  std::printf("  mean:   %.2f %s\n", s.mean, unit);
  std::printf("  median: %.2f %s\n", s.median, unit);
  std::printf("  stddev: %.2f %s\n", s.stddev, unit);
  std::printf("  min:    %.2f %s\n", s.min, unit);
  std::printf("  max:    %.2f %s\n", s.max, unit);
  section("Histogram");
  stats::Histogram hist{hist_lo, hist_hi, 20};
  hist.add_all(series.values);
  std::printf("%s", hist.render(48, unit).c_str());
  section("CSV (bin_lo,bin_hi,count)");
  std::printf("%s", hist.to_csv().c_str());
}

/// Full driver for one hijack-timing figure: parse flags, run the
/// series (`full_default` trials; 25 under --quick), print, report JSON.
inline int run_hijack_figure(int argc, char** argv, const char* bench_id,
                             std::size_t full_default, bool nmap_regime,
                             const char* unit, double hist_lo, double hist_hi,
                             const std::function<std::optional<double>(
                                 const scenario::HijackOutcome&)>& metric) {
  const HarnessOptions opts = parse_harness_args(argc, argv);
  const std::size_t n = opts.trial_count(full_default, 25);
  WallTimer timer;
  const auto series =
      collect_hijack_metric(n, nmap_regime, metric, opts.runner_options());
  const double wall_ms = timer.elapsed_ms();
  print_series(series, unit, hist_lo, hist_hi);
  BenchResult result;
  result.bench = bench_id;
  result.trials = n;
  result.base_seed = 1000;
  result.jobs = scenario::TrialRunner{opts.runner_options()}.jobs();
  result.wall_ms = wall_ms;
  result.events = series.events;
  return report_bench(opts, result) ? 0 : 1;
}

}  // namespace tmg::bench
