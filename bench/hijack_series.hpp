// Shared driver for the hijack timing figures (Figs. 5-8): run many
// seeded hijacks and collect one timeline metric from each.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

namespace tmg::bench {

struct HijackSeries {
  std::vector<double> values;
  std::size_t runs = 0;
  std::size_t succeeded = 0;
};

/// @param nmap_regime  true: nmap engine overhead + 2-scan confirmation
///        (the paper's Figs. 5-6 measurement regime); false: raw probe
///        exchanges with a single 35 ms timeout (Figs. 7-8 regime).
inline HijackSeries collect_hijack_metric(
    std::size_t n, bool nmap_regime,
    const std::function<std::optional<double>(
        const scenario::HijackOutcome&)>& metric) {
  HijackSeries series;
  series.runs = n;
  for (std::size_t i = 0; i < n; ++i) {
    scenario::HijackConfig cfg;
    cfg.suite = scenario::DefenseSuite::TopoGuard;
    cfg.seed = 1000 + i;
    cfg.nmap_overhead = nmap_regime;
    cfg.confirm_failures = nmap_regime ? 2 : 1;
    const auto out = scenario::run_hijack(cfg);
    if (out.hijack_succeeded) ++series.succeeded;
    if (const auto v = metric(out)) series.values.push_back(*v);
  }
  return series;
}

inline void print_series(const HijackSeries& series, const char* unit,
                         double hist_lo, double hist_hi) {
  const auto s = stats::summarize(series.values);
  section("Summary");
  std::printf("  runs: %zu, hijacks succeeded: %zu, samples: %zu\n",
              series.runs, series.succeeded, series.values.size());
  std::printf("  mean:   %.2f %s\n", s.mean, unit);
  std::printf("  median: %.2f %s\n", s.median, unit);
  std::printf("  stddev: %.2f %s\n", s.stddev, unit);
  std::printf("  min:    %.2f %s\n", s.min, unit);
  std::printf("  max:    %.2f %s\n", s.max, unit);
  section("Histogram");
  stats::Histogram hist{hist_lo, hist_hi, 20};
  hist.add_all(series.values);
  std::printf("%s", hist.render(48, unit).c_str());
  section("CSV (bin_lo,bin_hi,count)");
  std::printf("%s", hist.to_csv().c_str());
}

}  // namespace tmg::bench
