// Learned anomaly IDS vs the attack matrix (DESIGN.md §14).
//
// The hand-written defenses (TopoGuard, SPHINX, CMM, LLI) each encode
// one invariant and each has a documented bypass. This bench scores the
// learned complement: per controller profile it trains a
// BehaviorProfile on clean trials (no attack, no defenses), then
// replays every attack family — and fresh clean runs — against that
// baseline with ids::ProfileAnomalyService as the only detector.
//
// Detection is counted per trial from the IDS's own alert stream
// (LinkAttackOutcome/HijackOutcome::alerts_anomaly), next to the full
// deviation breakdown. The headline contract, gated by --check and the
// CI anomaly-smoke leg: zero false alerts on clean runs, detection on
// the rows that evade every hand-written defense (out-of-band Port
// Amnesia and the host-free flow-rule relay).
//
// Training is serial by design (a ProfileTrainer is fed in trial
// order); evaluation fans out through TrialRunner::reduce with
// order-independent counter merges, so stdout (minus the [bench]
// footer) and the "anomaly" JSON payload are byte-identical for every
// --jobs value; CI diffs jobs 1 vs 8.
//
//   --trials N   eval trials per row (default 6; --quick 2)
//   --jobs N     worker threads (0 = hardware)
//   --json PATH  bench record + "anomaly" per-profile row tables
//   --check      exit 1 on clean false alerts or a missed detection on
//                the must-catch rows (CI smoke gate)
//   --obs        observed re-run of the flow-rule relay under the first
//                trained baseline ("obs" key); --obs-out / --trace-out
//                export its metrics / trace — the trace carries the
//                ANOMALY_* instants tools/check_trace_schema.py pins
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "ctrl/profiles.hpp"
#include "ids/behavior_profile.hpp"
#include "obs/observability.hpp"
#include "ids/profile_anomaly.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_arena.hpp"
#include "scenario/trial_runner.hpp"

using namespace tmg;
using namespace tmg::bench;
using scenario::DefenseSuite;
using scenario::LinkAttackKind;

namespace {

// One eval row: which driver, whether the attack runs, and whether the
// --check gate demands zero alerts (clean) or a detection in every
// trial (the families that bypass all hand-written defenses).
struct Row {
  const char* label;
  bool link_driver;  // run_link_attack vs run_hijack
  bool attack_enabled;
  LinkAttackKind kind;  // link rows only
  bool must_be_silent;
  bool must_detect;
};

const Row kRows[] = {
    {"clean link", true, false, LinkAttackKind::ClassicRelay, true, false},
    {"clean hijack", false, false, LinkAttackKind::ClassicRelay, true, false},
    {"hijack", false, true, LinkAttackKind::ClassicRelay, false, false},
    {"classic relay", true, true, LinkAttackKind::ClassicRelay, false, false},
    {"oob amnesia", true, true, LinkAttackKind::OobAmnesia, false, true},
    {"in-band amnesia", true, true, LinkAttackKind::InBandAmnesia, false,
     false},
    {"flow-rule relay", true, true, LinkAttackKind::FlowRuleRelay, false,
     true},
};
constexpr std::size_t kNRows = sizeof(kRows) / sizeof(kRows[0]);

// Per-row accumulator: plain sums, so the reduce merge is
// order-independent and the row is identical at any --jobs.
struct RowAcc {
  std::uint64_t trials = 0;
  std::uint64_t detected = 0;  // trials with >= 1 anomaly alert
  std::uint64_t alerts = 0;
  std::uint64_t events = 0;
  ids::AnomalyCounters dev;

  void fold(std::size_t alerts_anomaly, const ids::AnomalyCounters& c,
            std::uint64_t trial_events) {
    ++trials;
    if (alerts_anomaly > 0) ++detected;
    alerts += alerts_anomaly;
    events += trial_events;
    dev.scored += c.scored;
    dev.unseen_port += c.unseen_port;
    dev.unseen_transition += c.unseen_transition;
    dev.unseen_trigram += c.unseen_trigram;
    dev.lldp_src_violation += c.lldp_src_violation;
    dev.rate_breach += c.rate_breach;
    dev.duration_outlier += c.duration_outlier;
    dev.alerts += c.alerts;
    dev.vetoes += c.vetoes;
  }
  void merge(const RowAcc& o) {
    trials += o.trials;
    detected += o.detected;
    alerts += o.alerts;
    events += o.events;
    dev.scored += o.dev.scored;
    dev.unseen_port += o.dev.unseen_port;
    dev.unseen_transition += o.dev.unseen_transition;
    dev.unseen_trigram += o.dev.unseen_trigram;
    dev.lldp_src_violation += o.dev.lldp_src_violation;
    dev.rate_breach += o.dev.rate_breach;
    dev.duration_outlier += o.dev.duration_outlier;
    dev.alerts += o.dev.alerts;
    dev.vetoes += o.dev.vetoes;
  }
};

std::string row_json(const Row& row, const RowAcc& a) {
  std::string s = "{\"row\": \"" + std::string(row.label) + "\"";
  s += ", \"trials\": " + std::to_string(a.trials);
  s += ", \"detected\": " + std::to_string(a.detected);
  s += ", \"alerts\": " + std::to_string(a.alerts);
  s += ", \"scored\": " + std::to_string(a.dev.scored);
  s += ", \"deviations\": {";
  s += "\"unseen_port\": " + std::to_string(a.dev.unseen_port);
  s += ", \"unseen_transition\": " + std::to_string(a.dev.unseen_transition);
  s += ", \"unseen_trigram\": " + std::to_string(a.dev.unseen_trigram);
  s += ", \"lldp_src\": " + std::to_string(a.dev.lldp_src_violation);
  s += ", \"rate_breach\": " + std::to_string(a.dev.rate_breach);
  s += ", \"duration_outlier\": " + std::to_string(a.dev.duration_outlier);
  s += "}}";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Anomaly IDS", "learned baselines vs the attack matrix");

  const HarnessOptions opts = parse_harness_args(argc, argv);
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  const std::size_t per_row = opts.trial_count(6, 2);
  const std::size_t train_trials = opts.quick ? 2 : 4;
  const std::vector<ctrl::ControllerProfile> profiles = ctrl::all_profiles();

  scenario::TrialRunner runner{opts.runner_options()};
  std::vector<std::unique_ptr<scenario::TrialArena>> arenas;
  arenas.reserve(runner.jobs());
  for (std::size_t w = 0; w < runner.jobs(); ++w) {
    arenas.push_back(std::make_unique<scenario::TrialArena>());
  }

  WallTimer timer;
  std::uint64_t events = 0;
  std::string profiles_json = "[";
  std::vector<std::string> failures;
  ids::BehaviorProfile first_baseline;  // kept for the --obs re-run

  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const ctrl::ControllerProfile& profile = profiles[p];

    // --- Train: serial clean trials, both scenario shapes. The driver
    // installs the IDS in Train mode and brackets the trial for us.
    ids::ProfileTrainer trainer;
    for (std::size_t t = 0; t < train_trials; ++t) {
      scenario::LinkAttackConfig lcfg;
      lcfg.kind = LinkAttackKind::ClassicRelay;  // unused: attack off
      lcfg.suite = DefenseSuite::None;
      lcfg.seed = scenario::TrialRunner::trial_seed(7, t);
      lcfg.check_invariants = false;
      lcfg.profile = profile;
      lcfg.attack_enabled = false;
      lcfg.anomaly_trainer = &trainer;
      (void)scenario::run_link_attack(lcfg);

      scenario::HijackConfig hcfg;
      hcfg.suite = DefenseSuite::None;
      hcfg.seed = scenario::TrialRunner::trial_seed(8, t);
      hcfg.check_invariants = false;
      hcfg.profile = profile;
      hcfg.attack_enabled = false;
      hcfg.anomaly_trainer = &trainer;
      (void)scenario::run_hijack(hcfg);
    }
    const ids::BehaviorProfile baseline = trainer.finalize();
    if (p == 0) first_baseline = baseline;

    // --- Eval: every row against the shared read-only baseline.
    std::vector<RowAcc> rows;
    rows.reserve(kNRows);
    for (std::size_t r = 0; r < kNRows; ++r) {
      const Row& row = kRows[r];
      RowAcc acc = runner.reduce(
          per_row, [] { return RowAcc{}; },
          [&](RowAcc& a, std::size_t i) {
            if (row.link_driver) {
              scenario::LinkAttackConfig cfg;
              cfg.kind = row.kind;
              cfg.suite = DefenseSuite::None;
              cfg.seed = scenario::TrialRunner::trial_seed(42, i);
              cfg.check_invariants = false;
              cfg.arena = arenas[scenario::TrialRunner::worker_slot()].get();
              cfg.profile = profile;
              cfg.attack_enabled = row.attack_enabled;
              cfg.anomaly_profile = &baseline;
              const scenario::LinkAttackOutcome out =
                  scenario::run_link_attack(cfg);
              a.fold(out.alerts_anomaly, out.anomaly, out.events_executed);
            } else {
              scenario::HijackConfig cfg;
              cfg.suite = DefenseSuite::None;
              cfg.seed = scenario::TrialRunner::trial_seed(42, i);
              cfg.check_invariants = false;
              cfg.arena = arenas[scenario::TrialRunner::worker_slot()].get();
              cfg.profile = profile;
              cfg.attack_enabled = row.attack_enabled;
              cfg.anomaly_profile = &baseline;
              const scenario::HijackOutcome out = scenario::run_hijack(cfg);
              a.fold(out.alerts_anomaly, out.anomaly, out.events_executed);
            }
          },
          [](RowAcc& total, RowAcc&& part) { total.merge(part); });
      events += acc.events;
      rows.push_back(acc);
    }

    section(profile.name.c_str());
    Table table({"Scenario", "detected", "alerts", "scored", "port", "trans",
                 "3gram", "lldp-src", "rate", "dur"});
    for (std::size_t r = 0; r < kNRows; ++r) {
      const RowAcc& a = rows[r];
      table.add_row({kRows[r].label,
                     fmt_u(a.detected) + "/" + fmt_u(a.trials),
                     fmt_u(a.alerts), fmt_u(a.dev.scored),
                     fmt_u(a.dev.unseen_port),
                     fmt_u(a.dev.unseen_transition),
                     fmt_u(a.dev.unseen_trigram),
                     fmt_u(a.dev.lldp_src_violation),
                     fmt_u(a.dev.rate_breach),
                     fmt_u(a.dev.duration_outlier)});

      if (kRows[r].must_be_silent && a.alerts != 0) {
        failures.push_back(std::string(profile.name) + "/" + kRows[r].label +
                           ": " + std::to_string(a.alerts) +
                           " false alerts on a clean run");
      }
      if (kRows[r].must_detect && a.detected != a.trials) {
        failures.push_back(std::string(profile.name) + "/" + kRows[r].label +
                           ": detected only " + std::to_string(a.detected) +
                           "/" + std::to_string(a.trials) + " trials");
      }
    }
    table.print();

    if (p != 0) profiles_json += ", ";
    profiles_json += "{\"controller\": \"" + profile.name + "\"";
    profiles_json += ", \"train_trials\": " + std::to_string(baseline.trials);
    profiles_json += ", \"train_events\": " + std::to_string(baseline.events);
    profiles_json +=
        ", \"ports_profiled\": " + std::to_string(baseline.ports.size());
    profiles_json += ", \"rows\": [";
    for (std::size_t r = 0; r < kNRows; ++r) {
      if (r != 0) profiles_json += ", ";
      profiles_json += row_json(kRows[r], rows[r]);
    }
    profiles_json += "]}";
  }
  profiles_json += "]";
  const double wall_ms = timer.elapsed_ms();

  std::printf(
      "\nPer controller profile: %zu clean trials train a BehaviorProfile\n"
      "(serial, both scenario shapes), then %zu trials per row score\n"
      "against it with the anomaly IDS as the only detector. Counter\n"
      "merges are order-independent: byte-identical at any --jobs.\n",
      train_trials * 2, per_row);

  if (!failures.empty()) {
    std::printf("\n[bench] anomaly contract violations:\n");
    for (const std::string& f : failures) {
      std::printf("[bench]   %s\n", f.c_str());
    }
  }

  BenchResult result;
  result.bench = "anomaly";
  result.trials = (train_trials * 2 + per_row * kNRows) * profiles.size();
  result.base_seed = 42;
  result.jobs = runner.jobs();
  result.wall_ms = wall_ms;
  result.events = events;
  result.extra_key = "anomaly";
  result.extra_json =
      "{\"trials_per_row\": " + std::to_string(per_row) +
      ", \"train_trials\": " + std::to_string(train_trials * 2) +
      ", \"profiles\": " + profiles_json + "}";
  if (opts.obs) {
    // Observed re-run of the headline detection (flow-rule relay vs the
    // first controller's trained baseline), kept out of the timed
    // workload. The exported trace carries the ANOMALY_* instants and
    // the metrics snapshot the ids.anomaly.* counters.
    obs::Observability obs;
    scenario::LinkAttackConfig cfg;
    cfg.kind = LinkAttackKind::FlowRuleRelay;
    cfg.suite = DefenseSuite::None;
    cfg.seed = scenario::TrialRunner::trial_seed(42, 0);
    cfg.check_invariants = false;
    cfg.profile = profiles.front();
    cfg.anomaly_profile = &first_baseline;
    cfg.obs = &obs;
    (void)scenario::run_link_attack(cfg);
    result.obs_metrics_json = obs.metrics_json(obs.final_time());
    if (!write_obs_artifacts(opts, obs)) return 1;
  }
  if (!report_bench(opts, result)) return 1;
  return check && !failures.empty() ? 1 : 0;
}
