// Benchmark harness: shared CLI flags, wall-clock timing, and the
// BENCH.json emitter used by tools/run_bench.py.
//
// Every trial-looping bench accepts:
//   --trials N      trial count (0 = bench default)
//   --jobs N        worker threads (default: hardware concurrency;
//                   --jobs 1 = legacy serial path)
//   --quick         shrink the workload for smoke runs
//   --json PATH     write a one-object JSON result file
//   --no-fastpath   disable the algorithmic fast paths (path cache,
//                   indexed flow tables, incremental statistics) and run
//                   the naive reference algorithms instead. Simulated
//                   output must be byte-identical either way; CI diffs
//                   the attack-matrix stdout across the two modes.
//
// Wall-clock time is host time (std::chrono), which is fine here: it
// never feeds simulation results, only the perf report. src/ stays under
// the determinism lint; bench/ is outside its scope by design.
#pragma once

#include <cstdint>
#include <string>

namespace tmg::bench {

struct HarnessOptions {
  std::size_t trials = 0;  // 0 = use the bench's default
  std::size_t jobs = 0;    // 0 = hardware concurrency
  bool quick = false;
  bool no_fastpath = false;  // already applied by parse_harness_args
  std::string json_path;

  /// Trial count to actually run: --trials if given, else the quick or
  /// full default.
  [[nodiscard]] std::size_t trial_count(std::size_t full_default,
                                        std::size_t quick_default) const {
    if (trials != 0) return trials;
    return quick ? quick_default : full_default;
  }
};

/// Parse the shared flags (unknown arguments are ignored so benches can
/// layer their own).
HarnessOptions parse_harness_args(int argc, char** argv);

/// Monotonic stopwatch, started at construction.
class WallTimer {
 public:
  WallTimer();
  [[nodiscard]] double elapsed_ms() const;

 private:
  std::int64_t start_ns_;
};

struct BenchResult {
  std::string bench;           // short workload id, e.g. "attack_matrix"
  std::size_t trials = 0;      // trials executed
  std::size_t jobs = 0;        // worker threads used
  double wall_ms = 0.0;        // end-to-end wall-clock for the workload
  std::uint64_t events = 0;    // simulator events executed, all trials
  double events_per_sec = 0.0; // derived: events / wall seconds
};

/// Print a one-line summary and, when --json was given, write the result
/// as a single JSON object ({bench, trials, jobs, wall_ms,
/// events_per_sec, events}). Returns false if the file could not be
/// written.
bool report_bench(const HarnessOptions& opts, BenchResult result);

}  // namespace tmg::bench
