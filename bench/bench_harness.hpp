// Benchmark harness: shared CLI flags, wall-clock timing, and the
// BENCH.json emitter used by tools/run_bench.py.
//
// Every trial-looping bench accepts:
//   --trials N      trial count (0 = bench default)
//   --jobs N        worker threads (default: hardware concurrency;
//                   --jobs 1 = legacy serial path)
//   --quick         shrink the workload for smoke runs
//   --json PATH     write a one-object JSON result file
//   --obs           attach the observability layer to a representative
//                   trial and embed its metrics snapshot under "obs" in
//                   the JSON result (benches that support it)
//   --obs-out PATH  also write that metrics snapshot to PATH as a
//                   standalone JSON file (implies --obs)
//   --trace-out PATH
//                   also write the observed trial's trace log to PATH as
//                   JSONL (implies --obs). tools/train_profile consumes
//                   these exports to learn behavior profiles.
//   --no-fastpath   disable the algorithmic fast paths (path cache,
//                   indexed flow tables, incremental statistics) and run
//                   the naive reference algorithms instead. Simulated
//                   output must be byte-identical either way; CI diffs
//                   the attack-matrix stdout across the two modes.
//   --legacy-runner schedule one pool task per trial (the pre-chunking
//                   TrialRunner path) instead of contiguous chunks —
//                   the A/B baseline tools/run_bench.py --speedup uses
//                   to attribute the scheduling win. Results are
//                   identical; only the wall clock moves.
//
// Wall-clock time is host time (std::chrono), which is fine here: it
// never feeds simulation results, only the perf report. src/ stays under
// the determinism lint; bench/ is outside its scope by design.
#pragma once

#include <cstdint>
#include <string>

#include "scenario/trial_runner.hpp"

namespace tmg::obs {
class Observability;
}  // namespace tmg::obs

namespace tmg::bench {

struct HarnessOptions {
  std::size_t trials = 0;  // 0 = use the bench's default
  std::size_t jobs = 0;    // 0 = hardware concurrency
  bool quick = false;
  bool no_fastpath = false;    // already applied by parse_harness_args
  bool obs = false;            // --obs: collect an observability snapshot
  bool legacy_runner = false;  // --legacy-runner: per-trial task baseline
  std::string json_path;
  std::string obs_out_path;    // --obs-out: metrics snapshot file
  std::string trace_out_path;  // --trace-out: trace JSONL export file

  /// TrialRunner options for this bench invocation.
  [[nodiscard]] scenario::TrialRunnerOptions runner_options() const {
    return {jobs, legacy_runner};
  }

  /// Trial count to actually run: --trials if given, else the quick or
  /// full default.
  [[nodiscard]] std::size_t trial_count(std::size_t full_default,
                                        std::size_t quick_default) const {
    if (trials != 0) return trials;
    return quick ? quick_default : full_default;
  }
};

/// Parse the shared flags (unknown arguments are ignored so benches can
/// layer their own).
HarnessOptions parse_harness_args(int argc, char** argv);

/// Write the --obs-out / --trace-out artifacts from an observed run:
/// the final-time metrics snapshot and the trace JSONL export. No-op
/// for paths not requested; returns false if any write failed (after
/// printing a diagnostic).
bool write_obs_artifacts(const HarnessOptions& opts, obs::Observability& obs);

/// Monotonic stopwatch, started at construction.
class WallTimer {
 public:
  WallTimer();
  [[nodiscard]] double elapsed_ms() const;

 private:
  std::int64_t start_ns_;
};

struct BenchResult {
  std::string bench;           // short workload id, e.g. "attack_matrix"
  std::size_t trials = 0;      // trials executed
  std::uint64_t base_seed = 0; // seed the per-trial seeds derive from
  std::size_t jobs = 0;        // worker threads used
  double wall_ms = 0.0;        // end-to-end wall-clock for the workload
  std::uint64_t events = 0;    // simulator events executed, all trials
  double events_per_sec = 0.0; // derived: events / wall seconds
  /// Optional observability snapshot (obs::Observability::metrics_json):
  /// when non-empty it is embedded verbatim under the "obs" key.
  std::string obs_metrics_json;
  /// Optional bench-specific payload: when both are non-empty,
  /// `extra_json` (a complete JSON value) is embedded verbatim under
  /// `extra_key`. bench_montecarlo puts its quantile tables here; the
  /// payload must be deterministic (no wall-clock content) so CI can
  /// diff it across --jobs values.
  std::string extra_key;
  std::string extra_json;
};

/// Print a one-line summary and, when --json was given, write the result
/// as a single JSON object. The {trials, base_seed, jobs} triple is
/// always present (tools/run_bench.py keys reproduction off it), next to
/// {bench, wall_ms, events, events_per_sec} and the optional "obs"
/// snapshot. Returns false if the file could not be written.
bool report_bench(const HarnessOptions& opts, BenchResult result);

}  // namespace tmg::bench
