// Ablation — SPHINX flow-counter checking: poll interval and similarity
// threshold vs. blackhole detection latency.
//
// A fabricated link that *drops* transit (instead of faithfully
// bridging it) diverges the per-flow byte counters along the declared
// path. How fast SPHINX notices depends on its stats poll period and
// similarity factor tau — and a faithful MITM is never noticed at all
// (paper Sec. V-A).
#include <cstdio>
#include <optional>

#include "attack/port_amnesia.hpp"
#include "bench_util.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/fig9_testbed.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

namespace {

struct Result {
  std::optional<double> detect_after_s;  // traffic start -> first alert
  std::size_t alerts = 0;
};

Result run(sim::Duration poll, double tau, bool blackhole) {
  scenario::TestbedOptions opts = scenario::fig9_options(42);
  opts.controller.authenticate_lldp = false;
  opts.controller.lldp_timestamps = false;
  scenario::Fig9Testbed f = scenario::make_fig9_testbed(std::move(opts));
  defense::SphinxConfig sc;
  sc.stats_poll = poll;
  sc.tau = tau;
  defense::install_sphinx(f.tb->controller(), sc);

  f.tb->start(2_s);
  scenario::fig9_warm_hosts(f);

  attack::PortAmnesiaAttack::Config ac;
  ac.mode = attack::PortAmnesiaAttack::Mode::OutOfBand;
  ac.blackhole_transit = blackhole;
  ac.bridge_transit = !blackhole;
  attack::PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a,
                                   *f.attacker_b, f.oob, ac};
  attack.start();
  // Wait for the fabricated link, then start the bulk flow.
  while (!f.fabricated_link_present()) f.tb->run_for(1_s);
  f.tb->run_for(6_s);  // let old rules idle out so the flow re-routes

  const sim::SimTime traffic_start = f.tb->loop().now();
  for (int i = 0; i < 120; ++i) {
    f.h1->send_raw(f.h2->mac(), f.h2->ip(), "bulk", 1400);
    f.tb->run_for(250_ms);
  }

  Result result;
  for (const auto& alert : f.tb->controller().alerts().alerts()) {
    if (alert.type != ctrl::AlertType::SphinxFlowInconsistency) continue;
    ++result.alerts;
    if (!result.detect_after_s && alert.time > traffic_start) {
      result.detect_after_s = (alert.time - traffic_start).to_seconds_f();
    }
  }
  return result;
}

}  // namespace

int main() {
  banner("Ablation", "SPHINX counter checks vs. blackholing fake link");

  Table table({"Poll period", "tau", "Transit", "First alert after",
               "Total alerts"});
  for (const double tau : {1.2, 1.5, 2.5}) {
    for (const std::int64_t poll_s : {1, 2, 5}) {
      const Result r = run(sim::Duration::seconds(poll_s), tau, true);
      table.add_row({fmt("%.0f s", static_cast<double>(poll_s)),
                     fmt("%.1f", tau), "blackholed",
                     r.detect_after_s ? fmt("%.1f s", *r.detect_after_s)
                                      : "never",
                     fmt_u(r.alerts)});
    }
  }
  // Control: the faithful MITM never diverges the counters.
  const Result faithful = run(1_s, 1.5, false);
  table.add_row({"1 s", "1.5", "bridged faithfully",
                 faithful.detect_after_s ? fmt("%.1f s",
                                               *faithful.detect_after_s)
                                         : "never",
                 fmt_u(faithful.alerts)});
  table.print();

  std::printf(
      "\nExpected shape: blackholing is caught once the upstream counters\n"
      "outrun the byte slack (for a *total* blackhole the downstream\n"
      "counter is zero, so tau is irrelevant and the slack + poll phase\n"
      "dominate); faithful relaying is never caught — the property the\n"
      "paper's MITM depends on (Sec. V-A).\n");
  return 0;
}
