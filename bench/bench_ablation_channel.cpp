// Ablation — relay channel latency vs. LLI detectability (the paper's
// scope footnote: "a purely hardware-based device which uses
// point-to-point laser communications is out of scope").
//
// Sweeps the out-of-band channel's one-way latency and encode/decode
// overhead, and measures how much of the relayed-LLDP traffic the LLI
// flags. Somewhere below the genuine links' jitter envelope, latency
// evidence disappears — quantifying exactly what "out of scope" costs.
#include <cstdio>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_runner.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

int main(int argc, char** argv) {
  banner("Ablation",
         "Relay channel latency vs. LLI detection (Fig. 9 testbed)");

  struct Sweep {
    const char* label;
    double latency_ms;
    double codec_ms;
  };
  const Sweep sweeps[] = {
      {"802.11 hop, cheap radios (paper)", 10.0, 1.0},
      {"802.11 hop, tuned", 5.0, 0.5},
      {"wired side channel", 2.0, 0.3},
      {"line-rate FPGA relay", 0.5, 0.05},
      {"point-to-point laser (scoped out)", 0.05, 0.005},
  };
  constexpr std::size_t kSweeps = 5;

  const HarnessOptions opts = parse_harness_args(argc, argv);
  scenario::TrialRunner runner{opts.runner_options()};
  WallTimer timer;
  const auto series_by_sweep = runner.map(kSweeps, [&](std::size_t i) {
    const Sweep& sweep = sweeps[i];
    scenario::LliExperimentConfig cfg;
    cfg.seed = 42;
    cfg.attack_window = opts.quick ? 30_s : 120_s;
    cfg.channel.latency = sim::Duration::from_millis_f(sweep.latency_ms);
    cfg.channel.codec_overhead =
        sim::Duration::from_millis_f(sweep.codec_ms);
    cfg.channel.jitter = sim::Duration::from_millis_f(sweep.latency_ms / 20);
    return scenario::run_lli_experiment(cfg);
  });
  const double wall_ms = timer.elapsed_ms();

  std::uint64_t events = 0;
  Table table({"Channel", "One-way + codec (ms)", "Relay attempts",
               "Flagged", "Link ever registered"});
  for (std::size_t i = 0; i < kSweeps; ++i) {
    const auto& series = series_by_sweep[i];
    table.add_row({sweeps[i].label,
                   fmt("%.2f", sweeps[i].latency_ms + sweeps[i].codec_ms),
                   fmt_u(series.fake_attempts),
                   fmt_u(series.fake_detections),
                   yes_no(series.fake_link_ever_registered)});
    events += series.events_executed;
  }
  table.print();

  std::printf(
      "\nExpected shape: the wireless-class relays the paper targets add\n"
      "latency far above the ~6-7 ms IQR fence and are always flagged;\n"
      "once the relay's added delay sinks inside the genuine links'\n"
      "jitter envelope, the LLI goes blind — which is precisely why the\n"
      "paper scopes hardware-grade relays out and argues for *active*\n"
      "defenses (Sec. VI footnote, Sec. X).\n");

  BenchResult result;
  result.bench = "ablation_channel";
  result.trials = kSweeps;
  result.base_seed = 42;
  result.jobs = runner.jobs();
  result.wall_ms = wall_ms;
  result.events = events;
  return report_bench(opts, result) ? 0 : 1;
}
