// Fig. 12 — TOPOGUARD+ alerts for anomalous control messages during
// LLDP propagation (in-band port amnesia detected by the CMM).
//
// Launches the in-band attack against TOPOGUARD+ on the Fig. 9 testbed
// and prints the alert log, mirroring the paper's console capture.
#include <cstdio>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::bench;

int main() {
  banner("Fig. 12", "TOPOGUARD+ alerts: control messages during LLDP");

  scenario::LinkAttackConfig cfg;
  cfg.kind = scenario::LinkAttackKind::InBandAmnesia;
  cfg.suite = scenario::DefenseSuite::TopoGuardPlus;
  const auto out = scenario::run_link_attack(cfg);

  section("Outcome");
  std::printf("  LLDP relays attempted:   %llu\n",
              static_cast<unsigned long long>(out.lldp_relayed));
  std::printf("  amnesia flaps performed: %llu\n",
              static_cast<unsigned long long>(out.flaps));
  std::printf("  CMM alerts:              %zu\n", out.alerts_cmm);
  std::printf("  LLI alerts:              %zu\n", out.alerts_lli);
  std::printf("  fabricated link held at end: %s\n",
              yes_no(out.link_present_at_end).c_str());
  std::printf("  attack detected:         %s\n",
              yes_no(out.detected()).c_str());

  std::printf(
      "\nPaper reference (Fig. 12 console): every in-band port amnesia\n"
      "attempt is detected because the HOST/SWITCH context switch must\n"
      "generate Port-Down/Up messages inside the LLDP propagation window\n"
      "(Sec. VII-A).\n");
  return 0;
}
