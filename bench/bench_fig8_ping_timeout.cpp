// Fig. 8 — Distribution of times from Victim Down to the attack probe's
// timeout: the earliest instant the attacker knows the victim left.
//
// With the paper's parameters the timeout is 35 ms (the 99th percentile
// of the modeled N(20ms, 5ms) RTT), so this distribution is Fig. 7
// shifted by the timeout value.
#include "hijack_series.hpp"

using namespace tmg;
using namespace tmg::bench;

int main(int argc, char** argv) {
  banner("Fig. 8", "Victim Down -> attack probe timeout");
  const int rc = run_hijack_figure(
      argc, argv, "fig8_ping_timeout", 200, /*nmap_regime=*/false, "ms", 0.0,
      100.0, [](const scenario::HijackOutcome& out) {
        return out.down_to_declared_down_ms;
      });
  std::printf(
      "\nPaper reference: the attacker realizes the victim is offline a\n"
      "handful of milliseconds to a few tens of milliseconds after the\n"
      "event; in ideal conditions the bound is the probe timeout derived\n"
      "from the RTT quantile (35 ms at a 1%% false-positive rate).\n");
  return rc;
}
