// Monte-Carlo race-window distributions (Figs. 5-8 at scale).
//
// The paper reports the port-probing race windows as small-sample means;
// this bench maps the full *distributions* — median and tail quantiles
// of the four victim-down-to-X windows — across controller profile
// (Table III) x defense suite, at 10^4-10^6 seeded trials per cell.
//
// Scale machinery (DESIGN.md §7d): trials stream through
// TrialRunner::reduce() into per-chunk stats::StreamingQuantile
// estimators — memory stays O(chunks), never O(trials) — and every
// worker runs its trials inside a per-worker TrialArena, so a sweep
// reuses one warm event-loop slab per worker instead of reallocating
// per trial. Chunk boundaries and the merge order depend only on the
// trial count, so the quantile table (stdout and --json) is
// byte-identical for every --jobs value; CI diffs jobs 1 vs 8.
//
//   --trials N   trials per cell (default 1000; --quick 50)
//   --jobs N     worker threads (0 = hardware)
//   --json PATH  bench record + "montecarlo" quantile tables
//   --obs        observed re-run of a representative trial ("obs" key)
//   --obs-out / --trace-out
//                export that run's metrics JSON / trace JSONL to files
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "ctrl/profiles.hpp"
#include "obs/observability.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_arena.hpp"
#include "scenario/trial_runner.hpp"
#include "stats/streaming_quantile.hpp"

using namespace tmg;
using namespace tmg::bench;

namespace {

// The four race windows of Figs. 5-8, pulled out of one hijack outcome.
struct Metric {
  const char* key;    // JSON key
  const char* label;  // table label
  std::optional<double> (*get)(const scenario::HijackOutcome&);
};

const Metric kMetrics[] = {
    {"iface_up_ms", "Fig5 iface-up",
     [](const scenario::HijackOutcome& o) { return o.down_to_iface_up_ms; }},
    {"confirmed_ms", "Fig6 confirmed",
     [](const scenario::HijackOutcome& o) { return o.down_to_confirmed_ms; }},
    {"final_probe_start_ms", "Fig7 probe-start",
     [](const scenario::HijackOutcome& o) {
       return o.down_to_final_probe_start_ms;
     }},
    {"declared_down_ms", "Fig8 declared-down",
     [](const scenario::HijackOutcome& o) {
       return o.down_to_declared_down_ms;
     }},
};
constexpr std::size_t kNMetrics = sizeof(kMetrics) / sizeof(kMetrics[0]);

// Streaming distribution of one metric: median + tails, no sample
// vector. Mean/min/max ride along exactly (they are order-independent).
struct Dist {
  std::uint64_t count = 0;
  double sum = 0.0;
  stats::StreamingQuantile p50{0.50};
  stats::StreamingQuantile p90{0.90};
  stats::StreamingQuantile p99{0.99};

  void fold(double x) {
    ++count;
    sum += x;
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  void merge(const Dist& other) {
    count += other.count;
    sum += other.sum;
    p50.merge(other.p50);
    p90.merge(other.p90);
    p99.merge(other.p99);
  }
};

// Per-cell accumulator: one Dist per metric plus the success/event
// counters. reduce() makes one per chunk and merges in chunk order.
struct CellAcc {
  std::uint64_t trials = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t events = 0;
  Dist dist[kNMetrics];

  void fold(const scenario::HijackOutcome& out) {
    ++trials;
    if (out.hijack_succeeded) ++succeeded;
    events += out.events_executed;
    for (std::size_t m = 0; m < kNMetrics; ++m) {
      if (const auto v = kMetrics[m].get(out)) dist[m].fold(*v);
    }
  }
  void merge(const CellAcc& other) {
    trials += other.trials;
    succeeded += other.succeeded;
    events += other.events;
    for (std::size_t m = 0; m < kNMetrics; ++m) dist[m].merge(other.dist[m]);
  }
};

std::string fmt_d(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string dist_json(const Dist& d) {
  if (d.count == 0) return "{\"count\": 0}";
  std::string s = "{\"count\": " + std::to_string(d.count);
  s += ", \"mean\": " + fmt_d(d.sum / static_cast<double>(d.count));
  s += ", \"min\": " + fmt_d(d.p50.min());
  s += ", \"p50\": " + fmt_d(d.p50.value());
  s += ", \"p90\": " + fmt_d(d.p90.value());
  s += ", \"p99\": " + fmt_d(d.p99.value());
  s += ", \"max\": " + fmt_d(d.p50.max());
  s += std::string(", \"exact\": ") + (d.p50.exact() ? "true" : "false");
  s += "}";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Figs. 5-8 @ scale", "Monte-Carlo race-window distributions");

  const HarnessOptions opts = parse_harness_args(argc, argv);
  const std::size_t per_cell = opts.trial_count(1000, 50);
  const std::vector<ctrl::ControllerProfile> profiles = ctrl::all_profiles();
  const scenario::DefenseSuite suites[] = {
      scenario::DefenseSuite::None,
      scenario::DefenseSuite::TopoGuard,
      scenario::DefenseSuite::TopoGuardAndSphinx,
  };
  const std::size_t n_cells =
      profiles.size() * (sizeof(suites) / sizeof(suites[0]));

  scenario::TrialRunner runner{opts.runner_options()};
  // One warm arena per worker slot, shared by every cell of the sweep.
  std::vector<std::unique_ptr<scenario::TrialArena>> arenas;
  arenas.reserve(runner.jobs());
  for (std::size_t w = 0; w < runner.jobs(); ++w) {
    arenas.push_back(std::make_unique<scenario::TrialArena>());
  }

  WallTimer timer;
  std::vector<CellAcc> cells;
  cells.reserve(n_cells);
  std::uint64_t events = 0;
  for (const ctrl::ControllerProfile& profile : profiles) {
    for (const scenario::DefenseSuite suite : suites) {
      CellAcc acc = runner.reduce(
          per_cell, [] { return CellAcc{}; },
          [&](CellAcc& a, std::size_t i) {
            scenario::HijackConfig cfg;
            cfg.suite = suite;
            cfg.profile = profile;
            cfg.seed = scenario::TrialRunner::trial_seed(42, i);
            cfg.check_invariants = false;
            cfg.arena = arenas[scenario::TrialRunner::worker_slot()].get();
            a.fold(scenario::run_hijack(cfg));
          },
          [](CellAcc& total, CellAcc&& part) { total.merge(part); });
      events += acc.events;
      cells.push_back(std::move(acc));
    }
  }
  const double wall_ms = timer.elapsed_ms();

  // Quantile tables: one row per (cell, metric). Every number here is
  // deterministic — identical for any --jobs — so the full stdout
  // (minus the [bench] footer) doubles as a determinism gate.
  Table table({"Controller", "Defense", "Window", "n", "mean", "p50", "p90",
               "p99", "max"});
  std::string cells_json = "[";
  std::size_t cell_idx = 0;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    for (std::size_t s = 0; s < sizeof(suites) / sizeof(suites[0]); ++s) {
      const CellAcc& acc = cells[cell_idx];
      for (std::size_t m = 0; m < kNMetrics; ++m) {
        const Dist& d = acc.dist[m];
        if (d.count == 0) {
          table.add_row({profiles[p].name, scenario::to_string(suites[s]),
                         kMetrics[m].label, "0", "-", "-", "-", "-", "-"});
          continue;
        }
        const double mean = d.sum / static_cast<double>(d.count);
        table.add_row({profiles[p].name, scenario::to_string(suites[s]),
                       kMetrics[m].label, fmt_u(d.count),
                       fmt("%.2f", mean), fmt("%.2f", d.p50.value()),
                       fmt("%.2f", d.p90.value()),
                       fmt("%.2f", d.p99.value()),
                       fmt("%.2f", d.p50.max())});
      }
      if (cell_idx != 0) cells_json += ", ";
      cells_json += "{\"controller\": \"" + profiles[p].name + "\"";
      cells_json += ", \"defense\": \"";
      cells_json += scenario::to_string(suites[s]);
      cells_json += "\", \"trials\": " + std::to_string(acc.trials);
      cells_json += ", \"succeeded\": " + std::to_string(acc.succeeded);
      cells_json += ", \"windows\": {";
      for (std::size_t m = 0; m < kNMetrics; ++m) {
        if (m != 0) cells_json += ", ";
        cells_json += std::string("\"") + kMetrics[m].key +
                      "\": " + dist_json(acc.dist[m]);
      }
      cells_json += "}}";
      ++cell_idx;
    }
  }
  cells_json += "]";
  table.print();

  std::printf(
      "\nEach cell is %zu seeded hijack trials streamed through P2\n"
      "quantile estimators (exact below 512 samples/chunk) inside\n"
      "per-worker arenas; the table is byte-identical at any --jobs.\n",
      per_cell);

  BenchResult result;
  result.bench = "montecarlo";
  result.trials = per_cell * n_cells;
  result.base_seed = 42;
  result.jobs = runner.jobs();
  result.wall_ms = wall_ms;
  result.events = events;
  result.extra_key = "montecarlo";
  result.extra_json = "{\"trials_per_cell\": " + std::to_string(per_cell) +
                      ", \"cells\": " + cells_json + "}";
  if (opts.obs) {
    // Observed re-run of one representative trial (first profile,
    // undefended, seed 42), kept out of the timed sweep above. Its
    // metrics land under "obs" in the JSON result; --obs-out and
    // --trace-out export the snapshot / trace for tools/train_profile.
    obs::Observability obs;
    scenario::HijackConfig cfg;
    cfg.suite = scenario::DefenseSuite::None;
    cfg.profile = profiles.front();
    cfg.seed = 42;
    cfg.check_invariants = false;
    cfg.obs = &obs;
    (void)scenario::run_hijack(cfg);
    result.obs_metrics_json = obs.metrics_json(obs.final_time());
    if (!write_obs_artifacts(opts, obs)) return 1;
  }
  return report_bench(opts, result) ? 0 : 1;
}
