// Flow-table fast-path microbenchmark — dst-MAC-indexed lookup and
// heap-based expiry.
//
// Workload: one of::FlowTable driven by a deterministic op mix shaped
// like a live reactive switch: lookups dominate (90%), with a trickle
// of adds (4%), exact-match deletes (2%), and timeout sweeps (4%).
// Installed rules are dst-keyed forwarding entries (as a reactive L2
// controller produces) plus rare src-constrained dst-wildcard
// monitoring rules at lower priority. MACs come from a 256-host
// universe and rules live for simulated seconds while the clock steps a
// millisecond per op, so the table holds a few hundred entries in
// steady state — the regime where a linear scan walks half the table on
// a hit and all of it on a miss, but the dst-MAC index visits only the
// packet's own bucket plus the wildcard rules.
//
// --trials N sets the op count (default 400k, --quick 40k);
// --no-fastpath runs every op through the original linear-scan
// algorithms. The printed checksum (lookup hits, expired entries, final
// table size) is identical in both modes — only the wall clock moves.
// Registered in ctest as a non-failing info test (bench.flow_table.info).
#include <cstdio>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "of/flow_table.hpp"
#include "sim/rng.hpp"

using namespace tmg;
using namespace tmg::bench;
using sim::Duration;
using sim::SimTime;

namespace {

constexpr std::int64_t kHosts = 256;

}  // namespace

int main(int argc, char** argv) {
  banner("Microbench", "FlowTable lookup/add/expire throughput");

  const HarnessOptions opts = parse_harness_args(argc, argv);
  const std::size_t ops = opts.trial_count(400'000, 40'000);

  of::FlowTable table;
  sim::Rng rng{0xF107u};
  SimTime now = SimTime::zero();

  const auto random_mac = [&] {
    return net::MacAddress::host(
        static_cast<std::uint32_t>(rng.uniform_int(1, kHosts)));
  };

  std::printf("  %zu ops (90%% lookup / 4%% add / 2%% delete / 4%% expire), "
              "%lld-host MAC universe,\n  dst-keyed rules + rare "
              "dst-wildcard monitoring rules\n\n",
              ops, static_cast<long long>(kHosts));

  WallTimer timer;
  std::uint64_t hits = 0;
  std::uint64_t expired = 0;
  std::uint64_t installed = 0;
  std::uint64_t next_cookie = 1;
  for (std::size_t i = 0; i < ops; ++i) {
    now = now + Duration::millis(1);
    const auto op = rng.uniform_int(0, 99);
    if (op < 90) {
      net::Packet pkt;
      pkt.src_mac = random_mac();
      pkt.dst_mac = random_mac();
      const auto in_port = static_cast<of::PortNo>(rng.uniform_int(1, 8));
      if (table.lookup(pkt, in_port, now) != nullptr) ++hits;
    } else if (op < 94) {
      of::FlowEntry e;
      e.cookie = next_cookie++;
      if (rng.uniform_int(0, 19) == 0) {
        // Monitoring rule: src-constrained, dst-wildcard, low priority.
        e.match.src_mac = random_mac();
        e.priority = static_cast<std::uint16_t>(rng.uniform_int(90, 93));
      } else {
        e.match.dst_mac = random_mac();
        if (rng.uniform_int(0, 9) < 3) e.match.src_mac = random_mac();
        e.priority = static_cast<std::uint16_t>(rng.uniform_int(100, 103));
      }
      e.idle_timeout = Duration::seconds(rng.uniform_int(2, 10));
      if (rng.uniform_int(0, 3) == 0)
        e.hard_timeout = Duration::seconds(rng.uniform_int(5, 30));
      table.add(e, now);
      ++installed;
    } else if (op < 96) {
      of::FlowMatch m;
      m.dst_mac = random_mac();
      expired += table.remove_matching(m).size();
    } else {
      expired += table.expire(now).size();
    }
  }
  const double wall_ms = timer.elapsed_ms();

  std::printf("  checksum: hits=%llu removed=%llu installed=%llu "
              "final_size=%zu\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(expired),
              static_cast<unsigned long long>(installed), table.size());

  BenchResult result;
  result.bench = "flow_table";
  result.trials = ops;
  result.base_seed = 0xF107u;
  result.jobs = 1;  // single-threaded by construction
  result.wall_ms = wall_ms;
  result.events = ops;
  report_bench(opts, result);
  return 0;  // info bench: never fails ctest on timing
}
