// Sec. V-A — Relay latency of the out-of-band vs. in-band channels.
//
// The paper: the out-of-band link costs its propagation delay; the
// in-band channel must context-switch HOST<->SWITCH around emissions,
// and "in the worst case, this adds a 16 ms latency to each packet"
// (the 802.3 link-integrity wait). We measure the actual
// capture-to-re-emission latency of every relayed LLDP under both
// modes, and sweep the flap hold to show the context-switch floor.
#include <cstdio>
#include <vector>

#include "attack/port_amnesia.hpp"
#include "bench_util.hpp"
#include "scenario/fig9_testbed.hpp"
#include "stats/descriptive.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

namespace {

stats::Summary relay_summary(attack::PortAmnesiaAttack::Mode mode,
                             sim::Duration flap_hold) {
  scenario::TestbedOptions opts = scenario::fig9_options(42);
  opts.controller.authenticate_lldp = false;
  opts.controller.lldp_timestamps = false;
  scenario::Fig9Testbed f = scenario::make_fig9_testbed(std::move(opts));
  f.tb->start(2_s);
  scenario::fig9_warm_hosts(f);

  attack::PortAmnesiaAttack::Config ac;
  ac.mode = mode;
  ac.flap_hold = flap_hold;
  attack::PortAmnesiaAttack attack{
      f.tb->loop(), *f.attacker_a, *f.attacker_b,
      mode == attack::PortAmnesiaAttack::Mode::OutOfBand ? f.oob : nullptr,
      ac};
  attack.start();
  f.tb->run_for(150_s);  // ten LLDP rounds

  std::vector<double> ms;
  for (const auto d : attack.relay_latencies()) {
    ms.push_back(d.to_millis_f());
  }
  return stats::summarize(ms);
}

}  // namespace

int main() {
  banner("Sec. V-A", "LLDP relay latency: out-of-band vs. in-band");

  using Mode = attack::PortAmnesiaAttack::Mode;
  Table table({"Channel", "Flap hold", "Relays", "Latency mean (ms)",
               "min", "max"});
  const auto add = [&](const char* label, Mode mode, sim::Duration hold) {
    const auto s = relay_summary(mode, hold);
    table.add_row({label, to_string(hold), fmt_u(s.count),
                   fmt("%.2f", s.mean), fmt("%.2f", s.min),
                   fmt("%.2f", s.max)});
  };
  add("out-of-band (802.11, 10 ms)", Mode::OutOfBand, 30_ms);
  add("in-band, 17 ms context switch", Mode::InBand, 17_ms);
  add("in-band, 30 ms context switch (default)", Mode::InBand, 30_ms);
  add("in-band, 48 ms context switch", Mode::InBand, 48_ms);

  table.print();
  std::printf(
      "\nExpected shape: the out-of-band relay costs the channel's ~11 ms\n"
      "regardless of flapping (resets are prepositioned); the in-band\n"
      "relay pays covert transport *plus* the >=16 ms context-switch wait\n"
      "whenever the emitting port must flip HOST->SWITCH, scaling with\n"
      "the flap hold (paper Sec. V-A).\n");
  return 0;
}
