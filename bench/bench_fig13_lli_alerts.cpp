// Fig. 13 — TOPOGUARD+ alerts for anomalous link latencies (out-of-band
// port amnesia / link tampering detected by the LLI).
//
// Launches the CMM-evasive out-of-band attack against TOPOGUARD+ and
// prints the LLI alert lines, mirroring the paper's console capture
// ("link delay is abnormal. delay:22ms, threshold:14ms").
#include <cstdio>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

int main() {
  banner("Fig. 13", "TOPOGUARD+ alerts: anomalous link latencies");

  scenario::LliExperimentConfig cfg;
  cfg.benign_window = 60_s;
  cfg.attack_window = 120_s;
  const auto series = scenario::run_lli_experiment(cfg);

  section("Alert lines (LLI)");
  for (const auto& p : series.points) {
    if (!p.flagged) continue;
    std::printf(
        "[%8.3fs] ERROR [LinkDiscoveryManager] Detected suspicious link "
        "discovery: an abnormal delay during LLDP propagation\n",
        p.t_s);
    std::printf(
        "[%8.3fs] ERROR [LinkDiscoveryManager] link delay is abnormal. "
        "delay:%.0fms, threshold:%.0fms (%s)\n",
        p.t_s, p.latency_ms, p.threshold_ms.value_or(0.0), p.link.c_str());
  }

  section("Outcome");
  std::printf("  fabricated-link attempts: %zu, flagged: %zu\n",
              series.fake_attempts, series.fake_detections);
  std::printf("  fabricated link ever registered: %s\n",
              yes_no(series.fake_link_ever_registered).c_str());
  return 0;
}
