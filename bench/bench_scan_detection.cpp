// Sec. V-B2 — Scan detection thresholds.
//
// Sweeps scan rates for TCP SYN and ARP liveness probes against the
// Snort-surrogate IDS. Paper findings: the Proofpoint ET rules detect
// SYN scans above 2 scans/second; ARP scans remain undetected at every
// rate tried (the attack uses 1 probe per 50 ms = 20/s).
#include <cstdio>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;
using attack::ProbeType;

int main() {
  banner("Sec. V-B2", "IDS detection vs. scan rate (30 s per cell)");

  const double rates[] = {0.5, 1.0, 1.9, 2.5, 5.0, 10.0, 20.0};

  Table table({"Probe", "Rate (/s)", "Probes sent", "IDS alerts",
               "Detected"});
  for (ProbeType type : {ProbeType::TcpSyn, ProbeType::ArpPing,
                         ProbeType::IcmpPing}) {
    for (double rate : rates) {
      const auto r = scenario::run_scan_detection(type, rate, 30_s, 42);
      table.add_row({attack::to_string(type), fmt("%.1f", rate),
                     fmt_u(r.probes_sent), fmt_u(r.ids_alerts),
                     yes_no(r.detected())});
    }
  }
  table.print();

  std::printf(
      "\nExpected shape (paper): SYN detected above 2/s; ARP undetected at\n"
      "all rates (neither Snort nor Bro ships ARP-scan rules); ICMP floods\n"
      "detected, making ping probes a poor stealth choice (Table I).\n");
  return 0;
}
