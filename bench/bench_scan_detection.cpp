// Sec. V-B2 — Scan detection thresholds.
//
// Sweeps scan rates for TCP SYN and ARP liveness probes against the
// Snort-surrogate IDS. Paper findings: the Proofpoint ET rules detect
// SYN scans above 2 scans/second; ARP scans remain undetected at every
// rate tried (the attack uses 1 probe per 50 ms = 20/s).
#include <cstdio>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_runner.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;
using attack::ProbeType;

int main(int argc, char** argv) {
  banner("Sec. V-B2", "IDS detection vs. scan rate (30 s per cell)");

  const ProbeType types[] = {ProbeType::TcpSyn, ProbeType::ArpPing,
                             ProbeType::IcmpPing};
  const double rates[] = {0.5, 1.0, 1.9, 2.5, 5.0, 10.0, 20.0};
  constexpr std::size_t kRates = 7;
  constexpr std::size_t kCells = 3 * kRates;

  const HarnessOptions opts = parse_harness_args(argc, argv);
  const auto window =
      opts.quick ? 5_s : 30_s;  // simulated scan window per cell

  scenario::TrialRunner runner{opts.runner_options()};
  WallTimer timer;
  const auto results = runner.map(kCells, [&](std::size_t i) {
    return scenario::run_scan_detection(types[i / kRates], rates[i % kRates],
                                        window, 42);
  });
  const double wall_ms = timer.elapsed_ms();

  std::uint64_t events = 0;
  Table table({"Probe", "Rate (/s)", "Probes sent", "IDS alerts",
               "Detected"});
  for (const auto& r : results) {
    table.add_row({attack::to_string(r.type), fmt("%.1f", r.rate_per_s),
                   fmt_u(r.probes_sent), fmt_u(r.ids_alerts),
                   yes_no(r.detected())});
    events += r.events_executed;
  }
  table.print();

  std::printf(
      "\nExpected shape (paper): SYN detected above 2/s; ARP undetected at\n"
      "all rates (neither Snort nor Bro ships ARP-scan rules); ICMP floods\n"
      "detected, making ping probes a poor stealth choice (Table I).\n");

  BenchResult result;
  result.bench = "scan_detection";
  result.trials = kCells;
  result.base_seed = 42;
  result.jobs = runner.jobs();
  result.wall_ms = wall_ms;
  result.events = events;
  return report_bench(opts, result) ? 0 : 1;
}
