// Ablation — the 802.3 link-integrity pulse window (DESIGN.md §5.4).
//
// Port amnesia needs the switch to *notice* the flap: carrier loss
// shorter than the detection window never becomes a Port-Down, and the
// TopoGuard profile survives. This sweeps the flap hold time against
// the standard 16±8 ms window and reports how often the profile reset
// succeeds — the physics that lower-bounds in-band per-packet latency
// (paper Sec. V-A).
#include <cstdio>

#include "bench_util.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/testbed.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

namespace {

/// Fraction of flaps (out of n) that produced a Port-Down at the
/// controller.
double reset_rate(sim::Duration hold, int n, std::uint64_t seed) {
  scenario::TestbedOptions opts;
  opts.seed = seed;
  scenario::Testbed tb{opts};
  tb.add_switch(0x1);
  attack::HostConfig cfg;
  cfg.mac = net::MacAddress::host(1);
  cfg.ip = net::Ipv4Address::host(1);
  attack::Host& host = tb.add_host(0x1, 1, cfg);
  defense::TopoGuard& tg = defense::install_topoguard(tb.controller());
  tb.start(1_s);

  for (int i = 0; i < n; ++i) {
    // Re-arm the profile as HOST, then flap.
    host.send_arp_request(net::Ipv4Address::host(9));
    tb.run_for(50_ms);
    host.flap_interface(hold);
    tb.run_for(hold + 100_ms);
  }
  return static_cast<double>(tg.profile_resets()) / n;
}

}  // namespace

int main() {
  banner("Ablation",
         "Flap hold vs. link-integrity pulse window (16±8 ms)");

  Table table({"Flap hold (ms)", "Profile resets", "Amnesia reliable"});
  const std::int64_t holds[] = {2, 4, 8, 12, 16, 20, 24, 30, 48};
  for (const std::int64_t h : holds) {
    const double rate = reset_rate(sim::Duration::millis(h), 50, 42);
    table.add_row({fmt("%.0f", static_cast<double>(h)),
                   fmt("%.0f %%", 100.0 * rate),
                   rate >= 0.999 ? "yes" : (rate <= 0.001 ? "never" : "flaky")});
  }
  table.print();

  std::printf(
      "\nExpected shape: holds below 8 ms are invisible (no Port-Down,\n"
      "amnesia fails); holds above 24 ms always reset; in between the\n"
      "outcome depends on where the sampled detection delay lands. This\n"
      "is why the paper's in-band attacker pays >= 16 ms per context\n"
      "switch, and why our attack default holds 30 ms.\n");
  return 0;
}
