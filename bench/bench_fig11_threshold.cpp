// Fig. 11 — The threshold distribution with link latencies.
//
// Time series of every LLI measurement and the running Q3 + 3*IQR
// threshold. The fabricated (out-of-band relayed) link appears at
// t = 60 s after controller start, exactly as in the paper's setup, and
// every one of its measurements lands above the threshold.
#include <cstdio>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

int main() {
  banner("Fig. 11", "Threshold distribution with link latencies");

  scenario::LliExperimentConfig cfg;
  cfg.benign_window = 60_s;   // attack begins one minute after bootstrap
  cfg.attack_window = 120_s;
  const auto series = scenario::run_lli_experiment(cfg);

  section("Series (CSV: t_s,link,latency_ms,threshold_ms,flagged,fake)");
  for (const auto& p : series.points) {
    std::printf("%.3f,%s,%.3f,%s,%d,%d\n", p.t_s, p.link.c_str(),
                p.latency_ms,
                p.threshold_ms ? fmt("%.3f", *p.threshold_ms).c_str() : "NA",
                p.flagged ? 1 : 0, p.fake ? 1 : 0);
  }

  section("Outcome");
  std::printf("  fabricated-link measurements: %zu\n", series.fake_attempts);
  std::printf("  flagged as anomalous:         %zu\n",
              series.fake_detections);
  std::printf("  fabricated link ever in topology: %s\n",
              yes_no(series.fake_link_ever_registered).c_str());

  std::printf(
      "\nPaper reference: bootstrap latencies inflate the threshold\n"
      "briefly, then it converges; the relayed link's ~+11 ms stands\n"
      "clearly above it and every attempt is flagged (Sec. VII-A).\n");
  return 0;
}
