// Routing fast-path microbenchmark — epoch-cached shortest paths.
//
// Workload: a k x k grid topology (k = 12, --quick 8), a stream of
// (src, dst) path queries through topo::PathCache, and periodic link
// churn (remove + re-add one grid edge every 4096 queries, so the epoch
// advances and the cache re-validates the way it does under the paper's
// link-fabrication/teardown attacks). Queries model flow locality the
// way RoutingService sees it — every PacketIn of a flow asks for the
// same (src, dst) path — so 80% of queries draw from a small hot set of
// switch pairs (re-drawn after each churn) and 20% are uniform.
//
// --trials N sets the query count (default 200k, --quick 20k);
// --no-fastpath sends every query through a fresh BFS instead of the
// cache. The printed checksum (total traversals over all queries) is
// identical in both modes — only the wall clock moves. Cache hit/miss
// counters are printed on a [bench] line so the main stdout stays
// diffable across modes.
// Registered in ctest as a non-failing info test (bench.routing.info).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "sim/rng.hpp"
#include "topo/graph.hpp"
#include "topo/path_cache.hpp"

using namespace tmg;
using namespace tmg::bench;

namespace {

constexpr int kGridFull = 12;
constexpr int kGridQuick = 8;
constexpr std::size_t kChurnEvery = 4096;
constexpr std::size_t kHotPairs = 16;

struct Grid {
  topo::TopologyGraph graph;
  std::vector<std::pair<of::Location, of::Location>> edges;
  int side = 0;

  [[nodiscard]] of::Dpid dpid(int r, int c) const {
    return static_cast<of::Dpid>(r * side + c + 1);
  }
};

Grid build_grid(int side) {
  Grid grid;
  grid.side = side;
  std::map<of::Dpid, of::PortNo> next_port;
  const auto port_of = [&](of::Dpid d) {
    return ++next_port[d];  // ports 1, 2, ... per switch
  };
  const auto connect = [&](of::Dpid a, of::Dpid b) {
    const of::Location la{a, port_of(a)};
    const of::Location lb{b, port_of(b)};
    grid.graph.add_link(la, lb);
    grid.edges.emplace_back(la, lb);
  };
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      if (c + 1 < side) connect(grid.dpid(r, c), grid.dpid(r, c + 1));
      if (r + 1 < side) connect(grid.dpid(r, c), grid.dpid(r + 1, c));
    }
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Microbench", "PathCache query throughput under link churn");

  const HarnessOptions opts = parse_harness_args(argc, argv);
  const std::size_t queries = opts.trial_count(200'000, 20'000);
  const int side = opts.quick ? kGridQuick : kGridFull;

  Grid grid = build_grid(side);
  topo::PathCache cache{grid.graph};
  sim::Rng rng{0xB010u};

  std::printf("  %dx%d grid (%zu links), %zu queries (80%% over %zu hot "
              "pairs), churn every %zu\n\n",
              side, side, grid.edges.size(), queries, kHotPairs, kChurnEvery);

  const auto switches = static_cast<std::int64_t>(side) * side;
  const auto edge_count = static_cast<std::int64_t>(grid.edges.size());
  const auto random_dpid = [&] {
    return static_cast<of::Dpid>(rng.uniform_int(1, switches));
  };
  std::vector<std::pair<of::Dpid, of::Dpid>> hot(kHotPairs);
  const auto redraw_hot = [&] {
    for (auto& pair : hot) pair = {random_dpid(), random_dpid()};
  };
  redraw_hot();

  WallTimer timer;
  std::uint64_t total_traversals = 0;
  std::uint64_t unreachable = 0;
  std::uint64_t churns = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    if (q != 0 && q % kChurnEvery == 0) {
      // Tear one edge down and put it back: the link set ends unchanged
      // but the epoch advances twice, invalidating every cached path.
      const auto& [a, b] = grid.edges[static_cast<std::size_t>(
          rng.uniform_int(0, edge_count - 1))];
      grid.graph.remove_link(a, b);
      grid.graph.add_link(a, b);
      ++churns;
      redraw_hot();  // flows shift when the topology does
    }
    of::Dpid from;
    of::Dpid to;
    if (rng.uniform_int(0, 9) < 8) {
      const auto& pair = hot[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kHotPairs) - 1))];
      from = pair.first;
      to = pair.second;
    } else {
      from = random_dpid();
      to = random_dpid();
    }
    const auto path = cache.path(from, to);
    if (path.has_value()) {
      total_traversals += path->size();
    } else {
      ++unreachable;
    }
  }
  const double wall_ms = timer.elapsed_ms();

  // Grid stays connected (churn restores every edge), so unreachable
  // must be 0 and the checksum is identical with --no-fastpath.
  std::printf("  checksum: traversals=%llu unreachable=%llu churns=%llu\n",
              static_cast<unsigned long long>(total_traversals),
              static_cast<unsigned long long>(unreachable),
              static_cast<unsigned long long>(churns));
  std::printf("[bench] path cache: hits=%llu misses=%llu entries=%zu\n",
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()), cache.size());

  BenchResult result;
  result.bench = "routing";
  result.trials = queries;
  result.base_seed = 0xB010u;
  result.jobs = 1;  // single-threaded by construction
  result.wall_ms = wall_ms;
  result.events = queries;
  report_bench(opts, result);
  return 0;  // info bench: never fails ctest on timing
}
