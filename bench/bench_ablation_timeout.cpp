// Ablation — probe timeout from the RTT quantile (DESIGN.md §5.5,
// paper Sec. V-B1).
//
// The attacker derives the probe timeout from the RTT distribution's
// quantile for a desired false-positive rate. This sweeps the target FP
// rate and reports the resulting timeout, the *empirical* FP rate
// against a live target, and the detection latency after a real
// disconnect — the stealth/speed trade at the heart of port probing.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/rng.hpp"
#include "stats/quantile.hpp"

using namespace tmg;
using namespace tmg::bench;

int main() {
  banner("Ablation", "Probe timeout vs. false-positive rate (RTT N(20,5) ms)");

  constexpr double kRttMean = 20.0, kRttSd = 5.0;
  constexpr double kPeriod = 50.0;  // probe cadence, ms

  Table table({"Target FP", "Timeout (ms)", "Empirical FP",
               "Mean detect latency (ms)", "Worst-case (ms)"});
  for (const double fp : {0.10, 0.05, 0.01, 0.001, 0.0001}) {
    const double timeout =
        stats::probe_timeout_for_fp_rate(kRttMean, kRttSd, fp);

    // Empirical FP: fraction of live-target probes whose reply misses
    // the timeout.
    sim::Rng rng{static_cast<std::uint64_t>(fp * 1e7) + 3};
    int late = 0;
    const int n = 500'000;
    for (int i = 0; i < n; ++i) {
      if (rng.normal(kRttMean, kRttSd) > timeout) ++late;
    }
    const double empirical = static_cast<double>(late) / n;

    // Detection latency after a real disconnect: the victim goes down
    // uniformly within a probe period; the first probe *sent after*
    // (or in flight past) the down instant fails after `timeout`.
    double sum = 0.0, worst = 0.0;
    const int m = 200'000;
    for (int i = 0; i < m; ++i) {
      const double phase = rng.uniform(0.0, kPeriod);  // down-to-next-probe
      // Probes already in flight may still complete if the request
      // reached the victim (one-way ~ RTT/2 before down): conservatively
      // the failing probe starts at `phase` after down.
      const double latency = phase + timeout;
      sum += latency;
      worst = std::max(worst, latency);
    }
    table.add_row({fmt("%.4f", fp), fmt("%.1f", timeout),
                   fmt("%.4f", empirical), fmt("%.1f", sum / m),
                   fmt("%.1f", worst)});
  }
  table.print();

  std::printf(
      "\nExpected shape: tighter FP targets inflate the timeout (the\n"
      "normal quantile), buying stealth against spurious hijack triggers\n"
      "at the cost of reaction time inside the victim's downtime window.\n"
      "The paper picks 1%% -> ~31.6 ms, rounded up to 35 ms.\n");
  return 0;
}
