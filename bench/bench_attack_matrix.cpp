// Sec. V-A — The attack/defense matrix.
//
// Every link attack against every defense suite: whether the fabricated
// link registered, whether MITM traffic crossed it, and what alerted.
// The paper's headline row is out-of-band port amnesia bypassing
// TopoGuard and SPHINX simultaneously while TOPOGUARD+ stops it.
#include <cstdio>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::bench;
using scenario::DefenseSuite;
using scenario::LinkAttackKind;

int main() {
  banner("Sec. V-A", "Link fabrication attack/defense matrix");

  const LinkAttackKind kinds[] = {
      LinkAttackKind::ClassicRelay,
      LinkAttackKind::OobAmnesia,
      LinkAttackKind::OobAmnesiaNaive,
      LinkAttackKind::InBandAmnesia,
  };
  const DefenseSuite suites[] = {
      DefenseSuite::None,
      DefenseSuite::TopoGuard,
      DefenseSuite::Sphinx,
      DefenseSuite::TopoGuardAndSphinx,
      DefenseSuite::TopoGuardPlus,
  };

  Table table({"Attack", "Defense", "Link made", "Held at end", "MITM",
               "Flaps", "TG", "SPHINX", "CMM", "LLI", "Detected"});
  for (const auto kind : kinds) {
    for (const auto suite : suites) {
      scenario::LinkAttackConfig cfg;
      cfg.kind = kind;
      cfg.suite = suite;
      const auto out = scenario::run_link_attack(cfg);
      table.add_row({scenario::to_string(kind), scenario::to_string(suite),
                     yes_no(out.link_registered),
                     yes_no(out.link_present_at_end), yes_no(out.mitm_traffic),
                     fmt_u(out.flaps), fmt_u(out.alerts_topoguard),
                     fmt_u(out.alerts_sphinx), fmt_u(out.alerts_cmm),
                     fmt_u(out.alerts_lli), yes_no(out.detected())});
    }
  }
  table.print();

  std::printf(
      "\nExpected shape (paper Sec. V-A, VII-A):\n"
      "  - classic relay: works on bare/SPHINX controllers, TopoGuard\n"
      "    catches it (LLDP from a HOST port);\n"
      "  - oob port amnesia: bypasses TopoGuard, SPHINX, and both\n"
      "    together, undetected, with working MITM; only TOPOGUARD+'s\n"
      "    LLI stops it;\n"
      "  - naive oob (flap during propagation): CMM also fires;\n"
      "  - in-band: bypasses TopoGuard/SPHINX at the cost of repeated\n"
      "    context-switch flaps; CMM detects and blocks it.\n");
  return 0;
}
