// Sec. V-A — The attack/defense matrix.
//
// Every link attack against every defense suite: whether the fabricated
// link registered, whether MITM traffic crossed it, and what alerted.
// The paper's headline row is out-of-band port amnesia bypassing
// TopoGuard and SPHINX simultaneously while TOPOGUARD+ stops it.
//
// With --trials N each of the 20 cells is run N times (seeds derived
// from trial_seed(42, t)) and the table reports how often each outcome
// held. All trials fan out across --jobs worker threads; results are
// merged in trial-index order, so the table is identical for every
// --jobs value.
//
// Extra flags on top of the shared harness set:
//   --stacked          add a sixth defense column running TopoGuard,
//                      SPHINX, CMM and LLI simultaneously as stacked
//                      pipeline listeners (default table is unchanged)
//   --pipeline-stats   print per-listener dispatch/stop counters per
//                      defense suite after the matrix
//   --profile=<name>   run every cell under that controller pipeline
//                      profile (floodlight/pox/opendaylight/onos);
//                      unknown names exit 2. Announced via a [bench]
//                      line only, so golden gates stay byte-clean.
//   --check            attach the runtime invariant checker to every
//                      trial and fail on any violation (CI smoke)
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "ctrl/profiles.hpp"
#include "obs/observability.hpp"
#include "scenario/experiments.hpp"
#include "scenario/trial_arena.hpp"
#include "scenario/trial_runner.hpp"

using namespace tmg;
using namespace tmg::bench;
using scenario::DefenseSuite;
using scenario::LinkAttackKind;

namespace {

// Strict resolution, same contract as parse_trials_or_die: an unknown
// profile name is a usage error, not a silent default.
ctrl::ControllerProfile parse_profile_or_die(const std::string& value) {
  auto profile = ctrl::profile_by_name(value);
  if (!profile) {
    std::string names;
    for (const auto& n : ctrl::profile_cli_names()) names += " " + n;
    std::fprintf(stderr, "error: unknown --profile '%s' (valid:%s)\n",
                 value.c_str(), names.c_str());
    std::exit(2);
  }
  return *profile;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Sec. V-A", "Link fabrication attack/defense matrix");

  const LinkAttackKind kinds[] = {
      LinkAttackKind::ClassicRelay,
      LinkAttackKind::OobAmnesia,
      LinkAttackKind::OobAmnesiaNaive,
      LinkAttackKind::InBandAmnesia,
  };
  std::vector<DefenseSuite> suites = {
      DefenseSuite::None,
      DefenseSuite::TopoGuard,
      DefenseSuite::Sphinx,
      DefenseSuite::TopoGuardAndSphinx,
      DefenseSuite::TopoGuardPlus,
  };

  bool stacked = false;
  bool show_pipeline = false;
  bool check_invariants = false;
  std::optional<ctrl::ControllerProfile> profile;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stacked") stacked = true;
    if (arg == "--pipeline-stats") show_pipeline = true;
    if (arg == "--check") check_invariants = true;
    if (arg.rfind("--profile=", 0) == 0) {
      profile = parse_profile_or_die(arg.substr(10));
    } else if (arg == "--profile" && i + 1 < argc) {
      profile = parse_profile_or_die(argv[++i]);
    }
  }
  if (stacked) suites.push_back(DefenseSuite::Stacked);
  const std::size_t n_suites = suites.size();
  const std::size_t kCells = 4 * n_suites;

  const HarnessOptions opts = parse_harness_args(argc, argv);
  // Default: 1 trial per cell with the canonical seed 42 (the classic
  // single-run table); --trials 10 = 200-experiment workload.
  const std::size_t trials_per_cell = opts.trial_count(1, 1);
  const std::size_t total = trials_per_cell * kCells;

  scenario::TrialRunner runner{opts.runner_options()};
  // One warm arena per worker: each worker's trials reuse one event-loop
  // slab instead of reallocating per trial (observationally neutral —
  // tests/trial_runner_test.cpp pins arena == fresh byte-for-byte).
  std::vector<std::unique_ptr<scenario::TrialArena>> arenas;
  for (std::size_t w = 0; w < runner.jobs(); ++w) {
    arenas.push_back(std::make_unique<scenario::TrialArena>());
  }
  WallTimer timer;
  const auto outcomes =
      runner.map(total, [&](std::size_t i) -> scenario::LinkAttackOutcome {
        const std::size_t cell = i % kCells;
        const std::size_t trial = i / kCells;
        scenario::LinkAttackConfig cfg;
        cfg.kind = kinds[cell / n_suites];
        cfg.suite = suites[cell % n_suites];
        cfg.collect_pipeline_stats = show_pipeline;
        // Trial 0 keeps the canonical seed so the default table matches
        // the paper walk-through; later trials draw derived seeds.
        cfg.seed = trial == 0 ? 42 : scenario::TrialRunner::trial_seed(42, trial);
        // Benches measure the simulator, not the audit battery: the
        // invariant checker is a read-only post-event hook, so skipping
        // it changes wall clock only (tests keep it on; the CI
        // profile-matrix leg turns it back on with --check).
        cfg.check_invariants = check_invariants;
        cfg.profile = profile;
        cfg.arena = arenas[scenario::TrialRunner::worker_slot()].get();
        return scenario::run_link_attack(cfg);
      });
  const double wall_ms = timer.elapsed_ms();

  std::uint64_t events = 0;
  for (const auto& out : outcomes) events += out.events_executed;

  const auto frac = [&](std::size_t count) {
    if (trials_per_cell == 1) return std::string(count != 0 ? "yes" : "no");
    return std::to_string(count) + "/" + std::to_string(trials_per_cell);
  };

  Table table({"Attack", "Defense", "Link made", "Held at end", "MITM",
               "Flaps", "TG", "SPHINX", "CMM", "LLI", "Detected"});
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    std::size_t made = 0, held = 0, mitm = 0, detected = 0;
    std::uint64_t flaps = 0, tg = 0, sphinx = 0, cmm = 0, lli = 0;
    for (std::size_t t = 0; t < trials_per_cell; ++t) {
      const auto& out = outcomes[t * kCells + cell];
      made += out.link_registered ? 1 : 0;
      held += out.link_present_at_end ? 1 : 0;
      mitm += out.mitm_traffic ? 1 : 0;
      detected += out.detected() ? 1 : 0;
      flaps += out.flaps;
      tg += out.alerts_topoguard;
      sphinx += out.alerts_sphinx;
      cmm += out.alerts_cmm;
      lli += out.alerts_lli;
    }
    table.add_row({scenario::to_string(kinds[cell / n_suites]),
                   scenario::to_string(suites[cell % n_suites]), frac(made),
                   frac(held), frac(mitm), fmt_u(flaps), fmt_u(tg),
                   fmt_u(sphinx), fmt_u(cmm), fmt_u(lli), frac(detected)});
  }
  table.print();

  std::printf(
      "\nExpected shape (paper Sec. V-A, VII-A):\n"
      "  - classic relay: works on bare/SPHINX controllers, TopoGuard\n"
      "    catches it (LLDP from a HOST port);\n"
      "  - oob port amnesia: bypasses TopoGuard, SPHINX, and both\n"
      "    together, undetected, with working MITM; only TOPOGUARD+'s\n"
      "    LLI stops it;\n"
      "  - naive oob (flap during propagation): CMM also fires;\n"
      "  - in-band: bypasses TopoGuard/SPHINX at the cost of repeated\n"
      "    context-switch flaps; CMM detects and blocks it.\n");

  if (show_pipeline) {
    // Per-listener dispatch counters aggregated over attacks and trials
    // for each defense suite. Deliberately excludes wall time: counters
    // are deterministic, host clocks are not.
    std::printf("\nPipeline listener stats (summed over attacks/trials):\n");
    Table pstats({"Defense", "Listener", "Prio", "Dispatches", "Stops"});
    for (std::size_t s = 0; s < n_suites; ++s) {
      // Keyed by (priority, name): the chain order within each suite.
      std::map<std::pair<int, std::string>,
               std::pair<std::uint64_t, std::uint64_t>>
          agg;
      for (std::size_t cell = 0; cell < kCells; ++cell) {
        if (cell % n_suites != s) continue;
        for (std::size_t t = 0; t < trials_per_cell; ++t) {
          for (const auto& ls : outcomes[t * kCells + cell].pipeline_stats) {
            auto& slot = agg[{ls.priority, ls.name}];
            slot.first += ls.dispatches;
            slot.second += ls.stops;
          }
        }
      }
      for (const auto& [key, counts] : agg) {
        pstats.add_row({scenario::to_string(suites[s]), key.second,
                        fmt_u(static_cast<std::uint64_t>(key.first)),
                        fmt_u(counts.first), fmt_u(counts.second)});
      }
    }
    pstats.print();
  }

  if (profile) {
    // [bench] lines are stripped by the golden/fastpath gates, so the
    // profile announcement never perturbs byte-identity checks.
    std::printf("[bench] profile=%s\n", profile->name.c_str());
  }
  std::uint64_t inv_sweeps = 0, inv_violations = 0;
  if (check_invariants) {
    for (const auto& out : outcomes) {
      inv_sweeps += out.invariant_sweeps;
      inv_violations += out.invariant_violations;
    }
    std::printf("[bench] invariants: sweeps=%llu violations=%llu\n",
                static_cast<unsigned long long>(inv_sweeps),
                static_cast<unsigned long long>(inv_violations));
  }

  BenchResult result;
  result.bench = "attack_matrix";
  result.trials = total;
  result.base_seed = 42;
  result.jobs = runner.jobs();
  result.wall_ms = wall_ms;
  result.events = events;
  if (opts.obs) {
    // Observed re-run of the headline cell (oob amnesia vs TOPOGUARD+):
    // its metrics snapshot lands under "obs" in the JSON result. Kept
    // out of the timed workload above.
    obs::Observability obs;
    scenario::LinkAttackConfig cfg;
    cfg.kind = LinkAttackKind::OobAmnesia;
    cfg.suite = DefenseSuite::TopoGuardPlus;
    cfg.seed = 42;
    cfg.obs = &obs;
    (void)scenario::run_link_attack(cfg);
    result.obs_metrics_json = obs.metrics_json(obs.final_time());
    if (!write_obs_artifacts(opts, obs)) return 1;
  }
  if (!report_bench(opts, result)) return 1;
  return check_invariants && inv_violations != 0 ? 1 : 0;
}
