// Fig. 6 — Distribution of times from Victim Down to Controller
// Packet-In: the Host Tracking Service has re-bound the victim's
// identity to the attacker, and victim-bound traffic now reaches the
// attacker.
//
// Paper: mean ~549 ms in the nmap regime.
#include "hijack_series.hpp"

using namespace tmg;
using namespace tmg::bench;

int main() {
  banner("Fig. 6", "Victim Down -> Controller acknowledges attacker");
  const auto series = collect_hijack_metric(
      100, /*nmap_regime=*/true, [](const scenario::HijackOutcome& out) {
        return out.down_to_confirmed_ms;
      });
  print_series(series, "ms", 0.0, 1000.0);
  std::printf(
      "\nPaper reference: 549 ms mean from victim-down to controller\n"
      "recognition; live-migration downtime windows are seconds, so the\n"
      "majority of the window remains for attacker actions (Sec. V-B).\n");
  return 0;
}
