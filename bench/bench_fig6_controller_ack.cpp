// Fig. 6 — Distribution of times from Victim Down to Controller
// Packet-In: the Host Tracking Service has re-bound the victim's
// identity to the attacker, and victim-bound traffic now reaches the
// attacker.
//
// Paper: mean ~549 ms in the nmap regime.
#include "hijack_series.hpp"

using namespace tmg;
using namespace tmg::bench;

int main(int argc, char** argv) {
  banner("Fig. 6", "Victim Down -> Controller acknowledges attacker");
  const int rc = run_hijack_figure(
      argc, argv, "fig6_controller_ack", 100, /*nmap_regime=*/true, "ms", 0.0,
      1000.0, [](const scenario::HijackOutcome& out) {
        return out.down_to_confirmed_ms;
      });
  std::printf(
      "\nPaper reference: 549 ms mean from victim-down to controller\n"
      "recognition; live-migration downtime windows are seconds, so the\n"
      "majority of the window remains for attacker actions (Sec. V-B).\n");
  return rc;
}
