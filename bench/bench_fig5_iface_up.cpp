// Fig. 5 — Distribution of times from Victim Down to Attacker Interface
// Up (the attacker has claimed the victim's network identity).
//
// Paper: mean ~478 ms in the nmap regime, dominated by engine overhead
// and the confirmation scan's timeout.
#include "hijack_series.hpp"

using namespace tmg;
using namespace tmg::bench;

int main(int argc, char** argv) {
  banner("Fig. 5", "Victim Down -> Attacker Interface Up");
  const int rc = run_hijack_figure(
      argc, argv, "fig5_iface_up", 100, /*nmap_regime=*/true, "ms", 0.0,
      1000.0, [](const scenario::HijackOutcome& out) {
        return out.down_to_iface_up_ms;
      });
  std::printf(
      "\nPaper reference: 478 ms mean; the bulk of the delay is spent in\n"
      "scan-engine overhead and waiting out probe timeouts (Sec. V-B).\n");
  return rc;
}
