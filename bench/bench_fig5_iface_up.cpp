// Fig. 5 — Distribution of times from Victim Down to Attacker Interface
// Up (the attacker has claimed the victim's network identity).
//
// Paper: mean ~478 ms in the nmap regime, dominated by engine overhead
// and the confirmation scan's timeout.
#include "hijack_series.hpp"

using namespace tmg;
using namespace tmg::bench;

int main() {
  banner("Fig. 5", "Victim Down -> Attacker Interface Up");
  const auto series = collect_hijack_metric(
      100, /*nmap_regime=*/true, [](const scenario::HijackOutcome& out) {
        return out.down_to_iface_up_ms;
      });
  print_series(series, "ms", 0.0, 1000.0);
  std::printf(
      "\nPaper reference: 478 ms mean; the bulk of the delay is spent in\n"
      "scan-engine overhead and waiting out probe timeouts (Sec. V-B).\n");
  return 0;
}
