// Active defense evaluation (paper Sec. X: "active, dynamic defenses
// will be necessary to mitigate topology tampering").
//
// Pits the passive TOPOGUARD+ stack and the active link verifier
// against out-of-band port amnesia across progressively faster relay
// channels. Both ultimately rest on latency evidence, but the active
// verifier's min-of-K challenge probing pushes the detection cliff down
// from the jitter envelope (Q3+3*IQR over bursty history) to just above
// the nominal wire latency.
#include <cstdio>

#include "attack/port_amnesia.hpp"
#include "bench_util.hpp"
#include "defense/active_probe.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/fig9_testbed.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

namespace {

enum class Stack { TopoGuardPlus, ActiveProbe };

struct Outcome {
  bool link_registered = false;
  std::size_t real_links = 0;  // genuine links admitted (sanity: 4)
  std::size_t alerts = 0;
};

Outcome run(Stack stack, double channel_ms) {
  scenario::TestbedOptions opts = scenario::fig9_options(42);
  if (stack == Stack::ActiveProbe) {
    opts.controller.authenticate_lldp = false;
    opts.controller.lldp_timestamps = false;  // needs no TLV support
  }
  scenario::Fig9Testbed f = scenario::make_fig9_testbed(std::move(opts));
  if (stack == Stack::TopoGuardPlus) {
    defense::install_topoguard_plus(f.tb->controller());
  } else {
    defense::ActiveProbeConfig ap;
    // min-of-K probing needs only jitter-floor margin over the nominal
    // 5 ms wires, not the whole micro-burst envelope.
    ap.probes = 5;
    ap.max_link_latency = sim::Duration::from_millis_f(5.5);
    defense::install_active_probe(f.tb->controller(), ap);
  }
  f.tb->start(2_s);
  scenario::fig9_warm_hosts(f);
  f.tb->run_for(60_s);

  attack::OobChannelConfig cc;
  cc.latency = sim::Duration::from_millis_f(channel_ms);
  cc.codec_overhead = sim::Duration::from_millis_f(channel_ms / 10.0);
  cc.jitter = sim::Duration::from_millis_f(channel_ms / 20.0);
  attack::OutOfBandChannel& channel = f.tb->add_oob_channel(cc);

  attack::PortAmnesiaAttack::Config ac;
  ac.preposition_flap = true;
  attack::PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a,
                                   *f.attacker_b, &channel, ac};
  attack.start();

  Outcome out;
  for (int i = 0; i < 90; ++i) {
    f.tb->run_for(1_s);
    if (f.fabricated_link_present()) out.link_registered = true;
  }
  out.alerts = f.tb->controller().alerts().count();
  out.real_links = f.tb->controller().topology().link_count() -
                   (f.fabricated_link_present() ? 1 : 0);
  return out;
}

}  // namespace

int main() {
  banner("Sec. X", "Passive (TOPOGUARD+) vs. active link verification");

  Table table({"Relay channel (one-way, ms)", "TOPOGUARD+ stops it",
               "ActiveProbe stops it", "Genuine links intact"});
  for (const double ms : {10.0, 5.0, 2.5, 1.0, 0.2}) {
    const Outcome passive = run(Stack::TopoGuardPlus, ms);
    const Outcome active = run(Stack::ActiveProbe, ms);
    table.add_row({fmt("%.1f", ms),
                   passive.link_registered ? "NO (poisoned)" : "yes",
                   active.link_registered ? "NO (poisoned)" : "yes",
                   fmt_u(passive.real_links) + "/4 and " +
                       fmt_u(active.real_links) + "/4"});
  }
  table.print();

  std::printf(
      "\nExpected shape: both stop the paper's 802.11-class relay; as the\n"
      "channel approaches wire speed the passive IQR fence (sitting above\n"
      "the micro-burst envelope, ~6-7 ms here) goes blind first, while\n"
      "min-of-K challenge probing holds until the relay's *added* latency\n"
      "sinks under the measurement noise floor (5.5 ms bound on 5 ms\n"
      "wires here). No latency\n"
      "detector survives a true wire-speed relay — the paper's rationale\n"
      "for scoping hardware relays out (Sec. VI) and for defense in\n"
      "depth.\n");
  return 0;
}
