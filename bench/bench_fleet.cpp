// Fleet-scale sweep: topology size x background load (DESIGN.md §12).
//
// Every cell instantiates a generated fat-tree (topo::generate) as a
// live testbed — hundreds of switches, the full host population tracked
// by the sharded HTS — and runs the paper's two attacks end to end
// through the real pipeline while scenario::BackgroundTraffic keeps the
// control plane busy: the host-location hijack (Figs. 5-8 race windows,
// now raced against a loaded controller) and the classic link
// fabrication. The k=16 cell tracks all 1,024 generated hosts with
// background traffic on.
//
// Scale machinery is the same as bench_montecarlo: trials stream
// through TrialRunner::reduce() into streaming-quantile accumulators
// inside per-worker TrialArenas; chunk boundaries and merge order
// depend only on the trial count, so stdout (minus the [bench] footer)
// and the "fleet" JSON payload are byte-identical for every --jobs
// value (tools/run_bench.py --fleet-check diffs jobs 1 vs 8).
//
// A host-table microbench rides along: direct HostTable insert/lookup
// throughput at fleet-beyond sizes (10^6 records), printed as [bench]
// timing lines (wall-clock, excluded from the determinism diff) with
// only the deterministic record/audit counts entering the JSON.
//
//   --trials N   trials per (cell, attack) (default 4; --quick 2)
//   --jobs N     worker threads (0 = hardware)
//   --json PATH  bench record + "fleet" cell tables
//   --obs        observed re-run of the first cell's hijack ("obs" key)
//   --obs-out / --trace-out
//                export that run's metrics JSON / trace JSONL to files
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "bench_util.hpp"
#include "ctrl/host_table.hpp"
#include "ctrl/profiles.hpp"
#include "obs/observability.hpp"
#include "scenario/fleet.hpp"
#include "scenario/trial_arena.hpp"
#include "scenario/trial_runner.hpp"
#include "stats/streaming_quantile.hpp"
#include "topo/generate.hpp"

using namespace tmg;
using namespace tmg::bench;

namespace {

struct Metric {
  const char* key;
  const char* label;
  std::optional<double> (*get)(const scenario::FleetHijackOutcome&);
};

const Metric kMetrics[] = {
    {"iface_up_ms", "Fig5 iface-up",
     [](const scenario::FleetHijackOutcome& o) {
       return o.down_to_iface_up_ms;
     }},
    {"confirmed_ms", "Fig6 confirmed",
     [](const scenario::FleetHijackOutcome& o) {
       return o.down_to_confirmed_ms;
     }},
    {"final_probe_start_ms", "Fig7 probe-start",
     [](const scenario::FleetHijackOutcome& o) {
       return o.down_to_final_probe_start_ms;
     }},
    {"declared_down_ms", "Fig8 declared-down",
     [](const scenario::FleetHijackOutcome& o) {
       return o.down_to_declared_down_ms;
     }},
};
constexpr std::size_t kNMetrics = sizeof(kMetrics) / sizeof(kMetrics[0]);

struct Dist {
  std::uint64_t count = 0;
  double sum = 0.0;
  stats::StreamingQuantile p50{0.50};
  stats::StreamingQuantile p90{0.90};

  void fold(double x) {
    ++count;
    sum += x;
    p50.add(x);
    p90.add(x);
  }
  void merge(const Dist& other) {
    count += other.count;
    sum += other.sum;
    p50.merge(other.p50);
    p90.merge(other.p90);
  }
};

struct HijackAcc {
  std::uint64_t trials = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t events = 0;
  std::uint64_t hosts_tracked = 0;  // identical per trial; keep the max
  std::uint64_t bg_flows = 0;
  std::uint64_t bg_migrations = 0;
  Dist dist[kNMetrics];

  void fold(const scenario::FleetHijackOutcome& out) {
    ++trials;
    if (out.hijack_succeeded) ++succeeded;
    events += out.events_executed;
    hosts_tracked = std::max(hosts_tracked,
                             static_cast<std::uint64_t>(out.hosts_tracked));
    bg_flows += out.background.flows_started;
    bg_migrations += out.background.migrations;
    for (std::size_t m = 0; m < kNMetrics; ++m) {
      if (const auto v = kMetrics[m].get(out)) dist[m].fold(*v);
    }
  }
  void merge(const HijackAcc& other) {
    trials += other.trials;
    succeeded += other.succeeded;
    events += other.events;
    hosts_tracked = std::max(hosts_tracked, other.hosts_tracked);
    bg_flows += other.bg_flows;
    bg_migrations += other.bg_migrations;
    for (std::size_t m = 0; m < kNMetrics; ++m) dist[m].merge(other.dist[m]);
  }
};

struct LinkAcc {
  std::uint64_t trials = 0;
  std::uint64_t registered = 0;
  std::uint64_t mitm = 0;
  std::uint64_t events = 0;
  std::uint64_t hosts_tracked = 0;
  std::uint64_t bg_flows = 0;

  void fold(const scenario::FleetLinkAttackOutcome& out) {
    ++trials;
    if (out.link_registered) ++registered;
    if (out.mitm_traffic) ++mitm;
    events += out.events_executed;
    hosts_tracked = std::max(hosts_tracked,
                             static_cast<std::uint64_t>(out.hosts_tracked));
    bg_flows += out.background.flows_started;
  }
  void merge(const LinkAcc& other) {
    trials += other.trials;
    registered += other.registered;
    mitm += other.mitm;
    events += other.events;
    hosts_tracked = std::max(hosts_tracked, other.hosts_tracked);
    bg_flows += other.bg_flows;
  }
};

struct Cell {
  std::string label;
  topo::GeneratorConfig gen;
  bool background = true;
  /// Controller pipeline profile override; unset = testbed default
  /// (Floodlight). The ONOS cell races the hijack against
  /// probe-before-move migration on the same fabric.
  std::optional<ctrl::ControllerProfile> profile;
};

std::string fmt_d(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string dist_json(const Dist& d) {
  if (d.count == 0) return "{\"count\": 0}";
  std::string s = "{\"count\": " + std::to_string(d.count);
  s += ", \"mean\": " + fmt_d(d.sum / static_cast<double>(d.count));
  s += ", \"min\": " + fmt_d(d.p50.min());
  s += ", \"p50\": " + fmt_d(d.p50.value());
  s += ", \"p90\": " + fmt_d(d.p90.value());
  s += ", \"max\": " + fmt_d(d.p50.max());
  s += "}";
  return s;
}

/// Direct sharded-table throughput at fleet-beyond population sizes
/// (the HTS data structure, without the simulator around it). Returns
/// the deterministic JSON fragment; timing goes to [bench] stdout.
std::string host_table_microbench(std::size_t records) {
  ctrl::HostTable table;
  WallTimer insert_timer;
  for (std::size_t i = 0; i < records; ++i) {
    ctrl::HostRecord rec;
    rec.mac = topo::fleet_mac(static_cast<std::uint32_t>(i));
    rec.ip = topo::fleet_ip(static_cast<std::uint32_t>(i));
    rec.loc = of::Location{1 + (i >> 6), static_cast<of::PortNo>(i & 63)};
    table.insert(rec);
  }
  const double insert_ms = insert_timer.elapsed_ms();

  WallTimer lookup_timer;
  std::size_t found = 0;
  for (std::size_t i = 0; i < records; ++i) {
    found += table.find(topo::fleet_mac(static_cast<std::uint32_t>(i))) !=
             nullptr;
  }
  const double lookup_ms = lookup_timer.elapsed_ms();
  const std::vector<std::string> issues = table.audit();

  std::printf(
      "[bench] host-table: %zu learns in %.1f ms (%.3g/s), %zu lookups in "
      "%.1f ms (%.3g/s)\n",
      records, insert_ms, static_cast<double>(records) / (insert_ms / 1e3),
      found, lookup_ms, static_cast<double>(records) / (lookup_ms / 1e3));

  std::string s = "{\"records\": " + std::to_string(records);
  s += ", \"found\": " + std::to_string(found);
  s += ", \"audit_findings\": " + std::to_string(issues.size());
  s += "}";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Fleet scale", "generated fabrics + background load, both attacks");

  const HarnessOptions opts = parse_harness_args(argc, argv);
  const std::size_t per_cell = opts.trial_count(4, 2);

  std::vector<Cell> cells;
  {
    Cell c;
    c.label = "fat-tree k=4 idle";
    c.gen.k = 4;
    c.background = false;
    cells.push_back(c);
    c.label = "fat-tree k=4";
    c.background = true;
    cells.push_back(c);
    c.label = "fat-tree k=4 onos";
    c.gen.k = 4;
    c.profile = ctrl::onos_profile();
    cells.push_back(c);
    c.profile.reset();
    c.label = "fat-tree k=8";
    c.gen.k = 8;
    cells.push_back(c);
    if (!opts.quick) {
      // The headline cell: 320 switches, all 1,024 generated hosts
      // tracked, background traffic on.
      c.label = "fat-tree k=16";
      c.gen.k = 16;
      cells.push_back(c);
    }
  }

  scenario::TrialRunner runner{opts.runner_options()};
  std::vector<std::unique_ptr<scenario::TrialArena>> arenas;
  arenas.reserve(runner.jobs());
  for (std::size_t w = 0; w < runner.jobs(); ++w) {
    arenas.push_back(std::make_unique<scenario::TrialArena>());
  }

  WallTimer timer;
  std::vector<HijackAcc> hijacks;
  std::vector<LinkAcc> links;
  std::uint64_t events = 0;
  for (const Cell& cell : cells) {
    HijackAcc h = runner.reduce(
        per_cell, [] { return HijackAcc{}; },
        [&](HijackAcc& a, std::size_t i) {
          scenario::FleetHijackConfig cfg;
          cfg.topology = cell.gen;
          cfg.seed = scenario::TrialRunner::trial_seed(42, i);
          cfg.background_on = cell.background;
          cfg.profile = cell.profile;
          cfg.settle_window = sim::Duration::seconds(3);
          cfg.check_invariants = false;
          cfg.arena = arenas[scenario::TrialRunner::worker_slot()].get();
          a.fold(scenario::run_fleet_hijack(cfg));
        },
        [](HijackAcc& total, HijackAcc&& part) { total.merge(part); });
    LinkAcc l = runner.reduce(
        per_cell, [] { return LinkAcc{}; },
        [&](LinkAcc& a, std::size_t i) {
          scenario::FleetLinkAttackConfig cfg;
          cfg.topology = cell.gen;
          cfg.kind = scenario::LinkAttackKind::ClassicRelay;
          cfg.seed = scenario::TrialRunner::trial_seed(43, i);
          cfg.background_on = cell.background;
          cfg.profile = cell.profile;
          cfg.benign_window = sim::Duration::seconds(4);
          cfg.attack_window = sim::Duration::seconds(34);
          cfg.check_invariants = false;
          cfg.arena = arenas[scenario::TrialRunner::worker_slot()].get();
          a.fold(scenario::run_fleet_link_attack(cfg));
        },
        [](LinkAcc& total, LinkAcc&& part) { total.merge(part); });
    events += h.events + l.events;
    hijacks.push_back(std::move(h));
    links.push_back(std::move(l));
  }
  const double wall_ms = timer.elapsed_ms();

  Table table({"Topology", "sw", "hosts", "bg", "hijack", "p50 confirm ms",
               "link-reg", "events/trial"});
  std::string cells_json = "[";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const topo::GeneratedTopology shape = topo::generate(cells[c].gen);
    const HijackAcc& h = hijacks[c];
    const LinkAcc& l = links[c];
    const Dist& confirmed = h.dist[1];
    table.add_row(
        {cells[c].label, fmt_u(shape.switch_count()),
         fmt_u(h.hosts_tracked), cells[c].background ? "on" : "off",
         fmt_u(h.succeeded) + "/" + fmt_u(h.trials),
         confirmed.count ? fmt("%.1f", confirmed.p50.value()) : "-",
         fmt_u(l.registered) + "/" + fmt_u(l.trials),
         fmt_u((h.events + l.events) / (h.trials + l.trials))});

    if (c != 0) cells_json += ", ";
    cells_json += "{\"label\": \"" + cells[c].label + "\"";
    cells_json += ", \"family\": \"" + shape.family + "\"";
    cells_json += ", \"k\": " + std::to_string(cells[c].gen.k);
    cells_json += ", \"switches\": " + std::to_string(shape.switch_count());
    cells_json += ", \"background\": ";
    cells_json += cells[c].background ? "true" : "false";
    cells_json += ", \"profile\": \"" +
                  (cells[c].profile ? cells[c].profile->name
                                    : std::string{"Floodlight"}) +
                  "\"";
    cells_json += ", \"hijack\": {\"trials\": " + std::to_string(h.trials);
    cells_json += ", \"succeeded\": " + std::to_string(h.succeeded);
    cells_json += ", \"hosts_tracked\": " + std::to_string(h.hosts_tracked);
    cells_json += ", \"events\": " + std::to_string(h.events);
    cells_json += ", \"bg_flows\": " + std::to_string(h.bg_flows);
    cells_json += ", \"bg_migrations\": " + std::to_string(h.bg_migrations);
    cells_json += ", \"windows\": {";
    for (std::size_t m = 0; m < kNMetrics; ++m) {
      if (m != 0) cells_json += ", ";
      cells_json += std::string("\"") + kMetrics[m].key +
                    "\": " + dist_json(h.dist[m]);
    }
    cells_json += "}}";
    cells_json += ", \"link_attack\": {\"trials\": " + std::to_string(l.trials);
    cells_json += ", \"registered\": " + std::to_string(l.registered);
    cells_json += ", \"mitm\": " + std::to_string(l.mitm);
    cells_json += ", \"hosts_tracked\": " + std::to_string(l.hosts_tracked);
    cells_json += ", \"events\": " + std::to_string(l.events);
    cells_json += ", \"bg_flows\": " + std::to_string(l.bg_flows);
    cells_json += "}}";
  }
  cells_json += "]";
  table.print();

  std::printf(
      "\nEach cell: %zu hijack + %zu link-fabrication trials on a live\n"
      "generated fabric (full population tracked by the sharded HTS,\n"
      "background flows/ARP churn/mobility on unless 'idle'), streamed\n"
      "through per-worker arenas; byte-identical at any --jobs.\n",
      per_cell, per_cell);

  const std::string host_table_json =
      host_table_microbench(opts.quick ? 200'000 : 1'000'000);

  BenchResult result;
  result.bench = "fleet";
  result.trials = per_cell * 2 * cells.size();
  result.base_seed = 42;
  result.jobs = runner.jobs();
  result.wall_ms = wall_ms;
  result.events = events;
  result.extra_key = "fleet";
  result.extra_json = "{\"trials_per_cell\": " + std::to_string(per_cell) +
                      ", \"host_table\": " + host_table_json +
                      ", \"cells\": " + cells_json + "}";
  if (opts.obs) {
    // Observed re-run of the first cell's hijack trial (seed 42), kept
    // out of the timed sweep above. Its metrics land under "obs" in
    // the JSON result; --obs-out and --trace-out export the snapshot /
    // trace for tools/train_profile.
    obs::Observability obs;
    scenario::FleetHijackConfig cfg;
    cfg.topology = cells.front().gen;
    cfg.seed = scenario::TrialRunner::trial_seed(42, 0);
    cfg.background_on = cells.front().background;
    cfg.profile = cells.front().profile;
    cfg.settle_window = sim::Duration::seconds(3);
    cfg.check_invariants = false;
    cfg.obs = &obs;
    (void)scenario::run_fleet_hijack(cfg);
    result.obs_metrics_json = obs.metrics_json(obs.final_time());
    if (!write_obs_artifacts(opts, obs)) return 1;
  }
  return report_bench(opts, result) ? 0 : 1;
}
