// Fig. 10 — The latency of switch internal links.
//
// Runs the Fig. 9 testbed under TOPOGUARD+ with no attack and reports
// the LLI's per-link latency measurements: ~5 ms per link with
// occasional micro-bursts toward ~12 ms, exactly the calibration data
// the detection threshold is computed from.
#include <cstdio>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"
#include "stats/histogram.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

int main() {
  banner("Fig. 10", "The latency of switch internal links");

  scenario::LliExperimentConfig cfg;
  cfg.launch_attack = false;
  cfg.benign_window = 60_s;
  cfg.attack_window = 330_s;  // ~100 measurements per link at 15s rounds
  const auto series = scenario::run_lli_experiment(cfg);

  Table table({"Link", "Samples", "Mean (ms)", "Median", "p95", "Max"});
  for (const auto& [link, s] : series.per_link) {
    table.add_row({link, fmt_u(s.count), fmt("%.2f", s.mean),
                   fmt("%.2f", s.median), fmt("%.2f", s.p95),
                   fmt("%.2f", s.max)});
  }
  table.print();

  section("All real-link measurements (histogram, ms)");
  stats::Histogram hist{0.0, 16.0, 16};
  for (const auto& p : series.points) {
    if (!p.fake) hist.add(p.latency_ms);
  }
  std::printf("%s", hist.render(48, "ms").c_str());

  std::printf(
      "\nPaper reference: all four switch links average ~5 ms (the\n"
      "configured wire latency), with micro-bursts to ~12 ms that the\n"
      "IQR threshold must tolerate (Sec. VII-A, VIII-A).\n");
  return 0;
}
