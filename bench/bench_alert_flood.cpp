// Sec. IV-B ("Alert Floods") — burying the real alert.
//
// One real hijack plus N spoofed identities cycled from the attacker's
// port. Passive defenses only alert; the operator-facing stream is
// dominated by spurious migration alerts while network state is freely
// corrupted.
#include <cstdio>

#include "attack/alert_flood.hpp"
#include "bench_util.hpp"
#include "ctrl/host_tracker.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

namespace {

struct FloodResult {
  std::size_t spoofed_identities = 0;
  std::uint64_t spoof_packets = 0;
  std::size_t precondition_alerts = 0;
  std::size_t total_alerts = 0;
  std::size_t identities_corrupted = 0;
};

FloodResult run_flood(std::size_t identities, sim::Duration window) {
  using namespace tmg::scenario;
  Fig2Testbed f =
      make_fig2_testbed(suite_options(DefenseSuite::TopoGuardAndSphinx, 42));
  install_suite(f.tb->controller(), DefenseSuite::TopoGuardAndSphinx);
  f.tb->start(2_s);
  fig2_warm_hosts(f);

  attack::AlertFloodAttack::Config fc;
  for (std::uint32_t i = 0; i < identities; ++i) {
    fc.identities.push_back(attack::SpoofedIdentity{
        net::MacAddress::host(500 + i), net::Ipv4Address::host(500 + i)});
  }
  fc.period = 20_ms;
  // Seed each identity as a legitimate host first (from the peer port).
  for (const auto& id : fc.identities) {
    f.peer->send(net::make_arp_request(id.mac, id.ip, id.ip));
  }
  f.tb->run_for(1_s);

  attack::AlertFloodAttack flood{f.tb->loop(), f.tb->fork_rng(), *f.attacker,
                                 fc};
  flood.start();
  // The real owners keep talking from their own port, so every spoof
  // cycle re-triggers a migration alert: the binding oscillates between
  // the legitimate port and the attacker's (paper Sec. IV-B).
  bool owners_talking = true;
  std::size_t next_owner = 0;
  const std::function<void()> owner_chatter = [&]() {
    if (!owners_talking) return;
    const auto& id = fc.identities[next_owner];
    next_owner = (next_owner + 1) % fc.identities.size();
    f.peer->send(net::make_arp_request(id.mac, id.ip, id.ip));
    f.tb->loop().schedule_after(20_ms, [&owner_chatter] { owner_chatter(); });
  };
  f.tb->loop().schedule_after(10_ms, [&owner_chatter] { owner_chatter(); });
  f.tb->run_for(window - 1_s);
  owners_talking = false;  // owners pause; the flood gets the last word
  f.tb->run_for(1_s);
  flood.stop();

  FloodResult r;
  r.spoofed_identities = identities;
  r.spoof_packets = flood.packets_sent();
  r.precondition_alerts = f.tb->controller().alerts().count(
      ctrl::AlertType::HostMigrationPrecondition);
  r.total_alerts = f.tb->controller().alerts().count();
  for (const auto& id : fc.identities) {
    const auto rec = f.tb->controller().host_tracker().find(id.mac);
    if (rec && rec->loc == f.attacker_loc) ++r.identities_corrupted;
  }
  return r;
}

}  // namespace

int main() {
  banner("Sec. IV-B", "Alert floods: drowning the operator");

  Table table({"Spoofed IDs", "Spoof packets", "Migration alerts",
               "Total alerts", "Bindings corrupted"});
  for (std::size_t n : {1, 5, 10, 20, 50}) {
    const auto r = run_flood(n, 20_s);
    table.add_row({fmt_u(r.spoofed_identities), fmt_u(r.spoof_packets),
                   fmt_u(r.precondition_alerts), fmt_u(r.total_alerts),
                   fmt_u(r.identities_corrupted) + "/" +
                       fmt_u(r.spoofed_identities)});
  }
  table.print();

  std::printf(
      "\nEvery spoofed identity raises its own alert storm, yet no alert\n"
      "alters network state: all bindings end up pointing at the\n"
      "attacker. An operator hunting the one real victim must triage the\n"
      "entire flood (paper Sec. IV-B).\n");
  return 0;
}
