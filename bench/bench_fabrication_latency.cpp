// Table III corollary — time to fabricate a link per controller profile.
//
// The port-amnesia attacker cannot register a link until the controller
// emits the next LLDP round, so fabrication latency is governed by
// Table III's discovery interval (and the downtime window by the link
// timeout). This measures attack-start -> poisoned-topology for each
// controller the paper profiles.
#include <cstdio>

#include "attack/port_amnesia.hpp"
#include "bench_util.hpp"
#include "scenario/fig9_testbed.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

namespace {

/// Attack-start to fabricated-link registration, averaged over random
/// phases within the discovery cycle.
double mean_fabrication_s(const ctrl::ControllerProfile& profile, int runs) {
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    scenario::TestbedOptions opts = scenario::fig9_options(500 + r);
    opts.controller.profile = profile;
    opts.controller.lldp_timestamps = false;  // plain TopoGuard-era setup
    scenario::Fig9Testbed f = scenario::make_fig9_testbed(std::move(opts));
    f.tb->start(2_s);
    scenario::fig9_warm_hosts(f);
    // Random phase inside the discovery cycle.
    sim::Rng phase_rng = f.tb->fork_rng();
    f.tb->run_for(sim::Duration::nanos(phase_rng.uniform_int(
        0, profile.lldp_interval.count_nanos())));

    attack::PortAmnesiaAttack::Config ac;
    ac.mode = attack::PortAmnesiaAttack::Mode::OutOfBand;
    attack::PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a,
                                     *f.attacker_b, f.oob, ac};
    const sim::SimTime start = f.tb->loop().now();
    attack.start();
    while (!f.fabricated_link_present() &&
           f.tb->loop().now() - start < 120_s) {
      f.tb->run_for(100_ms);
    }
    sum += (f.tb->loop().now() - start).to_seconds_f();
  }
  return sum / runs;
}

}  // namespace

int main() {
  banner("Table III corollary",
         "Controller profile vs. link-fabrication latency");

  Table table({"Controller", "Discovery interval", "Mean attack-start -> "
               "poisoned topology"});
  for (const auto& profile : ctrl::all_profiles()) {
    const double s = mean_fabrication_s(profile, 10);
    table.add_row({profile.name,
                   fmt("%.0f s", profile.lldp_interval.to_seconds_f()),
                   fmt("%.1f s", s)});
  }
  table.print();

  std::printf(
      "\nExpected shape: fabrication latency averages roughly half the\n"
      "discovery interval (the attacker waits for the next LLDP round to\n"
      "relay) — POX/OpenDaylight topologies poison ~3x faster than\n"
      "Floodlight's.\n");
  return 0;
}
