// Fig. 7 — Distribution of times from Victim Down to the start of the
// attacker's final (failing) liveness probe.
//
// Paper: the final probe begins on average within half a millisecond of
// the victim going offline — the probe *in flight* when the victim
// disconnects is usually the one that fails, so the start offset
// clusters near zero (it can even be negative: a probe transmitted just
// before the victim unplugged whose request arrived too late).
#include "hijack_series.hpp"

using namespace tmg;
using namespace tmg::bench;

int main(int argc, char** argv) {
  banner("Fig. 7", "Victim Down -> start of attacker's final probe");
  const int rc = run_hijack_figure(
      argc, argv, "fig7_last_ping_start", 200, /*nmap_regime=*/false, "ms",
      -50.0, 50.0, [](const scenario::HijackOutcome& out) {
        return out.down_to_final_probe_start_ms;
      });
  std::printf(
      "\nPaper reference: within ~0.5 ms of the victim going offline on\n"
      "average (raw 50 ms-cadence ARP probes, Sec. V-B1).\n");
  return rc;
}
