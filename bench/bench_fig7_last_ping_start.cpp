// Fig. 7 — Distribution of times from Victim Down to the start of the
// attacker's final (failing) liveness probe.
//
// Paper: the final probe begins on average within half a millisecond of
// the victim going offline — the probe *in flight* when the victim
// disconnects is usually the one that fails, so the start offset
// clusters near zero (it can even be negative: a probe transmitted just
// before the victim unplugged whose request arrived too late).
#include "hijack_series.hpp"

using namespace tmg;
using namespace tmg::bench;

int main() {
  banner("Fig. 7", "Victim Down -> start of attacker's final probe");
  const auto series = collect_hijack_metric(
      200, /*nmap_regime=*/false, [](const scenario::HijackOutcome& out) {
        return out.down_to_final_probe_start_ms;
      });
  print_series(series, "ms", -50.0, 50.0);
  std::printf(
      "\nPaper reference: within ~0.5 ms of the victim going offline on\n"
      "average (raw 50 ms-cadence ARP probes, Sec. V-B1).\n");
  return 0;
}
