// Fig. 4 — Distribution of time taken to change network identifiers
// using ifconfig (paper: mean 9.94 ms, heavy tail to ~160 ms).
#include <cstdio>
#include <vector>

#include "attack/nic_model.hpp"
#include "bench_util.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

using namespace tmg;
using namespace tmg::bench;

int main() {
  banner("Fig. 4", "Distribution of identity-change (ifconfig) time");

  sim::Rng rng{42};
  const attack::NicOpModel model = attack::NicOpModel::identity_change();
  std::vector<double> samples;
  samples.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(model.sample(rng).to_millis_f());
  }
  const auto s = stats::summarize(samples);

  section("Summary (1000 trials)");
  std::printf("  mean:   %.2f ms   (paper: 9.94 ms)\n", s.mean);
  std::printf("  median: %.2f ms\n", s.median);
  std::printf("  p95:    %.2f ms\n", s.p95);
  std::printf("  p99:    %.2f ms\n", s.p99);
  std::printf("  max:    %.2f ms  (paper: trials up to ~160 ms)\n", s.max);

  section("Histogram (ms)");
  stats::Histogram hist{0.0, 60.0, 24};
  hist.add_all(samples);
  std::printf("%s", hist.render(48, "ms").c_str());

  section("CSV (bin_lo,bin_hi,count)");
  std::printf("%s", hist.to_csv().c_str());
  return 0;
}
