// Fig. 3 — Host location hijacking timeline.
//
// Regenerates the paper's event timeline (victim/attacker/controller
// actions) for one port-probing hijack, with measured offsets relative
// to the victim going down.
#include <cstdio>

#include "bench_util.hpp"
#include "scenario/experiments.hpp"

using namespace tmg;
using namespace tmg::bench;

int main() {
  banner("Fig. 3", "Host location hijacking timeline (not drawn to scale)");

  scenario::HijackConfig cfg;
  cfg.suite = scenario::DefenseSuite::TopoGuardAndSphinx;
  cfg.seed = 7;
  const auto out = scenario::run_hijack(cfg);

  const auto row = [](const char* actor, const char* event, double t_ms) {
    std::printf("  %+10.3f ms  [%-10s] %s\n", t_ms, actor, event);
  };

  std::printf("\nEvents relative to the victim going offline (t = 0):\n\n");
  row("victim", "victim interface down (begins migration)", 0.0);
  if (out.down_to_final_probe_start_ms) {
    row("attacker", "final liveness probe transmitted",
        *out.down_to_final_probe_start_ms);
  }
  if (out.down_to_declared_down_ms) {
    row("attacker", "probe timeout: victim believed offline",
        *out.down_to_declared_down_ms);
  }
  if (out.down_to_iface_up_ms && out.ident_change_ms) {
    row("attacker", "ifconfig begins (down, set MAC/IP)",
        *out.down_to_iface_up_ms - *out.ident_change_ms);
    row("attacker", "interface up as victim; spoofed traffic sent",
        *out.down_to_iface_up_ms);
  }
  if (out.down_to_confirmed_ms) {
    row("controller", "Packet-In: HTS re-binds victim to attacker port",
        *out.down_to_confirmed_ms);
  }
  row("victim", "victim rejoins at new location (seconds later)", 3000.0);

  section("Outcome");
  std::printf("  hijack succeeded:        %s\n",
              yes_no(out.hijack_succeeded).c_str());
  std::printf("  victim traffic redirected:%s\n",
              yes_no(out.traffic_redirected).c_str());
  std::printf("  alerts before rejoin:    %zu (TopoGuard+SPHINX deployed)\n",
              out.alerts_before_rejoin);
  std::printf("  alerts after rejoin:     %zu (oscillation detected)\n",
              out.alerts_after_rejoin);
  return 0;
}
