// Reproduction finding — a minimal-flap in-band attacker evades the CMM
// as specified (EXPERIMENTS.md, "Reproduction findings beyond the
// paper" #1).
//
// The CMM keys on Port-Up/Down *inside LLDP propagation windows*. The
// paper's in-band attacker context-switches every round and is always
// caught. A one-way, minimal-flap attacker pays exactly one flap (the
// first HOST -> ANY reset); from round 2 its port is already
// SWITCH-profiled, no in-window event exists, and the fabricated link
// registers. Defense-in-depth with the LLI closes the gap: the in-band
// relay's store-and-forward latency is far above the fence.
#include <cstdio>

#include "attack/port_amnesia.hpp"
#include "bench_util.hpp"
#include "defense/topoguard_plus.hpp"
#include "scenario/fig9_testbed.hpp"

using namespace tmg;
using namespace tmg::bench;
using namespace tmg::sim::literals;

namespace {

struct Outcome {
  bool link_registered = false;
  std::uint64_t flaps = 0;
  std::size_t cmm_alerts = 0;
  std::size_t lli_alerts = 0;
};

Outcome run(bool bidirectional, bool with_lli) {
  scenario::TestbedOptions opts = scenario::fig9_options(42);
  opts.controller.lldp_timestamps = with_lli;
  scenario::Fig9Testbed f = scenario::make_fig9_testbed(std::move(opts));
  defense::install_topoguard(f.tb->controller());
  f.tb->controller().add_defense(
      std::make_unique<defense::Cmm>(f.tb->controller()));
  if (with_lli) {
    f.tb->controller().add_defense(
        std::make_unique<defense::Lli>(f.tb->controller()));
  }
  f.tb->start(2_s);
  scenario::fig9_warm_hosts(f);
  f.tb->run_for(60_s);

  attack::PortAmnesiaAttack::Config ac;
  ac.mode = attack::PortAmnesiaAttack::Mode::InBand;
  ac.bidirectional = bidirectional;
  attack::PortAmnesiaAttack attack{f.tb->loop(), *f.attacker_a,
                                   *f.attacker_b, nullptr, ac};
  attack.start();

  Outcome out;
  for (int i = 0; i < 60; ++i) {  // poll across four LLDP rounds
    f.tb->run_for(1_s);
    if (f.fabricated_link_present()) out.link_registered = true;
  }
  out.flaps = attack.flaps();
  out.cmm_alerts = f.tb->controller().alerts().count_from("CMM");
  out.lli_alerts = f.tb->controller().alerts().count_from("LLI");
  return out;
}

}  // namespace

int main() {
  banner("Finding", "Minimal-flap in-band attacker vs. the CMM");

  Table table({"Attacker", "Defense", "Flaps", "CMM alerts", "LLI alerts",
               "Link registered"});
  const auto add = [&](const char* attacker, const char* defense,
                       const Outcome& o) {
    table.add_row({attacker, defense, fmt_u(o.flaps), fmt_u(o.cmm_alerts),
                   fmt_u(o.lli_alerts), yes_no(o.link_registered)});
  };
  add("paper (bidirectional)", "TopoGuard+CMM", run(true, false));
  add("minimal-flap (one-way)", "TopoGuard+CMM", run(false, false));
  add("minimal-flap (one-way)", "TOPOGUARD+ (CMM+LLI)", run(false, true));
  table.print();

  std::printf(
      "\nReading: the paper's attacker context-switches every round and\n"
      "the CMM blocks every attempt. The one-way attacker flaps once —\n"
      "the CMM blocks round 1 but nothing afterwards, and the poisoned\n"
      "link registers. Only the latency check (LLI) closes the gap,\n"
      "supporting the paper's own conclusion that latency evidence, not\n"
      "control-message patterns alone, is load-bearing (Sec. VI-D, X).\n");
  return 0;
}
